#include "io/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace tycos {

namespace {

// "2.5 h", "14 min", "45 s", "250 ms" — the coarsest unit that stays >= 1.
// Sub-second durations get their own branch (a 4 ms lag used to render as
// the indistinguishable-from-zero "0 s"); exactly zero stays "0 s".
std::string HumaneDuration(double seconds) {
  char buf[48];
  const double abs = std::fabs(seconds);
  if (abs >= 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.1f d", seconds / 86400.0);
  } else if (abs >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600.0);
  } else if (abs >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s", seconds);
  } else if (abs > 0.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "0 s");
  }
  return buf;
}

// "completed", or "**partial** — stopped early (deadline_exceeded)". The
// paused reason gets resume-oriented wording: a paused run is healthy, not
// truncated.
std::string RunStatusText(StopReason reason) {
  if (reason == StopReason::kCompleted) return "completed";
  if (reason == StopReason::kPaused) {
    return "**paused** — checkpointed and resumable (" +
           std::string(StopReasonName(reason)) + ")";
  }
  return "**partial** — stopped early (" +
         std::string(StopReasonName(reason)) + ")";
}

}  // namespace

std::string RenderReport(const SeriesPair& pair, const TycosParams& params,
                         const WindowSet& windows, const TycosStats& stats,
                         const ReportOptions& options) {
  std::ostringstream out;
  const bool timed = options.seconds_per_sample > 0.0;

  out << "# " << options.title << "\n\n";
  out << "Pair: **" << (pair.x().name().empty() ? "X" : pair.x().name())
      << "** vs **" << (pair.y().name().empty() ? "Y" : pair.y().name())
      << "** (" << pair.size() << " samples)\n\n";

  out << "Run status: " << RunStatusText(stats.stop_reason) << "\n\n";

  out << "## Parameters\n\n"
      << "| parameter | value |\n|---|---|\n"
      << "| sigma | " << params.sigma << " |\n"
      << "| s_min / s_max | " << params.s_min << " / " << params.s_max
      << " |\n"
      << "| td_max | " << params.td_max << " |\n"
      << "| epsilon ratio | " << params.epsilon_ratio << " |\n"
      << "| k | " << params.k << " |\n";
  if (params.theiler_window > 0) {
    out << "| theiler window | " << params.theiler_window << " |\n";
  }
  out << "\n";

  out << "## Windows (" << windows.size() << ")\n\n";
  if (windows.empty()) {
    out << "No correlated windows cleared sigma.\n\n";
  } else {
    out << "| # | X range | delay | size | score |";
    if (timed) out << " when | lag |";
    out << "\n|---|---|---|---|---|";
    if (timed) out << "---|---|";
    out << "\n";
    int row = 1;
    for (const Window& w : windows.Sorted()) {
      out << "| " << row++ << " | [" << w.start << ", " << w.end << "] | "
          << w.delay << " | " << w.size() << " | ";
      char score[16];
      std::snprintf(score, sizeof(score), "%.3f", w.mi);
      out << score << " |";
      if (timed) {
        out << " "
            << HumaneDuration(static_cast<double>(w.start) *
                              options.seconds_per_sample)
            << " – "
            << HumaneDuration(static_cast<double>(w.end + 1) *
                              options.seconds_per_sample)
            << " | "
            << HumaneDuration(static_cast<double>(w.delay) *
                              options.seconds_per_sample)
            << " |";
      }
      out << "\n";
    }
    out << "\n";
  }

  out << "## Search statistics\n\n"
      << "| metric | value |\n|---|---|\n"
      << "| climbs | " << stats.climbs << " |\n"
      << "| MI evaluations | " << stats.mi_evaluations << " |\n"
      << "| cache hits | " << stats.cache_hits << " |\n"
      << "| accepted / rejected moves | " << stats.accepted_moves << " / "
      << stats.rejected_moves << " |\n"
      << "| noise-blocked directions | " << stats.noise_blocked << " |\n";
  // Only audit-enabled builds ever have non-zero counters; keep default
  // builds' report output byte-stable.
  if (stats.audit_checks > 0 || stats.audit_failures > 0) {
    out << "| invariant audits (checks / violations) | " << stats.audit_checks
        << " / " << stats.audit_failures << " |\n";
  }
  if (options.include_metrics) {
    out << "\n## Metrics\n\n```\n" << obs::Snapshot().ToString() << "```\n";
  }
  return out.str();
}

Status WriteReport(const std::string& path, const SeriesPair& pair,
                   const TycosParams& params, const WindowSet& windows,
                   const TycosStats& stats, const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << RenderReport(pair, params, windows, stats, options);
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

std::string RenderPairwiseReport(const std::vector<TimeSeries>& channels,
                                 const TycosParams& params,
                                 const PairwiseResult& result,
                                 const ReportOptions& options) {
  std::ostringstream out;
  out << "# " << options.title << "\n\n";
  out << channels.size() << " channels";
  if (!channels.empty()) out << " (" << channels[0].size() << " samples)";
  out << ", sigma " << params.sigma << "\n\n";

  out << "Run status: " << RunStatusText(result.stop_reason) << "; "
      << result.pairs_searched << " pairs searched, " << result.pairs_skipped
      << " skipped\n\n";

  out << "## Pairs (" << result.entries.size() << ")\n\n";
  if (result.entries.empty()) {
    out << "No pairs searched.\n\n";
  } else {
    out << "| # | pair | windows | best score | flags |\n"
        << "|---|---|---|---|---|\n";
    int row = 1;
    for (const PairwiseEntry& e : result.entries) {
      const std::string name_a = channels[static_cast<size_t>(e.a)].name();
      const std::string name_b = channels[static_cast<size_t>(e.b)].name();
      out << "| " << row++ << " | "
          << (name_a.empty() ? "#" + std::to_string(e.a) : name_a) << " vs "
          << (name_b.empty() ? "#" + std::to_string(e.b) : name_b) << " | "
          << e.window_count() << " | ";
      char score[16];
      std::snprintf(score, sizeof(score), "%.3f", e.best_score);
      out << score << " | ";
      // Flags keep degraded answers honest: a pair searched under overload
      // shedding or cut short is marked in the row that reports it.
      std::string flags;
      if (e.partial) flags += "partial";
      if (e.shed_level > 0) {
        if (!flags.empty()) flags += ", ";
        flags += "shed L" + std::to_string(e.shed_level);
      }
      out << (flags.empty() ? "-" : flags) << " |\n";
    }
    out << "\n";
  }
  if (options.include_metrics) {
    out << "## Metrics\n\n```\n" << obs::Snapshot().ToString() << "```\n";
  }
  return out.str();
}

Status WritePairwiseReport(const std::string& path,
                           const std::vector<TimeSeries>& channels,
                           const TycosParams& params,
                           const PairwiseResult& result,
                           const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << RenderPairwiseReport(channels, params, result, options);
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace tycos
