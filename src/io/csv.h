// Minimal CSV import/export for time series and result window sets.
//
// Format: optional header row of column names, then one row per time step
// with comma-separated numeric values. Windows are exported as
// start,end,delay,mi rows.

#ifndef TYCOS_IO_CSV_H_
#define TYCOS_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/data_policy.h"
#include "core/time_series.h"
#include "core/window.h"

namespace tycos {

// A parsed CSV table of numeric columns.
struct CsvTable {
  std::vector<std::string> column_names;     // empty when no header
  std::vector<std::vector<double>> columns;  // column-major

  int64_t num_rows() const {
    return columns.empty() ? 0 : static_cast<int64_t>(columns[0].size());
  }
  int64_t num_columns() const { return static_cast<int64_t>(columns.size()); }
};

// Reads a CSV file. When `has_header` is true, the first row supplies column
// names. All rows must have the same number of numeric fields. Hostile
// values — non-finite literals ("nan", "inf", overflowing numbers like
// 1e999) and missing fields ("", "na", "null", ...) — are rejected; use the
// DataPolicy overloads to drop or repair them instead. Unparsable garbage
// ("abc", "1.2.3") is a hard error under every policy.
Result<CsvTable> ReadCsv(const std::string& path, bool has_header = true);

// Parses CSV from an in-memory string (same rules as ReadCsv).
Result<CsvTable> ParseCsv(const std::string& content, bool has_header = true);

// Policy-aware variants: missing and non-finite fields follow `policy`
// (reject with a precise error / drop the whole row / linearly interpolate
// from the nearest finite neighbours). `stats`, when non-null, accumulates
// what the pass encountered and repaired.
Result<CsvTable> ReadCsv(const std::string& path, bool has_header,
                         DataPolicy policy, SanitizeStats* stats = nullptr);
Result<CsvTable> ParseCsv(const std::string& content, bool has_header,
                          DataPolicy policy, SanitizeStats* stats = nullptr);

// Extracts one column as a TimeSeries, named after its header (or
// "col<index>" when headerless).
Result<TimeSeries> ColumnAsSeries(const CsvTable& table, int64_t column);

// Looks a column up by header name.
Result<TimeSeries> ColumnAsSeries(const CsvTable& table,
                                  const std::string& name);

// Writes series as CSV columns (all series must share a length).
Status WriteCsv(const std::string& path,
                const std::vector<TimeSeries>& series);

// Writes windows as "start,end,delay,mi" rows with a header.
Status WriteWindowsCsv(const std::string& path,
                       const std::vector<Window>& windows);

}  // namespace tycos

#endif  // TYCOS_IO_CSV_H_
