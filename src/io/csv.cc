#include "io/csv.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/strings.h"

namespace tycos {

namespace {

// Conventional missing-data markers. A field matching one of these is a
// *missing* value (policy decides its fate), never a parse error.
bool IsMissingToken(std::string_view field) {
  std::string lower;
  lower.reserve(field.size());
  for (char ch : field) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  }
  return lower.empty() || lower == "na" || lower == "n/a" || lower == "nan" ||
         lower == "null" || lower == "nil" || lower == "-";
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& content, bool has_header,
                          DataPolicy policy, SanitizeStats* stats) {
  CsvTable table;
  std::istringstream in(content);
  std::string line;
  int64_t row = 0;
  bool header_pending = has_header;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (header_pending) {
      for (auto& f : fields) {
        table.column_names.emplace_back(StripWhitespace(f));
      }
      table.columns.resize(fields.size());
      header_pending = false;
      continue;
    }
    if (table.columns.empty()) table.columns.resize(fields.size());
    if (fields.size() != table.columns.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(row) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(table.columns.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string_view field = StripWhitespace(fields[c]);
      double v = std::numeric_limits<double>::quiet_NaN();
      if (!IsMissingToken(field)) {
        if (!ParseDouble(field, &v)) {
          // Malformed tokens are a format error, not missing data: no
          // policy may silently paper over e.g. a shifted delimiter.
          return Status::InvalidArgument("unparsable value '" +
                                         std::string(field) + "' at row " +
                                         std::to_string(row));
        }
        // strtod happily returns ±inf for "inf" and for overflowing
        // literals like 1e999, and NaN for "nan"; all of those are hostile
        // to the estimators, so they flow through the policy as missing.
      }
      table.columns[c].push_back(v);
    }
    ++row;
  }
  const Status st = SanitizeColumns(&table.columns, policy, stats);
  if (!st.ok()) return st;
  return table;
}

Result<CsvTable> ParseCsv(const std::string& content, bool has_header) {
  return ParseCsv(content, has_header, DataPolicy::kReject, nullptr);
}

Result<CsvTable> ReadCsv(const std::string& path, bool has_header,
                         DataPolicy policy, SanitizeStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), has_header, policy, stats);
}

Result<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  return ReadCsv(path, has_header, DataPolicy::kReject, nullptr);
}

Result<TimeSeries> ColumnAsSeries(const CsvTable& table, int64_t column) {
  if (column < 0 || column >= table.num_columns()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range");
  }
  std::string name =
      static_cast<size_t>(column) < table.column_names.size()
          ? table.column_names[static_cast<size_t>(column)]
          : "col" + std::to_string(column);
  return TimeSeries(table.columns[static_cast<size_t>(column)],
                    std::move(name));
}

Result<TimeSeries> ColumnAsSeries(const CsvTable& table,
                                  const std::string& name) {
  for (size_t c = 0; c < table.column_names.size(); ++c) {
    if (table.column_names[c] == name) {
      return ColumnAsSeries(table, static_cast<int64_t>(c));
    }
  }
  return Status::NotFound("no column named '" + name + "'");
}

Status WriteCsv(const std::string& path,
                const std::vector<TimeSeries>& series) {
  if (series.empty()) {
    return Status::InvalidArgument("no series to write");
  }
  for (const TimeSeries& s : series) {
    if (s.size() != series[0].size()) {
      return Status::InvalidArgument("series lengths differ");
    }
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (size_t c = 0; c < series.size(); ++c) {
    out << (c ? "," : "") << series[c].name();
  }
  out << "\n";
  const int64_t n = series[0].size();
  char buf[64];
  for (int64_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < series.size(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.10g", series[c][i]);
      out << (c ? "," : "") << buf;
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

Status WriteWindowsCsv(const std::string& path,
                       const std::vector<Window>& windows) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "start,end,delay,mi\n";
  char buf[128];
  for (const Window& w : windows) {
    std::snprintf(buf, sizeof(buf), "%lld,%lld,%lld,%.10g\n",
                  static_cast<long long>(w.start),
                  static_cast<long long>(w.end),
                  static_cast<long long>(w.delay), w.mi);
    out << buf;
  }
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace tycos
