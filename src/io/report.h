// Markdown report generation for a finished search: what was configured,
// what was found, and how much work it took — the artifact you attach to an
// analysis notebook or ticket.

#ifndef TYCOS_IO_REPORT_H_
#define TYCOS_IO_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/time_series.h"
#include "core/window_set.h"
#include "search/pairwise.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {

struct ReportOptions {
  // Title of the report document.
  std::string title = "TYCOS correlation report";
  // Sampling interval in seconds; when > 0, window positions and delays are
  // also printed in humane time units.
  double seconds_per_sample = 0.0;
  // When true, appends a "Metrics" section rendering the obs registry
  // snapshot — the same data obs::WriteJson exports. Off by default so the
  // report of a given run stays byte-stable regardless of unrelated
  // registry activity in the process.
  bool include_metrics = false;
};

// Renders a markdown report for a completed run: parameter table, one row
// per window (sorted by start), and the search statistics.
std::string RenderReport(const SeriesPair& pair, const TycosParams& params,
                         const WindowSet& windows, const TycosStats& stats,
                         const ReportOptions& options = {});

// RenderReport, written to a file.
Status WriteReport(const std::string& path, const SeriesPair& pair,
                   const TycosParams& params, const WindowSet& windows,
                   const TycosStats& stats, const ReportOptions& options = {});

// Markdown report for a pairwise discovery run: the run status (completed /
// partial, stop reason, pairs searched and skipped), then one row per pair
// sorted as in the result, flagging partial and shed-degraded entries so a
// cut-short or overloaded sweep is never read as a full one. `channels`
// must be the vector the search ran over (entry indices resolve into it).
std::string RenderPairwiseReport(const std::vector<TimeSeries>& channels,
                                 const TycosParams& params,
                                 const PairwiseResult& result,
                                 const ReportOptions& options = {});

// RenderPairwiseReport, written to a file.
Status WritePairwiseReport(const std::string& path,
                           const std::vector<TimeSeries>& channels,
                           const TycosParams& params,
                           const PairwiseResult& result,
                           const ReportOptions& options = {});

}  // namespace tycos

#endif  // TYCOS_IO_REPORT_H_
