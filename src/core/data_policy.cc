#include "core/data_policy.h"

#include <cmath>
#include <string>

namespace tycos {

const char* DataPolicyName(DataPolicy policy) {
  switch (policy) {
    case DataPolicy::kReject:
      return "reject";
    case DataPolicy::kDropRow:
      return "drop_row";
    case DataPolicy::kInterpolate:
      return "interpolate";
  }
  return "unknown";
}

namespace {

// Linear interpolation between the nearest finite neighbours; runs touching
// an edge are clamped to the nearest finite value. Returns the number of
// entries repaired, or -1 when the column has no finite value at all.
int64_t InterpolateColumn(std::vector<double>* column) {
  const int64_t n = static_cast<int64_t>(column->size());
  int64_t repaired = 0;
  int64_t i = 0;
  while (i < n) {
    if (std::isfinite((*column)[static_cast<size_t>(i)])) {
      ++i;
      continue;
    }
    int64_t run_end = i;  // [i, run_end] is a non-finite run
    while (run_end + 1 < n &&
           !std::isfinite((*column)[static_cast<size_t>(run_end + 1)])) {
      ++run_end;
    }
    const int64_t left = i - 1;          // finite or -1
    const int64_t right = run_end + 1;   // finite or n
    if (left < 0 && right >= n) return -1;
    for (int64_t j = i; j <= run_end; ++j) {
      double v;
      if (left < 0) {
        v = (*column)[static_cast<size_t>(right)];
      } else if (right >= n) {
        v = (*column)[static_cast<size_t>(left)];
      } else {
        const double lv = (*column)[static_cast<size_t>(left)];
        const double rv = (*column)[static_cast<size_t>(right)];
        const double t = static_cast<double>(j - left) /
                         static_cast<double>(right - left);
        v = lv + t * (rv - lv);
      }
      (*column)[static_cast<size_t>(j)] = v;
      ++repaired;
    }
    i = run_end + 1;
  }
  return repaired;
}

}  // namespace

Status SanitizeColumns(std::vector<std::vector<double>>* columns,
                       DataPolicy policy, SanitizeStats* stats) {
  if (columns->empty()) return Status::Ok();
  const size_t rows = (*columns)[0].size();
  for (const auto& col : *columns) {
    if (col.size() != rows) {
      return Status::InvalidArgument("columns are not row-aligned");
    }
  }

  int64_t non_finite = 0;
  for (size_t c = 0; c < columns->size(); ++c) {
    for (size_t r = 0; r < rows; ++r) {
      if (!std::isfinite((*columns)[c][r])) {
        ++non_finite;
        if (policy == DataPolicy::kReject) {
          return Status::InvalidArgument(
              "non-finite value at row " + std::to_string(r) + ", column " +
              std::to_string(c) + " (policy: reject)");
        }
      }
    }
  }
  if (stats != nullptr) stats->non_finite += non_finite;
  if (non_finite == 0) return Status::Ok();

  if (policy == DataPolicy::kDropRow) {
    std::vector<size_t> keep;
    keep.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      bool ok = true;
      for (const auto& col : *columns) ok &= std::isfinite(col[r]);
      if (ok) keep.push_back(r);
    }
    for (auto& col : *columns) {
      std::vector<double> next;
      next.reserve(keep.size());
      for (size_t r : keep) next.push_back(col[r]);
      col = std::move(next);
    }
    if (stats != nullptr) {
      stats->rows_dropped += static_cast<int64_t>(rows - keep.size());
    }
    return Status::Ok();
  }

  // kInterpolate.
  for (size_t c = 0; c < columns->size(); ++c) {
    const int64_t repaired = InterpolateColumn(&(*columns)[c]);
    if (repaired < 0) {
      return Status::InvalidArgument("column " + std::to_string(c) +
                                     " has no finite value to interpolate "
                                     "from");
    }
    if (stats != nullptr) stats->interpolated += repaired;
  }
  return Status::Ok();
}

Status SanitizeValues(std::vector<double>* values, DataPolicy policy,
                      SanitizeStats* stats) {
  std::vector<std::vector<double>> columns;
  columns.push_back(std::move(*values));
  const Status st = SanitizeColumns(&columns, policy, stats);
  *values = std::move(columns[0]);
  return st;
}

}  // namespace tycos
