// DataPolicy: what ingest does with hostile samples — non-finite values
// (nan / inf / overflowed literals) and missing fields. Real sensor feeds
// are gappy and noisy; the estimators downstream assume finite input, so
// every ingest edge (CSV parsing, streaming Append) routes through one of
// these policies instead of silently materializing poison values.

#ifndef TYCOS_CORE_DATA_POLICY_H_
#define TYCOS_CORE_DATA_POLICY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace tycos {

enum class DataPolicy {
  kReject,       // fail fast with InvalidArgument naming the first bad value
  kDropRow,      // delete the whole row (all columns) containing a bad value
  kInterpolate,  // linearly interpolate from the nearest finite neighbours;
                 // leading/trailing gaps are clamped to the nearest finite
};

// Human-readable name ("reject", "drop_row", "interpolate").
const char* DataPolicyName(DataPolicy policy);

// Counters describing what a sanitization pass did.
struct SanitizeStats {
  int64_t non_finite = 0;    // hostile values encountered
  int64_t rows_dropped = 0;  // rows removed under kDropRow
  int64_t interpolated = 0;  // values replaced under kInterpolate
};

// Applies `policy` to row-aligned columns (all the same length, NaN marking
// the missing/hostile entries) in place. Under kReject any non-finite entry
// is an error; under kDropRow the row is removed from every column; under
// kInterpolate each column is repaired independently (a column with no
// finite value at all is an error). `stats` is accumulated when non-null.
Status SanitizeColumns(std::vector<std::vector<double>>* columns,
                       DataPolicy policy, SanitizeStats* stats = nullptr);

// Single-column convenience wrapper over SanitizeColumns.
Status SanitizeValues(std::vector<double>* values, DataPolicy policy,
                      SanitizeStats* stats = nullptr);

}  // namespace tycos

#endif  // TYCOS_CORE_DATA_POLICY_H_
