// TimeSeries and SeriesPair: the fundamental data types of the library
// (paper Definitions 4.1–4.4).

#ifndef TYCOS_CORE_TIME_SERIES_H_
#define TYCOS_CORE_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace tycos {

// A named, time-ordered sequence of samples. Index i corresponds to time
// step t_i; the sampling interval is uniform and implicit.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values, std::string name = "")
      : values_(std::move(values)), name_(std::move(name)) {}

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double operator[](int64_t i) const {
    TYCOS_CHECK_GE(i, 0);
    TYCOS_CHECK_LT(i, size());
    return values_[static_cast<size_t>(i)];
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void Append(double v) { values_.push_back(v); }

  // Copies samples [begin, end] (inclusive bounds) into a new vector.
  std::vector<double> Slice(int64_t begin, int64_t end) const;

  // Validation pass for hostile input: InvalidArgument naming the first
  // non-finite sample (nan / inf), Ok otherwise. The estimators assume
  // finite data, so ingest boundaries and the Create factories call this
  // before a series reaches a search.
  Status Validate() const;

  // Returns a z-normalized copy ((x - mean) / stddev). A constant series
  // normalizes to all zeros.
  TimeSeries ZNormalized() const;

 private:
  std::vector<double> values_;
  std::string name_;
};

// Two series observed over the same period T (Definition 4.3). Both series
// must have equal length.
class SeriesPair {
 public:
  SeriesPair() = default;
  SeriesPair(TimeSeries x, TimeSeries y) : x_(std::move(x)), y_(std::move(y)) {
    TYCOS_CHECK_EQ(x_.size(), y_.size());
  }

  // Graceful (non-CHECKing) construction: InvalidArgument on a length
  // mismatch or a non-finite sample in either series.
  static Result<SeriesPair> Create(TimeSeries x, TimeSeries y);

  int64_t size() const { return x_.size(); }
  const TimeSeries& x() const { return x_; }
  const TimeSeries& y() const { return y_; }

 private:
  TimeSeries x_;
  TimeSeries y_;
};

}  // namespace tycos

#endif  // TYCOS_CORE_TIME_SERIES_H_
