// Time delay windows (paper Definition 4.5) and window algebra: containment,
// overlap, the consecutive test (Definition 6.2), and the concatenation
// operation ⊙ (Definition 6.3).

#ifndef TYCOS_CORE_WINDOW_H_
#define TYCOS_CORE_WINDOW_H_

#include <cstdint>
#include <string>

#include "core/time_series.h"

namespace tycos {

// A time delay window w = ([t_s, t_e], τ).
//
// `start` and `end` are inclusive indices into X; the mapped window on Y is
// [start + delay, end + delay]. Size is end - start + 1.
struct Window {
  int64_t start = 0;
  int64_t end = 0;
  int64_t delay = 0;

  // MI (or normalized MI) of the window, filled in by the search. Windows
  // fresh from construction carry 0.
  double mi = 0.0;

  Window() = default;
  Window(int64_t s, int64_t e, int64_t tau, double mi_value = 0.0)
      : start(s), end(e), delay(tau), mi(mi_value) {}

  int64_t size() const { return end - start + 1; }
  int64_t y_start() const { return start + delay; }
  int64_t y_end() const { return end + delay; }

  // Identity on the search grid (MI excluded).
  bool SameSpan(const Window& o) const {
    return start == o.start && end == o.end && delay == o.delay;
  }

  std::string ToString() const;
};

// True when w is a legal window for a pair of length n under the given
// size/delay constraints (the "feasible window" predicate of Section 5.1).
bool IsFeasible(const Window& w, int64_t n, int64_t s_min, int64_t s_max,
                int64_t td_max);

// True when `inner`'s X-interval lies inside `outer`'s X-interval and both
// share the same delay (w_i ⊆ w_j in the problem statement).
bool Contains(const Window& outer, const Window& inner);

// True when the X-intervals of a and b intersect (delays ignored).
bool Overlaps(const Window& a, const Window& b);

// Definition 6.2: b starts right after a ends and both have the same delay.
bool AreConsecutive(const Window& a, const Window& b);

// Definition 6.3: joins consecutive windows a ⊙ b into ([a.start, b.end], τ).
// Requires AreConsecutive(a, b). The result's MI is left at 0; callers
// re-estimate it.
Window Concatenate(const Window& a, const Window& b);

// Extracts the (X_w, Y_w) sample vectors the window selects from the pair.
// The window must map to valid indices on both series.
void ExtractSamples(const SeriesPair& pair, const Window& w,
                    std::vector<double>* xs, std::vector<double>* ys);

}  // namespace tycos

#endif  // TYCOS_CORE_WINDOW_H_
