#include "core/window.h"

#include <cstdio>

namespace tycos {

std::string Window::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "([%lld, %lld], tau=%lld, mi=%.4f)",
                static_cast<long long>(start), static_cast<long long>(end),
                static_cast<long long>(delay), mi);
  return buf;
}

bool IsFeasible(const Window& w, int64_t n, int64_t s_min, int64_t s_max,
                int64_t td_max) {
  if (w.start < 0 || w.end >= n || w.start > w.end) return false;
  if (w.size() < s_min || w.size() > s_max) return false;
  if (w.delay > td_max || w.delay < -td_max) return false;
  if (w.y_start() < 0 || w.y_end() >= n) return false;
  return true;
}

bool Contains(const Window& outer, const Window& inner) {
  return outer.delay == inner.delay && outer.start <= inner.start &&
         inner.end <= outer.end;
}

bool Overlaps(const Window& a, const Window& b) {
  return a.start <= b.end && b.start <= a.end;
}

bool AreConsecutive(const Window& a, const Window& b) {
  return b.start == a.end + 1 && a.delay == b.delay;
}

Window Concatenate(const Window& a, const Window& b) {
  TYCOS_CHECK(AreConsecutive(a, b));
  return Window(a.start, b.end, a.delay);
}

void ExtractSamples(const SeriesPair& pair, const Window& w,
                    std::vector<double>* xs, std::vector<double>* ys) {
  TYCOS_CHECK_GE(w.start, 0);
  TYCOS_CHECK_LT(w.end, pair.size());
  TYCOS_CHECK_GE(w.y_start(), 0);
  TYCOS_CHECK_LT(w.y_end(), pair.size());
  const int64_t m = w.size();
  xs->resize(static_cast<size_t>(m));
  ys->resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    (*xs)[static_cast<size_t>(i)] = pair.x()[w.start + i];
    (*ys)[static_cast<size_t>(i)] = pair.y()[w.y_start() + i];
  }
}

}  // namespace tycos
