#include "core/window_similarity.h"

#include <algorithm>

namespace tycos {

double IndexJaccard(const Window& a, const Window& b) {
  const int64_t inter_lo = std::max(a.start, b.start);
  const int64_t inter_hi = std::min(a.end, b.end);
  if (inter_lo > inter_hi) return 0.0;
  const int64_t inter = inter_hi - inter_lo + 1;
  const int64_t uni =
      std::max(a.end, b.end) - std::min(a.start, b.start) + 1;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double OverlapCoefficient(const Window& a, const Window& b) {
  const int64_t inter_lo = std::max(a.start, b.start);
  const int64_t inter_hi = std::min(a.end, b.end);
  if (inter_lo > inter_hi) return 0.0;
  const int64_t inter = inter_hi - inter_lo + 1;
  const int64_t smaller = std::min(a.size(), b.size());
  return static_cast<double>(inter) / static_cast<double>(smaller);
}

double CoverageRecallPercent(const std::vector<Window>& reference,
                             const std::vector<Window>& candidates,
                             double threshold) {
  if (reference.empty()) return candidates.empty() ? 100.0 : 0.0;
  int hit = 0;
  for (const Window& r : reference) {
    for (const Window& c : candidates) {
      if (OverlapCoefficient(r, c) >= threshold) {
        ++hit;
        break;
      }
    }
  }
  return 100.0 * static_cast<double>(hit) /
         static_cast<double>(reference.size());
}

double MeanBestJaccard(const std::vector<Window>& reference,
                       const std::vector<Window>& candidates) {
  if (reference.empty()) return candidates.empty() ? 1.0 : 0.0;
  double total = 0.0;
  for (const Window& r : reference) {
    double best = 0.0;
    for (const Window& c : candidates) {
      best = std::max(best, IndexJaccard(r, c));
    }
    total += best;
  }
  return total / static_cast<double>(reference.size());
}

double MatchAccuracyPercent(const std::vector<Window>& reference,
                            const std::vector<Window>& candidates,
                            double threshold) {
  if (reference.empty()) return candidates.empty() ? 100.0 : 0.0;
  int matched = 0;
  for (const Window& r : reference) {
    for (const Window& c : candidates) {
      if (IndexJaccard(r, c) >= threshold) {
        ++matched;
        break;
      }
    }
  }
  return 100.0 * static_cast<double>(matched) /
         static_cast<double>(reference.size());
}

double SymmetricAccuracyPercent(const std::vector<Window>& reference,
                                const std::vector<Window>& candidates,
                                double threshold) {
  const double recall = MatchAccuracyPercent(reference, candidates, threshold);
  const double precision =
      MatchAccuracyPercent(candidates, reference, threshold);
  if (recall + precision == 0.0) return 0.0;
  return 2.0 * recall * precision / (recall + precision);
}

}  // namespace tycos
