#include "core/time_series.h"

#include <cmath>

#include "common/math.h"

namespace tycos {

std::vector<double> TimeSeries::Slice(int64_t begin, int64_t end) const {
  TYCOS_CHECK_GE(begin, 0);
  TYCOS_CHECK_LE(begin, end);
  TYCOS_CHECK_LT(end, size());
  return std::vector<double>(values_.begin() + begin,
                             values_.begin() + end + 1);
}

Status TimeSeries::Validate() const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!std::isfinite(values_[i])) {
      return Status::InvalidArgument(
          "series '" + (name_.empty() ? std::string("<unnamed>") : name_) +
          "' has a non-finite sample at index " + std::to_string(i));
    }
  }
  return Status::Ok();
}

Result<SeriesPair> SeriesPair::Create(TimeSeries x, TimeSeries y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument(
        "series lengths differ: " + std::to_string(x.size()) + " vs " +
        std::to_string(y.size()));
  }
  Status st = x.Validate();
  if (!st.ok()) return st;
  st = y.Validate();
  if (!st.ok()) return st;
  return SeriesPair(std::move(x), std::move(y));
}

TimeSeries TimeSeries::ZNormalized() const {
  const double mu = Mean(values_);
  const double sd = std::sqrt(Variance(values_));
  std::vector<double> out(values_.size());
  if (sd == 0.0) {
    return TimeSeries(std::move(out), name_);
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    out[i] = (values_[i] - mu) / sd;
  }
  return TimeSeries(std::move(out), name_);
}

}  // namespace tycos
