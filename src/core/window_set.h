// WindowSet: the result set S of the problem statement. Maintains the
// non-nesting constraint  ∀ w_i, w_j ∈ S : w_i ⊄ w_j ∧ w_j ⊄ w_i  by keeping,
// for any nested pair, the window with the higher MI.

#ifndef TYCOS_CORE_WINDOW_SET_H_
#define TYCOS_CORE_WINDOW_SET_H_

#include <vector>

#include "core/window.h"

namespace tycos {

class WindowSet {
 public:
  // Attempts to insert w. If w is nested (Contains) with incumbents, it is
  // inserted only when its MI beats every nested incumbent, which are then
  // evicted. Returns true when w ends up in the set.
  bool Insert(const Window& w);

  const std::vector<Window>& windows() const { return windows_; }
  size_t size() const { return windows_.size(); }
  bool empty() const { return windows_.empty(); }

  // Windows ordered by start index (stable for reporting).
  std::vector<Window> Sorted() const;

  // Smallest and largest delay over the set; both 0 when empty.
  int64_t MinDelay() const;
  int64_t MaxDelay() const;

 private:
  std::vector<Window> windows_;
};

// Merges overlapping windows that share a delay into maximal covering
// windows (used to aggregate the brute-force baseline's output before
// accuracy comparison, Section 8.4B). The merged window carries the max MI
// of its constituents.
std::vector<Window> MergeOverlapping(std::vector<Window> windows);

}  // namespace tycos

#endif  // TYCOS_CORE_WINDOW_SET_H_
