#include "core/window_set.h"

#include <algorithm>

#include "audit/audit.h"

namespace tycos {

#if TYCOS_AUDIT_ENABLED
namespace {

// Full non-nesting + distinct-span sweep, run on sampled inserts (the
// per-insert new-vs-incumbents check below is linear and always on).
void AuditFullNonNesting(const std::vector<Window>& windows) {
  static audit::Auditor* auditor = audit::Get("window_set_non_nesting");
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j) {
      const Window& a = windows[i];
      const Window& b = windows[j];
      TYCOS_AUDIT_CHECK(
          auditor,
          !a.SameSpan(b) && !Contains(a, b) && !Contains(b, a),
          "nested/duplicate pair in WindowSet: " + a.ToString() + " vs " +
              b.ToString());
    }
  }
}

// The reporting order must be a strict total order over distinct spans —
// a tie would make Sorted() output depend on insertion order.
void AuditSortedStrict(const std::vector<Window>& sorted) {
  static audit::Auditor* auditor = audit::Get("window_set_sorted_strict");
  for (size_t i = 1; i < sorted.size(); ++i) {
    const Window& a = sorted[i - 1];
    const Window& b = sorted[i];
    const bool strictly_less =
        a.start < b.start ||
        (a.start == b.start &&
         (a.end < b.end || (a.end == b.end && a.delay < b.delay)));
    TYCOS_AUDIT_CHECK(auditor, strictly_less,
                      "Sorted() order not strict at position " +
                          std::to_string(i) + ": " + a.ToString() + " !< " +
                          b.ToString());
  }
}

}  // namespace
#endif  // TYCOS_AUDIT_ENABLED

bool WindowSet::Insert(const Window& w) {
  std::vector<size_t> nested;  // incumbents nested with w
  for (size_t i = 0; i < windows_.size(); ++i) {
    const Window& in = windows_[i];
    if (in.SameSpan(w)) return false;  // exact duplicate
    if (Contains(in, w) || Contains(w, in)) {
      if (in.mi >= w.mi) return false;  // an incumbent dominates w
      nested.push_back(i);
    }
  }
  // w beats every nested incumbent: evict them (back to front).
  for (auto it = nested.rbegin(); it != nested.rend(); ++it) {
    windows_.erase(windows_.begin() + static_cast<long>(*it));
  }
  windows_.push_back(w);

#if TYCOS_AUDIT_ENABLED
  {
    // Always: the accepted window must be non-nested against every
    // surviving incumbent (evictions above must have removed all conflicts).
    static audit::Auditor* auditor = audit::Get("window_set_non_nesting");
    for (size_t i = 0; i + 1 < windows_.size(); ++i) {
      const Window& in = windows_[i];
      TYCOS_AUDIT_CHECK(auditor,
                        !in.SameSpan(w) && !Contains(in, w) && !Contains(w, in),
                        "inserted window nests with incumbent: " +
                            w.ToString() + " vs " + in.ToString());
    }
    // Sampled: full pairwise sweep plus the sorted-order strictness check.
    if (auditor->ShouldSample(16)) {
      AuditFullNonNesting(windows_);
      AuditSortedStrict(Sorted());
    }
  }
#endif
  return true;
}

std::vector<Window> WindowSet::Sorted() const {
  std::vector<Window> out = windows_;
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.delay < b.delay;
  });
  return out;
}

int64_t WindowSet::MinDelay() const {
  int64_t best = 0;
  bool first = true;
  for (const Window& w : windows_) {
    if (first || w.delay < best) best = w.delay;
    first = false;
  }
  return best;
}

int64_t WindowSet::MaxDelay() const {
  int64_t best = 0;
  bool first = true;
  for (const Window& w : windows_) {
    if (first || w.delay > best) best = w.delay;
    first = false;
  }
  return best;
}

std::vector<Window> MergeOverlapping(std::vector<Window> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) {
              if (a.delay != b.delay) return a.delay < b.delay;
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::vector<Window> merged;
  for (const Window& w : windows) {
    if (!merged.empty() && merged.back().delay == w.delay &&
        w.start <= merged.back().end + 1) {
      merged.back().end = std::max(merged.back().end, w.end);
      merged.back().mi = std::max(merged.back().mi, w.mi);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

}  // namespace tycos
