#include "core/window_set.h"

#include <algorithm>

namespace tycos {

bool WindowSet::Insert(const Window& w) {
  std::vector<size_t> nested;  // incumbents nested with w
  for (size_t i = 0; i < windows_.size(); ++i) {
    const Window& in = windows_[i];
    if (in.SameSpan(w)) return false;  // exact duplicate
    if (Contains(in, w) || Contains(w, in)) {
      if (in.mi >= w.mi) return false;  // an incumbent dominates w
      nested.push_back(i);
    }
  }
  // w beats every nested incumbent: evict them (back to front).
  for (auto it = nested.rbegin(); it != nested.rend(); ++it) {
    windows_.erase(windows_.begin() + static_cast<long>(*it));
  }
  windows_.push_back(w);
  return true;
}

std::vector<Window> WindowSet::Sorted() const {
  std::vector<Window> out = windows_;
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.delay < b.delay;
  });
  return out;
}

int64_t WindowSet::MinDelay() const {
  int64_t best = 0;
  bool first = true;
  for (const Window& w : windows_) {
    if (first || w.delay < best) best = w.delay;
    first = false;
  }
  return best;
}

int64_t WindowSet::MaxDelay() const {
  int64_t best = 0;
  bool first = true;
  for (const Window& w : windows_) {
    if (first || w.delay > best) best = w.delay;
    first = false;
  }
  return best;
}

std::vector<Window> MergeOverlapping(std::vector<Window> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const Window& a, const Window& b) {
              if (a.delay != b.delay) return a.delay < b.delay;
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  std::vector<Window> merged;
  for (const Window& w : windows) {
    if (!merged.empty() && merged.back().delay == w.delay &&
        w.start <= merged.back().end + 1) {
      merged.back().end = std::max(merged.back().end, w.end);
      merged.back().mi = std::max(merged.back().mi, w.mi);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

}  // namespace tycos
