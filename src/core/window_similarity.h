// Window-set similarity metrics used by the accuracy evaluation (Table 4):
// "two windows are considered to be similar if they cover a similar range of
// indices."

#ifndef TYCOS_CORE_WINDOW_SIMILARITY_H_
#define TYCOS_CORE_WINDOW_SIMILARITY_H_

#include <vector>

#include "core/window.h"

namespace tycos {

// Jaccard index of the X-interval index ranges of a and b: |∩| / |∪|.
// Delays are ignored (a window that found the same region at a slightly
// different lag still covers the same data).
double IndexJaccard(const Window& a, const Window& b);

// Overlap coefficient of the X-interval index ranges: |∩| / min(|a|, |b|).
// 1 whenever one window is contained in the other — the right notion when
// a heuristic reports fragments of a merged exact window ("windows are
// similar if they cover a similar range of indices", Section 8.4B).
double OverlapCoefficient(const Window& a, const Window& b);

// Percentage (0–100) of reference windows that some candidate hits with
// OverlapCoefficient >= threshold. With reference = the merged exact result
// this is the Table 4 "similar windows extracted" number.
double CoverageRecallPercent(const std::vector<Window>& reference,
                             const std::vector<Window>& candidates,
                             double threshold = 0.5);

// For each reference window the best candidate Jaccard is found; returns the
// mean of those maxima in [0, 1]. Empty reference yields 1 when the candidate
// set is also empty, otherwise 0 — by symmetry of "found everything".
double MeanBestJaccard(const std::vector<Window>& reference,
                       const std::vector<Window>& candidates);

// Percentage (0–100) of reference windows matched by some candidate with
// Jaccard >= `threshold`. This is the Table 4 accuracy number.
double MatchAccuracyPercent(const std::vector<Window>& reference,
                            const std::vector<Window>& candidates,
                            double threshold = 0.5);

// Symmetric F1-style accuracy: harmonic mean of MatchAccuracyPercent in both
// directions. Penalizes both missed and spurious windows.
double SymmetricAccuracyPercent(const std::vector<Window>& reference,
                                const std::vector<Window>& candidates,
                                double threshold = 0.5);

}  // namespace tycos

#endif  // TYCOS_CORE_WINDOW_SIMILARITY_H_
