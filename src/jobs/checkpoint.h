// Crash-safe on-disk checkpoints for durable pairwise search jobs.
//
// A checkpoint is a binary file: a fixed header (magic, format version,
// config hash, data fingerprint, seed) created atomically via
// write-temp + rename, followed by an append-only log of per-pair records,
// each length-prefixed and FNV-checksummed. The format is designed around
// one failure model — the process dies at an arbitrary instant (SIGKILL,
// OOM-kill, power loss with fsync enabled) — and one recovery contract:
//
//   * a torn *trailing* record (the append that was in flight when the
//     process died) is detected by its length prefix running past EOF or
//     its checksum failing, and is silently dropped: the pair simply reruns
//     on resume. Reopening the file for appending first cuts the torn tail
//     (atomically, via the same write-temp + rename dance used to create
//     the header), so a new record can never land after the garbage and
//     turn it into interior corruption on the next load;
//   * anything else that fails validation — bad magic, unknown version, a
//     corrupt header, a checksum mismatch on an *interior* record — is real
//     corruption and rejects the whole file with IoError, never a partial
//     load. A checkpoint is trusted entirely or not at all.
//
// Doubles are stored as raw IEEE-754 bit patterns, so a resumed run
// reconstructs scores bit-identically. All I/O goes through Result<> —
// tools/lint.py bans unchecked file operations in src/jobs/.

#ifndef TYCOS_JOBS_CHECKPOINT_H_
#define TYCOS_JOBS_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/time_series.h"
#include "search/pairwise.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {
namespace jobs {

// Bumped whenever the on-disk layout changes; a loader never guesses at an
// unknown version.
inline constexpr uint32_t kCheckpointFormatVersion = 1;

// One checkpointed pair: the finished entry (including its shed level) and
// how its search ended.
struct CheckpointedPair {
  PairwiseEntry entry;
  StopReason stop_reason = StopReason::kCompleted;
};

// A successfully loaded checkpoint.
struct CheckpointData {
  uint64_t config_hash = 0;        // HashSearchConfig of the writing run
  uint64_t data_fingerprint = 0;   // FingerprintChannels of the writing run
  uint64_t seed = 0;
  uint32_t num_channels = 0;
  int64_t series_length = 0;
  std::vector<CheckpointedPair> pairs;
  // Bytes of torn trailing record dropped during the load (0 on a clean
  // file) — evidence the writing process died mid-append.
  int64_t dropped_tail_bytes = 0;
};

// Order-independent fingerprint of the input data: channel count, length,
// names, and every sample's bit pattern. Two channel sets fingerprint
// equal iff a search over them is guaranteed to see identical inputs.
uint64_t FingerprintChannels(const std::vector<TimeSeries>& channels);

// Hash of every search-result-affecting knob of (params, variant, seed).
// num_threads is deliberately excluded: results are thread-count invariant,
// so a checkpoint written at 8 threads resumes fine at 1.
uint64_t HashSearchConfig(const TycosParams& params, TycosVariant variant,
                          uint64_t seed);

// Loads and fully validates `path`. See the file comment for the
// tolerate-vs-reject policy.
Result<CheckpointData> LoadCheckpoint(const std::string& path);

// Appends pair records to a checkpoint file, creating it (atomically) when
// absent and validating the header against the caller's config when
// present. Records are flushed to the OS after every Append, so a SIGKILL
// loses at most the record being written; set `fsync_each_record` to also
// survive power loss at a heavy I/O cost.
class CheckpointWriter {
 public:
  struct Options {
    uint64_t config_hash = 0;
    uint64_t data_fingerprint = 0;
    uint64_t seed = 0;
    uint32_t num_channels = 0;
    int64_t series_length = 0;
    bool fsync_each_record = false;
  };

  // Opens `path` for appending. When the file exists its header must match
  // `options` (config hash, fingerprint, seed) or the open fails with
  // InvalidArgument — a checkpoint never silently absorbs records from a
  // different run. A torn trailing record is truncated away before the
  // first new append; a file that exists but cannot be read fails with
  // IoError rather than being recreated over the persisted records.
  static Result<CheckpointWriter> Open(const std::string& path,
                                       const Options& options);

  CheckpointWriter(CheckpointWriter&& other) noexcept;
  CheckpointWriter& operator=(CheckpointWriter&&) = delete;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  ~CheckpointWriter();

  // Serializes one finished pair and flushes it. Thread-compatible, not
  // thread-safe: callers serialize Appends (the durable runner holds a
  // mutex across this call).
  Status Append(const CheckpointedPair& pair);

  // Flushes and closes the underlying file; further Appends fail. Called
  // by the destructor when omitted (destructor swallows the status).
  Status Close();

  int64_t records_written() const { return records_written_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  CheckpointWriter(std::FILE* file, const Options& options)
      : file_(file), options_(options) {}

  std::FILE* file_ = nullptr;
  Options options_;
  int64_t records_written_ = 0;
  int64_t bytes_written_ = 0;
};

}  // namespace jobs
}  // namespace tycos

#endif  // TYCOS_JOBS_CHECKPOINT_H_
