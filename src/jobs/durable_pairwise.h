// Durable pairwise search: PairwiseSearch wrapped in the checkpoint,
// supervision, and admission layers so a multi-million-pair discovery run
// survives crashes, transient faults, and overload.
//
//   * Checkpointing — every finished pair is appended to a crash-safe
//     checkpoint (checkpoint.h); ResumePairwiseSearch skips pairs the
//     checkpoint already holds. Because each pair's search depends only on
//     its own derived seed (PairwiseSeed), a resumed run's final result is
//     bit-identical to an uninterrupted one, at any interrupt point and
//     thread count.
//   * Supervision — each pair runs under retry-with-backoff (supervisor.h).
//     Transient failures heal within the retry bound; permanent failures
//     are isolated to their pair (recorded, excluded from the result) and
//     the run continues. A watchdog time slice, carved from the global
//     RunContext deadline via parent chaining, stops one pathological pair
//     from starving the rest.
//   * Shedding — an admission gate (admission.h) degrades params under
//     memory/queue pressure before refusing work; the level is recorded in
//     each entry and checkpoint record.
//
// Only deterministic stops are checkpointed: a pair cut short by a
// deadline or cancellation reruns on resume, while a pair that exhausted
// its (deterministic) evaluation budget is final and persists.

#ifndef TYCOS_JOBS_DURABLE_PAIRWISE_H_
#define TYCOS_JOBS_DURABLE_PAIRWISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/time_series.h"
#include "jobs/admission.h"
#include "jobs/supervisor.h"
#include "search/fault_injector.h"
#include "search/pairwise.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {
namespace jobs {

struct DurableJobOptions {
  // Where the checkpoint lives. Created when absent; validated (config
  // hash, data fingerprint, seed) and appended to when present. Required.
  std::string checkpoint_path;

  // fsync after every record: survives power loss, costs a disk round trip
  // per pair. Off by default — plain process death (SIGKILL, OOM) never
  // loses flushed records.
  bool fsync_each_record = false;

  // Per-pair retry/backoff policy.
  RetryPolicy retry;

  // Watchdog: each attempt's deadline, seconds (0 = none). The slice is a
  // child of the global RunContext, so the global deadline still wins. A
  // pair whose every attempt exceeds its slice is isolated as a per-pair
  // failure — recorded in `failures` with no entry — and, being
  // un-checkpointed, reruns on a later resume rather than starving this
  // run.
  double pair_time_slice_s = 0.0;

  // Per-pair evaluation budget (0 = none); scaled down by the shed ladder.
  // An evaluation budget set on the global RunContext also applies, per
  // pair (the tighter of the two wins), exactly as PairwiseSearch applies
  // a budgeted ctx to each pair's own evaluation counter.
  int64_t pair_evaluation_budget = 0;

  // Voluntary pause: stop after this many newly searched pairs (0 =
  // unlimited), reporting StopReason::kPaused. Everything searched so far
  // is checkpointed; calling again continues. This is how an operator
  // timeslices a big job across maintenance windows.
  int64_t max_pairs_this_run = 0;

  // Overload shedding thresholds; disabled (never sheds) by default.
  ShedPolicy shed;

  // Injection points, all optional. `probe`/`sleeper` default to the real
  // system probe and sleeper; `faults` (tests only) makes scheduled pair
  // attempts fail instead of running the search.
  LoadProbe* probe = nullptr;
  BackoffSleeper* sleeper = nullptr;
  const PairFaultSchedule* faults = nullptr;
};

// A pair that ended in a permanent (or retry-exhausted) failure, isolated
// from the rest of the run.
struct PairFailure {
  int a = 0;
  int b = 0;
  Status status = Status::Ok();
  int attempts = 0;
};

struct DurableJobStats {
  int64_t pairs_total = 0;      // all unordered pairs of the input
  int64_t pairs_resumed = 0;    // taken finished from the checkpoint
  int64_t pairs_run = 0;        // searched by this invocation
  int64_t pairs_failed = 0;     // isolated failures (see `failures`)
  int64_t pairs_refused = 0;    // shed at level 3 (left for a later resume)
  int64_t pairs_degraded = 0;   // run at shed level 1 or 2
  int64_t retries = 0;          // transient-failure retries across pairs
  int64_t watchdog_timeouts = 0;  // attempts cut by the per-pair slice
  int64_t checkpoint_records_written = 0;
  int64_t checkpoint_bytes_written = 0;
  // First checkpoint-append failure, if any: the run kept computing but
  // durability degraded from that point on (later pairs rerun on resume).
  Status checkpoint_error = Status::Ok();
  std::vector<PairFailure> failures;  // in pair order
};

struct DurableOutcome {
  // Same shape and ordering as PairwiseSearch's result. After a run with
  // no failures/refusals completed every pair, this is bit-identical to
  // the uninterrupted PairwiseSearch result. stop_reason kPaused means
  // "checkpointed and resumable", with pairs_skipped counting what's left.
  PairwiseResult result;
  DurableJobStats stats;
};

// Runs (or resumes) a durable pairwise search. Validates input like
// PairwiseSearch; rejects a checkpoint written by a different
// (params, variant, seed) or different data with InvalidArgument, and a
// corrupt checkpoint with IoError. See the file comment for semantics.
Result<DurableOutcome> ResumePairwiseSearch(
    const std::vector<TimeSeries>& channels, const TycosParams& params,
    TycosVariant variant, uint64_t seed, const RunContext& ctx,
    const DurableJobOptions& options);

}  // namespace jobs
}  // namespace tycos

#endif  // TYCOS_JOBS_DURABLE_PAIRWISE_H_
