#include "jobs/admission.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tycos {
namespace jobs {

namespace {

class SystemLoadProbe : public LoadProbe {
 public:
  LoadSample Sample() override {
    LoadSample s;
    s.rss_bytes = obs::ProcessRssBytes();
    return s;
  }
};

// Level along one axis: 0 below soft, 1 in [soft, mid), 2 in [mid, hard),
// 3 at or above hard. Disabled bounds (0) never trigger; with only a soft
// bound the axis degrades but never refuses, with only a hard bound it
// refuses without a degradation band.
int AxisLevel(int64_t value, int64_t soft, int64_t hard) {
  if (hard > 0 && value >= hard) return 3;
  if (soft > 0 && value >= soft) {
    if (hard > soft) {
      const int64_t mid = soft + (hard - soft) / 2;
      return value >= mid ? 2 : 1;
    }
    return 1;
  }
  return 0;
}

}  // namespace

LoadProbe* LoadProbe::System() {
  static SystemLoadProbe* probe = new SystemLoadProbe;  // process lifetime
  return probe;
}

int ShedLevel(const ShedPolicy& policy, const LoadSample& sample) {
  const int rss = AxisLevel(sample.rss_bytes, policy.rss_soft_bytes,
                            policy.rss_hard_bytes);
  const int queue =
      AxisLevel(sample.queue_depth, policy.queue_soft, policy.queue_hard);
  return std::max(rss, queue);
}

TycosParams DegradeParams(const TycosParams& params, int level) {
  TycosParams p = params;
  if (level >= 1) {
    // Drop the multi-restart fan-in (the single scan is the cheap path)
    // and stop idle climbs from wandering far shells.
    p.num_restarts = 0;
    p.max_neighborhood_level = std::min(p.max_neighborhood_level, 4);
  }
  if (level >= 2) {
    p.max_idle = std::min(p.max_idle, 4);
    p.history_length = std::min(p.history_length, 3);
  }
  return p;
}

double ShedBudgetScale(int level) {
  if (level <= 0) return 1.0;
  return level == 1 ? 0.5 : 0.25;
}

}  // namespace jobs
}  // namespace tycos
