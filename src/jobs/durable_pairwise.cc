#include "jobs/durable_pairwise.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "jobs/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tycos {
namespace jobs {

namespace {

// One unit of not-yet-checkpointed work. `global_index` is the pair's
// position in the full (a, b) enumeration — stable across resumes, so the
// fault schedule and backoff jitter see the same stream no matter how many
// invocations it takes to finish the job.
struct TodoPair {
  int a = 0;
  int b = 0;
  int64_t global_index = 0;
};

// Per-pair scratch written only by the executor that claimed the pair and
// read only after the join (the ThreadPool prefix-claim contract).
struct PairSlot {
  PairwiseEntry entry;
  StopReason finished_reason = StopReason::kCompleted;
  bool include = false;   // entry belongs in the result
  bool finished = false;  // deterministic outcome, safe to checkpoint
  bool refused = false;   // shed at level 3
  bool failed = false;
  bool degraded = false;  // ran at shed level 1 or 2
  Status fail_status = Status::Ok();
  int attempts = 0;
  int64_t retries = 0;
  int64_t watchdog_timeouts = 0;
  // Set when the global context fired while this pair was in flight; the
  // best-so-far partial entry (if any) rides along in `entry`/`include`.
  std::optional<StopReason> global_stop;
};

// Decrements the in-flight gauge on every exit path of the pair body.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<int64_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~InFlightGuard() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<int64_t>* counter_;
};

}  // namespace

Result<DurableOutcome> ResumePairwiseSearch(
    const std::vector<TimeSeries>& channels, const TycosParams& params,
    TycosVariant variant, uint64_t seed, const RunContext& ctx,
    const DurableJobOptions& options) {
  TYCOS_SPAN("durable_pairwise");
  if (options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "DurableJobOptions.checkpoint_path must be set: a durable job "
        "without a checkpoint cannot resume");
  }
  Status st = ValidatePairwiseChannels(channels);
  if (!st.ok()) return st;
  st = params.Validate(channels[0].size());
  if (!st.ok()) return st;

  const uint64_t config_hash = HashSearchConfig(params, variant, seed);
  const uint64_t fingerprint = FingerprintChannels(channels);
  const int n = static_cast<int>(channels.size());
  const int64_t total_pairs = static_cast<int64_t>(n) * (n - 1) / 2;

  DurableOutcome out;
  DurableJobStats& stats = out.stats;
  stats.pairs_total = total_pairs;

  // --- Load the checkpoint and partition finished vs. todo ---------------
  std::vector<char> done(static_cast<size_t>(total_pairs), 0);
  std::vector<PairwiseEntry> entries;
  Result<CheckpointData> loaded = LoadCheckpoint(options.checkpoint_path);
  if (loaded.ok()) {
    const CheckpointData& ckpt = loaded.value();
    if (ckpt.config_hash != config_hash ||
        ckpt.data_fingerprint != fingerprint || ckpt.seed != seed) {
      return Status::InvalidArgument(
          "checkpoint '" + options.checkpoint_path +
          "' was written by a different run (params, data, or seed "
          "changed); delete it to start over");
    }
    entries.reserve(ckpt.pairs.size());
    for (const CheckpointedPair& cp : ckpt.pairs) {
      // Pair index in the (a, b) enumeration: pairs with first index < a,
      // then the offset within a's row.
      const int64_t row_start =
          static_cast<int64_t>(cp.entry.a) * (2 * n - cp.entry.a - 1) / 2;
      const int64_t idx = row_start + (cp.entry.b - cp.entry.a - 1);
      done[static_cast<size_t>(idx)] = 1;
      entries.push_back(cp.entry);
    }
    stats.pairs_resumed = static_cast<int64_t>(entries.size());
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();  // corrupt: never silently restart over it
  }

  std::vector<TodoPair> todo;
  todo.reserve(static_cast<size_t>(total_pairs) - entries.size());
  {
    int64_t idx = 0;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b, ++idx) {
        if (!done[static_cast<size_t>(idx)]) todo.push_back({a, b, idx});
      }
    }
  }

  // Voluntary pause: only take on the first max_pairs_this_run units.
  bool paused = false;
  if (options.max_pairs_this_run > 0 &&
      static_cast<int64_t>(todo.size()) > options.max_pairs_this_run) {
    todo.resize(static_cast<size_t>(options.max_pairs_this_run));
    paused = true;
  }

  static obs::Counter* resumed_counter = obs::GetCounter("jobs.pairs_resumed");
  static obs::Counter* run_counter = obs::GetCounter("jobs.pairs_run");
  static obs::Counter* shed_counter = obs::GetCounter("jobs.pairs_shed");
  static obs::Counter* watchdog_counter =
      obs::GetCounter("jobs.watchdog_timeouts");
  static obs::Counter* attempts_counter =
      obs::GetCounter("jobs.pair_attempts");
  static obs::Counter* ckpt_records_counter =
      obs::GetCounter("jobs.checkpoint_records");
  static obs::Counter* ckpt_bytes_counter =
      obs::GetCounter("jobs.checkpoint_bytes");
  static obs::Gauge* rss_gauge = obs::GetGauge("process.rss_bytes");
  resumed_counter->Add(stats.pairs_resumed);

  // --- Run the remaining pairs under supervision --------------------------
  std::optional<ThreadPool::ForStatus> fs;
  std::vector<PairSlot> slots(todo.size());
  std::optional<CheckpointWriter> writer;
  std::mutex ckpt_mu;  // serializes Append and the error latch below
  bool ckpt_ok = true;

  if (!todo.empty()) {
    CheckpointWriter::Options wopts;
    wopts.config_hash = config_hash;
    wopts.data_fingerprint = fingerprint;
    wopts.seed = seed;
    wopts.num_channels = static_cast<uint32_t>(n);
    wopts.series_length = channels[0].size();
    wopts.fsync_each_record = options.fsync_each_record;
    Result<CheckpointWriter> opened =
        CheckpointWriter::Open(options.checkpoint_path, wopts);
    if (!opened.ok()) return opened.status();
    writer.emplace(std::move(opened.value()));

    LoadProbe* probe =
        options.probe != nullptr ? options.probe : LoadProbe::System();
    BackoffSleeper* sleeper = options.sleeper != nullptr
                                  ? options.sleeper
                                  : BackoffSleeper::Default();

    // Inner searches stay sequential, exactly like PairwiseSearch: the pair
    // level owns the parallelism, and thread count must not affect results.
    TycosParams inner = params;
    inner.num_threads = 1;

    std::atomic<int64_t> in_flight{0};

    const int threads = static_cast<int>(
        std::min<int64_t>(ThreadPool::ResolveThreadCount(params.num_threads),
                          static_cast<int64_t>(todo.size())));
    ThreadPool pool(threads - 1);
    fs = pool.ParallelFor(
        static_cast<int64_t>(todo.size()), ctx,
        [&](int64_t i) -> std::optional<StopReason> {
          PairSlot& slot = slots[static_cast<size_t>(i)];
          const TodoPair& td = todo[static_cast<size_t>(i)];
          InFlightGuard guard(&in_flight);

          // Admission: probe load (overlaying our own in-flight count on
          // the probe's queue depth) and pick this pair's shed level.
          LoadSample sample = probe->Sample();
          sample.queue_depth += in_flight.load(std::memory_order_relaxed);
          rss_gauge->Set(sample.rss_bytes);
          const int level =
              options.shed.enabled() ? ShedLevel(options.shed, sample) : 0;
          if (level >= 3) {
            // Refused, not failed: the pair stays un-checkpointed and a
            // later, less-loaded resume picks it up.
            slot.refused = true;
            shed_counter->Add(1);
            return std::nullopt;
          }
          slot.degraded = level > 0;
          const TycosParams run_params = DegradeParams(inner, level);

          const auto attempt = [&](int attempt_no) -> Status {
            slot.attempts = attempt_no;
            attempts_counter->Add(1);
            if (options.faults != nullptr) {
              const FaultClass fc =
                  options.faults->At(td.global_index, attempt_no);
              if (fc != FaultClass::kNone) {
                return PairFaultSchedule::MakeStatus(fc, td.global_index,
                                                     attempt_no);
              }
            }
            // Watchdog slice + scaled budget, chained under the global
            // context so a global stop still reaches the inner search.
            RunContext child;
            child.SetParent(&ctx);
            if (options.pair_time_slice_s > 0) {
              child.SetDeadlineAfter(options.pair_time_slice_s);
            }
            // Budget: the tighter of the shed-scaled per-pair budget and
            // the caller's global budget wins. Parent chaining skips
            // budgets by design (they count against the poller's own
            // evaluation counter), so the global one is folded in here —
            // per pair, exactly as PairwiseSearch applies a budgeted ctx.
            int64_t budget = 0;
            if (options.pair_evaluation_budget > 0) {
              const double scaled = static_cast<double>(
                                        options.pair_evaluation_budget) *
                                    ShedBudgetScale(level);
              budget = std::max<int64_t>(1, static_cast<int64_t>(scaled));
            }
            const int64_t global_budget = ctx.evaluation_budget();
            if (global_budget > 0) {
              budget = budget > 0 ? std::min(budget, global_budget)
                                  : global_budget;
            }
            if (budget > 0) child.SetEvaluationBudget(budget);
            Result<PairOutcome> outcome = SearchPair(
                channels, td.a, td.b, run_params, variant, seed, child);
            if (!outcome.ok()) return outcome.status();
            const StopReason reason = outcome.value().stop_reason;
            if (reason == StopReason::kCompleted ||
                reason == StopReason::kBudgetExhausted) {
              // Deterministic outcome: final, and safe to checkpoint.
              slot.entry = std::move(outcome.value().entry);
              slot.entry.shed_level = level;
              slot.finished_reason = reason;
              slot.include = true;
              slot.finished = true;
              return Status::Ok();
            }
            // The search was cut by a deadline or cancellation. If the
            // global context fired, the sweep is ending: keep the partial
            // entry (never checkpointed — it is timing-dependent) and stop.
            if (const std::optional<StopReason> g = ctx.ShouldStop(0)) {
              slot.entry = std::move(outcome.value().entry);
              slot.entry.shed_level = level;
              slot.include = true;
              slot.global_stop = *g;
              return Status::Ok();
            }
            // Otherwise our own watchdog slice expired: transiently retry
            // (a fresh attempt may land on a quieter machine moment).
            ++slot.watchdog_timeouts;
            watchdog_counter->Add(1);
            return Status::Unavailable(
                "pair (" + std::to_string(td.a) + ", " +
                std::to_string(td.b) + ") exceeded its " +
                std::to_string(options.pair_time_slice_s) +
                "s watchdog time slice");
          };

          const SuperviseResult sres = Supervise(
              options.retry, seed, td.global_index, ctx, sleeper, attempt);
          slot.attempts = sres.attempts;
          slot.retries = sres.transient_failures;
          run_counter->Add(1);
          if (sres.stopped.has_value()) {
            // Global stop between attempts or during backoff; no entry.
            slot.global_stop = sres.stopped;
            return sres.stopped;
          }
          if (!sres.final_status.ok()) {
            // Permanent or retry-exhausted: isolate to this pair, keep
            // sweeping. It stays un-checkpointed, so a resume retries it.
            slot.failed = true;
            slot.fail_status = sres.final_status;
            return std::nullopt;
          }
          if (slot.global_stop.has_value()) return slot.global_stop;
          if (slot.finished) {
            std::lock_guard<std::mutex> lock(ckpt_mu);
            if (ckpt_ok) {
              const Status append_st =
                  writer->Append({slot.entry, slot.finished_reason});
              if (!append_st.ok()) {
                // Keep computing, but stop touching the file: durability
                // degrades (this and later pairs rerun on resume) rather
                // than the whole run dying on a full disk.
                ckpt_ok = false;
                stats.checkpoint_error = append_st;
              }
            }
          }
          return std::nullopt;
        });

    const Status close_st = writer->Close();
    if (!close_st.ok() && stats.checkpoint_error.ok()) {
      stats.checkpoint_error = close_st;
    }
    stats.checkpoint_records_written = writer->records_written();
    stats.checkpoint_bytes_written = writer->bytes_written();
    ckpt_records_counter->Add(writer->records_written());
    ckpt_bytes_counter->Add(writer->bytes_written());
  }

  // --- Merge, in pair order, then sort ------------------------------------
  const int64_t claimed = fs.has_value() ? fs->claimed : 0;
  for (int64_t i = 0; i < claimed; ++i) {
    PairSlot& slot = slots[static_cast<size_t>(i)];
    const TodoPair& td = todo[static_cast<size_t>(i)];
    if (slot.refused) {
      ++stats.pairs_refused;
      continue;
    }
    ++stats.pairs_run;
    if (slot.degraded) ++stats.pairs_degraded;
    stats.retries += slot.retries;
    stats.watchdog_timeouts += slot.watchdog_timeouts;
    if (slot.failed) {
      ++stats.pairs_failed;
      stats.failures.push_back(
          {td.a, td.b, slot.fail_status, slot.attempts});
    }
    if (slot.include) entries.push_back(std::move(slot.entry));
  }

  PairwiseResult& result = out.result;
  result.entries = std::move(entries);
  SortPairwiseEntries(&result.entries);
  result.pairs_searched = static_cast<int64_t>(result.entries.size());
  result.pairs_skipped = total_pairs - result.pairs_searched;
  if (fs.has_value() && fs->stop.has_value()) {
    result.stop_reason = *fs->stop;
  } else if (paused) {
    result.stop_reason = StopReason::kPaused;
  } else {
    result.stop_reason = StopReason::kCompleted;
  }
  result.partial = result.stop_reason != StopReason::kCompleted ||
                   result.pairs_skipped > 0 || stats.pairs_failed > 0;
  return out;
}

}  // namespace jobs
}  // namespace tycos
