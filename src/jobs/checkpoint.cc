#include "jobs/checkpoint.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tycos {
namespace jobs {

namespace {

// The header is fixed-size so a loader can validate it before trusting any
// length field. Values are stored host-endian: checkpoints are a local
// crash-recovery artifact, not a portable interchange format.
constexpr char kMagic[8] = {'T', 'Y', 'C', 'O', 'S', 'C', 'K', 'P'};
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8;
constexpr size_t kRecordFixedSize = 4 + 4 + 1 + 1 + 2 + 8 + 4;
constexpr size_t kWindowSize = 8 + 8 + 8 + 8;
// A record longer than this cannot be legitimate (window counts are bounded
// by the series length; this guards length-prefix corruption before any
// allocation happens).
constexpr uint32_t kMaxRecordPayload = 1u << 28;

uint64_t Fnv1a(const uint8_t* data, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}
uint64_t Fnv1a(const uint8_t* data, size_t n) {
  return Fnv1a(data, n, 14695981039346656037ull);
}

class ByteBuffer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  // Bit-pattern copy: the round trip reproduces the double exactly,
  // including -0.0 and every last mantissa bit.
  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }
  std::vector<uint8_t> bytes_;
};

// Bounds-checked forward reader over a loaded byte range.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), n_(n) {}

  size_t remaining() const { return n_ - pos_; }
  size_t pos() const { return pos_; }

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU16(uint16_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetDouble(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

 private:
  bool GetRaw(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t n_;
  size_t pos_ = 0;
};

ByteBuffer SerializeHeader(const CheckpointWriter::Options& options) {
  ByteBuffer buf;
  for (char c : kMagic) buf.PutU8(static_cast<uint8_t>(c));
  buf.PutU32(kCheckpointFormatVersion);
  buf.PutU32(options.num_channels);
  buf.PutU64(options.config_hash);
  buf.PutU64(options.data_fingerprint);
  buf.PutU64(options.seed);
  buf.PutI64(options.series_length);
  buf.PutU64(Fnv1a(buf.data(), buf.size()));
  return buf;
}

ByteBuffer SerializeRecordPayload(const CheckpointedPair& pair) {
  ByteBuffer buf;
  buf.PutU32(static_cast<uint32_t>(pair.entry.a));
  buf.PutU32(static_cast<uint32_t>(pair.entry.b));
  buf.PutU8(pair.entry.partial ? 1 : 0);
  buf.PutU8(static_cast<uint8_t>(pair.stop_reason));
  buf.PutU16(static_cast<uint16_t>(pair.entry.shed_level));
  buf.PutDouble(pair.entry.best_score);
  const std::vector<Window>& ws = pair.entry.windows.windows();
  buf.PutU32(static_cast<uint32_t>(ws.size()));
  // Windows are serialized in the set's own (insertion) order; non-nested
  // windows re-Insert without reshuffling, so the loaded WindowSet iterates
  // bit-identically to the one that was saved.
  for (const Window& w : ws) {
    buf.PutI64(w.start);
    buf.PutI64(w.end);
    buf.PutI64(w.delay);
    buf.PutDouble(w.mi);
  }
  return buf;
}

Status ParseRecordPayload(const uint8_t* data, size_t n, uint32_t num_channels,
                          CheckpointedPair* out) {
  ByteReader in(data, n);
  uint32_t a = 0;
  uint32_t b = 0;
  uint8_t partial = 0;
  uint8_t stop = 0;
  uint16_t shed = 0;
  uint32_t window_count = 0;
  if (!in.GetU32(&a) || !in.GetU32(&b) || !in.GetU8(&partial) ||
      !in.GetU8(&stop) || !in.GetU16(&shed) ||
      !in.GetDouble(&out->entry.best_score) || !in.GetU32(&window_count)) {
    return Status::IoError("checkpoint record payload too short");
  }
  if (a >= b || b >= num_channels) {
    return Status::IoError("checkpoint record has invalid pair (" +
                           std::to_string(a) + ", " + std::to_string(b) +
                           ") for " + std::to_string(num_channels) +
                           " channels");
  }
  if (stop > static_cast<uint8_t>(StopReason::kPaused)) {
    return Status::IoError("checkpoint record has unknown stop reason " +
                           std::to_string(stop));
  }
  if (in.remaining() != window_count * kWindowSize) {
    return Status::IoError(
        "checkpoint record length does not match its window count");
  }
  out->entry.a = static_cast<int>(a);
  out->entry.b = static_cast<int>(b);
  out->entry.partial = partial != 0;
  out->stop_reason = static_cast<StopReason>(stop);
  out->entry.shed_level = shed;
  for (uint32_t i = 0; i < window_count; ++i) {
    Window w;
    if (!in.GetI64(&w.start) || !in.GetI64(&w.end) || !in.GetI64(&w.delay) ||
        !in.GetDouble(&w.mi)) {
      return Status::IoError("checkpoint record window truncated");
    }
    out->entry.windows.Insert(w);
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // Only a genuinely absent file maps to NotFound. Any other failure
    // (EACCES, fd exhaustion, a file where a directory was expected) must
    // surface as an error, so a caller never mistakes an unreadable
    // checkpoint for a missing one.
    if (errno == ENOENT) {
      return Status::NotFound("checkpoint " + path + " does not exist");
    }
    return Status::IoError("cannot open checkpoint " + path + ": " +
                           std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[65536];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || read_error) {
    return Status::IoError("read of checkpoint " + path + " failed");
  }
  return bytes;
}

Status ValidateHeader(ByteReader* in, const std::string& path,
                      CheckpointData* out) {
  if (in->remaining() < kHeaderSize) {
    return Status::IoError("checkpoint " + path + " is truncated: " +
                           std::to_string(in->remaining()) +
                           " bytes, header needs " +
                           std::to_string(kHeaderSize));
  }
  uint8_t magic[8];
  for (uint8_t& m : magic) {
    if (!in->GetU8(&m)) return Status::IoError("unreadable header");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("checkpoint " + path +
                           " has bad magic (not a TYCOS checkpoint)");
  }
  uint32_t version = 0;
  uint64_t header_crc = 0;
  if (!in->GetU32(&version) || !in->GetU32(&out->num_channels) ||
      !in->GetU64(&out->config_hash) || !in->GetU64(&out->data_fingerprint) ||
      !in->GetU64(&out->seed) || !in->GetI64(&out->series_length) ||
      !in->GetU64(&header_crc)) {
    return Status::IoError("unreadable header");
  }
  if (version != kCheckpointFormatVersion) {
    return Status::IoError("checkpoint " + path + " has format version " +
                           std::to_string(version) + ", this build reads " +
                           std::to_string(kCheckpointFormatVersion));
  }
  // Re-serialize what we parsed and compare checksums: one code path
  // defines the byte layout for both directions.
  CheckpointWriter::Options opts;
  opts.num_channels = out->num_channels;
  opts.config_hash = out->config_hash;
  opts.data_fingerprint = out->data_fingerprint;
  opts.seed = out->seed;
  opts.series_length = out->series_length;
  const ByteBuffer expect = SerializeHeader(opts);
  uint64_t expect_crc = 0;
  std::memcpy(&expect_crc, expect.data() + expect.size() - sizeof(expect_crc),
              sizeof(expect_crc));
  if (header_crc != expect_crc) {
    return Status::IoError("checkpoint " + path +
                           " header checksum mismatch (corrupt header)");
  }
  return Status::Ok();
}

// Writes `n` bytes to `path` via a temp file and atomic rename, so a crash
// mid-write never leaves a half-written file under the real name.
Status WriteFileAtomically(const std::string& path, const uint8_t* data,
                           size_t n, bool sync) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create checkpoint temp file " + tmp);
  }
  const bool wrote = std::fwrite(data, 1, n, f) == n && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  const bool synced = !sync || fsync(fileno(f)) == 0;
#else
  (void)sync;
  const bool synced = true;
#endif
  if (std::fclose(f) != 0 || !wrote || !synced) {
    return Status::IoError("write of checkpoint bytes to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("atomic rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

// Walks the record log from `in`'s position (just past the header) to EOF.
// Every complete record must checksum and parse; an incomplete or
// checksum-failing record at EOF is the torn tail of a crashed append and
// ends the walk. On success *valid_end is the offset one past the last
// valid record — bytes [*valid_end, file size) are the torn tail, empty on
// a clean file. When `out` is non-null the parsed pairs are appended to it,
// first record per pair winning (per-pair determinism makes any duplicate
// byte-identical anyway).
Status WalkRecords(const std::vector<uint8_t>& bytes, ByteReader* in,
                   const std::string& path, uint32_t num_channels,
                   std::vector<CheckpointedPair>* out, size_t* valid_end) {
  std::vector<bool> seen;
  *valid_end = in->pos();
  while (in->remaining() > 0) {
    const size_t record_start = in->pos();
    uint32_t len = 0;
    if (!in->GetU32(&len) || len > kMaxRecordPayload ||
        in->remaining() < len + sizeof(uint64_t)) {
      break;  // length prefix runs past EOF: torn tail
    }
    const uint8_t* payload = bytes.data() + in->pos();
    uint64_t stored_crc = 0;
    if (!in->Skip(len) || !in->GetU64(&stored_crc)) break;
    if (Fnv1a(payload, len) != stored_crc) {
      if (in->remaining() == 0) {
        // Checksum failure on the very last record: a partially persisted
        // append (e.g. power loss without fsync). Tolerated as a torn tail.
        break;
      }
      return Status::IoError("checkpoint " + path +
                             " record checksum mismatch at byte " +
                             std::to_string(record_start) +
                             " (interior corruption)");
    }
    CheckpointedPair pair;
    const Status st = ParseRecordPayload(payload, len, num_channels, &pair);
    if (!st.ok()) {
      return Status::IoError("checkpoint " + path + ": " + st.message());
    }
    *valid_end = in->pos();
    if (out == nullptr) continue;
    const size_t key = static_cast<size_t>(pair.entry.a) * num_channels +
                       static_cast<size_t>(pair.entry.b);
    if (seen.empty()) {
      seen.assign(static_cast<size_t>(num_channels) * num_channels, false);
    }
    if (seen[key]) continue;
    seen[key] = true;
    out->push_back(std::move(pair));
  }
  return Status::Ok();
}

}  // namespace

uint64_t FingerprintChannels(const std::vector<TimeSeries>& channels) {
  uint64_t h = 14695981039346656037ull;
  const uint64_t count = channels.size();
  h = Fnv1a(reinterpret_cast<const uint8_t*>(&count), sizeof(count), h);
  for (const TimeSeries& c : channels) {
    const uint64_t len = static_cast<uint64_t>(c.size());
    h = Fnv1a(reinterpret_cast<const uint8_t*>(&len), sizeof(len), h);
    h = Fnv1a(reinterpret_cast<const uint8_t*>(c.name().data()),
              c.name().size(), h);
    // One separator byte so ("ab", "") and ("a", "b") cannot collide.
    const uint8_t sep = 0;
    h = Fnv1a(&sep, 1, h);
    if (!c.values().empty()) {
      h = Fnv1a(reinterpret_cast<const uint8_t*>(c.values().data()),
                c.values().size() * sizeof(double), h);
    }
  }
  return h;
}

uint64_t HashSearchConfig(const TycosParams& p, TycosVariant variant,
                          uint64_t seed) {
  ByteBuffer buf;
  buf.PutDouble(p.sigma);
  buf.PutI64(p.s_min);
  buf.PutI64(p.s_max);
  buf.PutI64(p.td_max);
  buf.PutDouble(p.epsilon_ratio);
  buf.PutI64(p.delta);
  buf.PutI64(p.initial_delay_step);
  buf.PutU32(static_cast<uint32_t>(p.history_length));
  buf.PutU32(static_cast<uint32_t>(p.max_idle));
  buf.PutU32(static_cast<uint32_t>(p.max_neighborhood_level));
  buf.PutU32(static_cast<uint32_t>(p.top_k));
  buf.PutU32(static_cast<uint32_t>(p.num_restarts));
  buf.PutU8(p.cache_evaluations ? 1 : 0);
  buf.PutU32(static_cast<uint32_t>(p.k));
  buf.PutU8(static_cast<uint8_t>(p.backend));
  buf.PutDouble(p.tie_jitter);
  buf.PutI64(p.theiler_window);
  buf.PutU8(static_cast<uint8_t>(p.normalization));
  buf.PutDouble(p.small_sample_penalty);
  buf.PutU8(static_cast<uint8_t>(variant));
  buf.PutU64(seed);
  return Fnv1a(buf.data(), buf.size());
}

Result<CheckpointData> LoadCheckpoint(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  ByteReader in(bytes.value().data(), bytes.value().size());

  CheckpointData data;
  Status st = ValidateHeader(&in, path, &data);
  if (!st.ok()) return st;

  size_t valid_end = 0;
  st = WalkRecords(bytes.value(), &in, path, data.num_channels, &data.pairs,
                   &valid_end);
  if (!st.ok()) return st;
  data.dropped_tail_bytes =
      static_cast<int64_t>(bytes.value().size() - valid_end);
  return data;
}

Result<CheckpointWriter> CheckpointWriter::Open(const std::string& path,
                                                const Options& options) {
  Result<std::vector<uint8_t>> existing = ReadFileBytes(path);
  if (!existing.ok() && existing.status().code() != StatusCode::kNotFound) {
    // EACCES, fd exhaustion, ...: an unreadable checkpoint must never be
    // mistaken for an absent one — falling through to the fresh-file path
    // would rename an empty header over the caller's persisted progress.
    return existing.status();
  }

  if (existing.ok()) {
    // Existing file: validate it against ours, cut any torn tail a crashed
    // append left behind, then append after the last valid record.
    const std::vector<uint8_t>& bytes = existing.value();
    ByteReader in(bytes.data(), bytes.size());
    CheckpointData data;
    const Status st = ValidateHeader(&in, path, &data);
    if (!st.ok()) return st;
    if (data.config_hash != options.config_hash ||
        data.data_fingerprint != options.data_fingerprint ||
        data.seed != options.seed) {
      return Status::InvalidArgument(
          "checkpoint " + path +
          " was written by a different run (params, data, or seed changed); "
          "delete it to start over");
    }
    // Appending after a torn tail would turn it into *interior* corruption
    // on the next load and reject the whole file, so the tail must go
    // before the first new record — rewritten through the same
    // temp + rename dance, because the truncation itself has to be
    // crash-safe (a crash mid-rewrite leaves the original intact).
    size_t valid_end = 0;
    const Status walk = WalkRecords(bytes, &in, path, data.num_channels,
                                    /*out=*/nullptr, &valid_end);
    if (!walk.ok()) return walk;
    if (valid_end < bytes.size()) {
      const Status cut = WriteFileAtomically(path, bytes.data(), valid_end,
                                             options.fsync_each_record);
      if (!cut.ok()) return cut;
    }
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      return Status::IoError("cannot open checkpoint " + path +
                             " for appending");
    }
    return CheckpointWriter(f, options);
  }

  // Fresh file: write the header atomically, so a crash mid-create never
  // leaves a half-written header under the real name.
  const ByteBuffer header = SerializeHeader(options);
  const Status st = WriteFileAtomically(path, header.data(), header.size(),
                                        options.fsync_each_record);
  if (!st.ok()) return st;
  std::FILE* out = std::fopen(path.c_str(), "ab");
  if (out == nullptr) {
    return Status::IoError("cannot reopen checkpoint " + path +
                           " for appending");
  }
  return CheckpointWriter(out, options);
}

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : file_(other.file_),
      options_(other.options_),
      records_written_(other.records_written_),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

CheckpointWriter::~CheckpointWriter() { (void)Close(); }

Status CheckpointWriter::Append(const CheckpointedPair& pair) {
  if (file_ == nullptr) {
    return Status::Internal("checkpoint writer is closed");
  }
  const ByteBuffer payload = SerializeRecordPayload(pair);
  // Assemble len | payload | crc in one contiguous buffer: one write, one
  // flush, so the kernel sees whole records whenever it can and the
  // torn-tail window stays minimal.
  ByteBuffer wire;
  wire.PutU32(static_cast<uint32_t>(payload.size()));
  for (size_t i = 0; i < payload.size(); ++i) wire.PutU8(payload.data()[i]);
  wire.PutU64(Fnv1a(payload.data(), payload.size()));
  if (std::fwrite(wire.data(), 1, wire.size(), file_) != wire.size()) {
    return Status::IoError("checkpoint record write failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("checkpoint record flush failed");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (options_.fsync_each_record && fsync(fileno(file_)) != 0) {
    return Status::IoError("checkpoint record fsync failed");
  }
#endif
  ++records_written_;
  bytes_written_ += static_cast<int64_t>(wire.size());
  return Status::Ok();
}

Status CheckpointWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return Status::IoError("checkpoint close failed");
  }
  return Status::Ok();
}

}  // namespace jobs
}  // namespace tycos
