#include "jobs/supervisor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/rng.h"
#include "obs/metrics.h"

namespace tycos {
namespace jobs {

const char* ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kTransient:
      return "transient";
    case ErrorClass::kPermanent:
      return "permanent";
  }
  return "unknown";
}

ErrorClass ClassifyStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kIoError:
      return ErrorClass::kTransient;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kInternal:
      return ErrorClass::kPermanent;
  }
  return ErrorClass::kPermanent;
}

double BackoffSeconds(const RetryPolicy& policy, uint64_t seed, int64_t unit,
                      int attempt) {
  double backoff = policy.initial_backoff_s;
  for (int i = 1; i < attempt; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, policy.max_backoff_s);
  if (policy.jitter_ratio > 0.0) {
    // Deterministic jitter in [1 - r, 1 + r): a SplitMix64 stream keyed on
    // (unit, attempt), never wall clock — reproducible and thread-safe.
    const uint64_t stream = static_cast<uint64_t>(unit) * 1000003u +
                            static_cast<uint64_t>(attempt);
    const uint64_t h = DeriveStreamSeed(seed, stream);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 + policy.jitter_ratio * (2.0 * u - 1.0);
  }
  return backoff;
}

namespace {

// Real sleeper: waits on a private condition variable in short slices so a
// RunContext stop is honored within one slice. A cv wait (not a timed
// sleep) keeps the wait interruptible and plays by the repo's no-blind-
// sleep rule.
class RealSleeper : public BackoffSleeper {
 public:
  std::optional<StopReason> Sleep(double seconds,
                                  const RunContext& ctx) override {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    std::unique_lock<std::mutex> lock(mu_);
    while (Clock::now() < until) {
      if (const std::optional<StopReason> stop = ctx.ShouldStop()) {
        return stop;
      }
      const Clock::time_point slice =
          std::min(until, Clock::now() + std::chrono::milliseconds(10));
      cv_.wait_until(lock, slice);
    }
    return ctx.ShouldStop();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

BackoffSleeper* BackoffSleeper::Default() {
  static RealSleeper* sleeper = new RealSleeper;  // leaked: process lifetime
  return sleeper;
}

SuperviseResult Supervise(const RetryPolicy& policy, uint64_t seed,
                          int64_t unit, const RunContext& ctx,
                          BackoffSleeper* sleeper,
                          const std::function<Status(int)>& attempt) {
  static obs::Counter* retries = obs::GetCounter("jobs.retries");
  static obs::Counter* transient = obs::GetCounter("jobs.transient_failures");
  static obs::Counter* permanent = obs::GetCounter("jobs.permanent_failures");

  SuperviseResult result;
  const int max_attempts = std::max(policy.max_attempts, 1);
  for (int n = 1; n <= max_attempts; ++n) {
    if (const std::optional<StopReason> stop = ctx.ShouldStop()) {
      result.stopped = stop;
      return result;
    }
    ++result.attempts;
    result.final_status = attempt(n);
    if (result.final_status.ok()) return result;
    if (ClassifyStatus(result.final_status) == ErrorClass::kPermanent) {
      permanent->Add(1);
      return result;
    }
    transient->Add(1);
    ++result.transient_failures;
    if (n == max_attempts) return result;  // retry budget exhausted
    retries->Add(1);
    const double backoff = BackoffSeconds(policy, seed, unit, n);
    result.backoff_total_s += backoff;
    if (const std::optional<StopReason> stop = sleeper->Sleep(backoff, ctx)) {
      result.stopped = stop;
      return result;
    }
  }
  return result;
}

}  // namespace jobs
}  // namespace tycos
