// Overload shedding for durable jobs: a memory/queue-depth admission gate
// that degrades work before refusing it. Each unit of work is admitted at a
// *shed level*; the ladder trades result thoroughness for resource headroom
// one rung at a time:
//
//   level 0  full params
//   level 1  degraded search (no multi-restart fan-in, shallower
//            neighborhood exploration), evaluation budget halved
//   level 2  level 1 plus a tighter idle cutoff and shorter LAHC history,
//            evaluation budget quartered
//   level 3  refuse: the unit is not run this invocation (it stays
//            un-checkpointed, so a later resume picks it up)
//
// The level each pair ran at is recorded in its result and checkpoint
// record, so degraded answers are never mistaken for full-fidelity ones.
// Probing is behind the LoadProbe interface: production uses the process
// RSS (obs::ProcessRssBytes) and live queue depth; tests inject a scripted
// probe to drive the ladder deterministically.

#ifndef TYCOS_JOBS_ADMISSION_H_
#define TYCOS_JOBS_ADMISSION_H_

#include <cstdint>

#include "search/params.h"

namespace tycos {
namespace jobs {

// A point-in-time load reading.
struct LoadSample {
  int64_t rss_bytes = 0;    // process resident set size, 0 = unknown
  int64_t queue_depth = 0;  // units admitted but not yet finished
};

class LoadProbe {
 public:
  virtual ~LoadProbe() = default;
  virtual LoadSample Sample() = 0;

  // The process-wide default: RSS from obs::ProcessRssBytes, queue depth 0
  // (the runner overlays its own in-flight count).
  static LoadProbe* System();
};

// Thresholds for the ladder; 0 disables the corresponding axis. Crossing a
// soft threshold degrades (level 1, then 2 past the midpoint between soft
// and hard); crossing a hard threshold refuses (level 3).
struct ShedPolicy {
  int64_t rss_soft_bytes = 0;
  int64_t rss_hard_bytes = 0;
  int64_t queue_soft = 0;
  int64_t queue_hard = 0;

  bool enabled() const {
    return rss_soft_bytes > 0 || rss_hard_bytes > 0 || queue_soft > 0 ||
           queue_hard > 0;
  }
};

// The shed level (0..3) the given load maps to under `policy`. The worst
// (highest) level over the enabled axes wins.
int ShedLevel(const ShedPolicy& policy, const LoadSample& sample);

// Applies shed level `level` to a parameter set: the coarser-params rungs
// of the ladder above. Level 0 returns `params` unchanged; level 3 is the
// caller's job (refuse before running). Deterministic — the same (params,
// level) always degrades identically, so a checkpointed shed pair replays
// bit-identically.
TycosParams DegradeParams(const TycosParams& params, int level);

// The evaluation-budget scale for a shed level: 1, 1/2, 1/4 for levels
// 0, 1, 2. Applied by the runner to its per-pair budget when one is set.
double ShedBudgetScale(int level);

}  // namespace jobs
}  // namespace tycos

#endif  // TYCOS_JOBS_ADMISSION_H_
