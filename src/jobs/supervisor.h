// Per-unit failure supervision for durable jobs: classify errors as
// transient or permanent, retry transient ones with exponential backoff and
// deterministic jitter, and give every attempt a watchdog time slice carved
// from the global RunContext deadline. The supervisor is generic over the
// work unit (a std::function returning Status) so it is testable without
// running a real search; the durable pairwise runner (durable_pairwise.h)
// wraps each pair's search in it.

#ifndef TYCOS_JOBS_SUPERVISOR_H_
#define TYCOS_JOBS_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "common/run_context.h"
#include "common/status.h"

namespace tycos {
namespace jobs {

// Whether a failed attempt is worth retrying. Transient codes (I/O
// hiccups, shed/overload refusals, watchdog expiries) heal under retry;
// everything else — invalid input, internal invariant failures — will fail
// identically every time and is isolated to its unit immediately.
enum class ErrorClass { kTransient, kPermanent };

// "transient" / "permanent".
const char* ErrorClassName(ErrorClass c);

ErrorClass ClassifyStatus(const Status& status);

// Bounded exponential backoff with multiplicative jitter. All knobs in
// seconds. The jitter is a pure function of (seed, unit, attempt) — see
// BackoffSeconds — so a retry schedule is reproducible across runs and
// thread counts while still decorrelating units that fail together.
struct RetryPolicy {
  int max_attempts = 3;           // total attempts, first one included
  double initial_backoff_s = 0.02;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;
  double jitter_ratio = 0.25;     // backoff scaled by 1 ± jitter_ratio
};

// The wait before attempt `attempt + 1` (attempt is 1-based, so the wait
// after the first failure is BackoffSeconds(policy, seed, unit, 1)).
double BackoffSeconds(const RetryPolicy& policy, uint64_t seed, int64_t unit,
                      int attempt);

// How the supervisor waits out a backoff. The default implementation waits
// on a condition variable in short slices, polling the RunContext so a
// cancellation or deadline interrupts the wait promptly (never a blind
// timed sleep). Tests inject a recording fake to run retry schedules in
// zero wall time.
class BackoffSleeper {
 public:
  virtual ~BackoffSleeper() = default;

  // Waits `seconds`, or less if `ctx` fires; returns the stop reason when
  // interrupted, nullopt after a full wait.
  virtual std::optional<StopReason> Sleep(double seconds,
                                          const RunContext& ctx) = 0;

  // The process-wide default (real) sleeper.
  static BackoffSleeper* Default();
};

// One unit's supervision summary.
struct SuperviseResult {
  Status final_status = Status::Ok();  // Ok when some attempt succeeded
  int attempts = 0;                    // attempts actually made
  int transient_failures = 0;          // failures that were retried
  double backoff_total_s = 0.0;        // backoff requested (not wall time)
  // Set when the loop ended because the global context fired rather than
  // because the unit succeeded or exhausted its retries.
  std::optional<StopReason> stopped;
};

// Runs `attempt(n)` (n = 1-based attempt number) until it returns Ok, a
// permanent error, the retry budget is exhausted, or `ctx` fires. Backoff
// waits happen between transient failures and are themselves interruptible
// by `ctx`. `seed`/`unit` only feed the jitter.
SuperviseResult Supervise(const RetryPolicy& policy, uint64_t seed,
                          int64_t unit, const RunContext& ctx,
                          BackoffSleeper* sleeper,
                          const std::function<Status(int)>& attempt);

}  // namespace jobs
}  // namespace tycos

#endif  // TYCOS_JOBS_SUPERVISOR_H_
