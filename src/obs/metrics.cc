#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace tycos {
namespace obs {

namespace {

// Atomics per cache line: each shard's bucket block is padded to a multiple
// of this so shards never share a line.
constexpr size_t kCellsPerLine = 64 / sizeof(std::atomic<int64_t>);

}  // namespace

size_t ThisThreadShard() {
  static std::atomic<uint64_t> next_shard{0};
  thread_local const size_t shard = static_cast<size_t>(
      next_shard.fetch_add(1, std::memory_order_relaxed) % kShards);
  return shard;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

int64_t HistogramSnapshot::total() const {
  int64_t t = 0;
  for (int64_t c : counts) t += c;
  return t;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  const size_t buckets = bounds_.size() + 1;  // + overflow
  padded_buckets_ =
      (buckets + kCellsPerLine - 1) / kCellsPerLine * kCellsPerLine;
  cells_ = std::vector<std::atomic<int64_t>>(kShards * padded_buckets_);
}

size_t Histogram::BucketIndex(double v) const {
  // First bucket whose upper bound covers v; everything above the last
  // bound — and NaN, routed explicitly — lands in the overflow bucket.
  if (std::isnan(v)) return bounds_.size();
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<size_t>(it - bounds_.begin());
}

void Histogram::ObserveCount(double v, int64_t n) {
  const size_t idx =
      ThisThreadShard() * padded_buckets_ + BucketIndex(v);
  cells_[idx].fetch_add(n, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] +=
          cells_[s * padded_buckets_ + b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (std::atomic<int64_t>& c : cells_) {
    c.store(0, std::memory_order_relaxed);
  }
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  for (const CounterSnapshot& c : counters) {
    out << c.name << ": " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    out << g.name << ": " << g.value << " (gauge)\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    out << h.name << ": total " << h.total() << " [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << " ";
      if (b < h.bounds.size()) {
        out << "<=" << h.bounds[b] << ":" << h.counts[b];
      } else {
        out << "inf:" << h.counts[b];
      }
    }
    out << "]\n";
  }
  return out.str();
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // leaked: process lifetime
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Counter>& c : counters_) {
    if (c->name() == name) return c.get();
  }
  counters_.push_back(std::make_unique<Counter>(name));
  return counters_.back().get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Gauge>& g : gauges_) {
    if (g->name() == name) return g.get();
  }
  gauges_.push_back(std::make_unique<Gauge>(name));
  return gauges_.back().get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Histogram>& h : histograms_) {
    if (h->name() == name) return h.get();
  }
  histograms_.push_back(std::make_unique<Histogram>(name, bounds));
  return histograms_.back().get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const std::unique_ptr<Counter>& c : counters_) {
    snap.counters.push_back({c->name(), c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const std::unique_ptr<Gauge>& g : gauges_) {
    snap.gauges.push_back({g->name(), g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const std::unique_ptr<Histogram>& h : histograms_) {
    snap.histograms.push_back(h->Snapshot());
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Counter>& c : counters_) c->Reset();
  for (const std::unique_ptr<Gauge>& g : gauges_) g->Reset();
  for (const std::unique_ptr<Histogram>& h : histograms_) h->Reset();
}

int64_t ProcessRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages. fscanf of two
  // integers is cheap enough to call per admission decision.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int fields = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  if (std::fclose(f) != 0 || fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<int64_t>(resident_pages) *
         static_cast<int64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace tycos
