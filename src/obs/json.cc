#include "obs/json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tycos {
namespace obs {

namespace {

// Metric names are code-controlled identifiers, but escape the JSON
// specials anyway so a hostile name cannot corrupt the document.
std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    "
        << Quoted(snapshot.counters[i].name) << ": "
        << snapshot.counters[i].value;
  }
  out << (snapshot.counters.empty() ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    "
        << Quoted(snapshot.gauges[i].name) << ": "
        << snapshot.gauges[i].value;
  }
  out << (snapshot.gauges.empty() ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << Quoted(h.name)
        << ": { \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << Num(h.bounds[b]);
    }
    out << "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.counts[b];
    }
    out << "] }";
  }
  out << (snapshot.histograms.empty() ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

Status WriteJson(const std::string& path, const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJson(snapshot);
  if (!out) return Status::IoError("write to " + path + " failed");
  return Status::Ok();
}

}  // namespace obs
}  // namespace tycos
