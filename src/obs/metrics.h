// Observability metrics registry: process-wide named counters, gauges, and
// fixed-bucket histograms, in the mold of the audit registry (audit/audit.h).
//
// Counters and histograms are written from concurrent climbs, so each one
// keeps a small array of cache-line-aligned per-thread shard cells: a write
// is one relaxed fetch_add on the calling thread's shard, a read sums the
// shards. Totals are therefore exact and — because integer addition is
// commutative — independent of how work was split across threads, which is
// what keeps parallel_determinism_test bit-identical at every thread count.
// Histograms store only integer bucket counts (never a floating-point sum)
// for the same reason: FP addition is not associative, so a running sum
// would differ with thread interleaving.
//
// Unlike trace spans (obs/trace.h, compiled out unless TYCOS_OBS=ON), the
// metrics registry is always on: it is the store of record behind
// TycosStats. Hot paths keep the cost negligible by accumulating into plain
// local structs and flushing deltas at coarse boundaries (per climb, per
// run, per index teardown) instead of touching an atomic per point — see
// DESIGN.md "Observability" for the overhead policy.
//
// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
// process lifetime; look one up once per call site (function-local static)
// and reuse it. ResetAllForTest() zeroes values but never invalidates a
// handle.

#ifndef TYCOS_OBS_METRICS_H_
#define TYCOS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tycos {
namespace obs {

// Number of per-thread shard cells per counter/histogram. Threads hash onto
// shards round-robin; more threads than shards just share cells (still
// correct, marginally more contended).
inline constexpr size_t kShards = 16;

// The calling thread's shard index (assigned round-robin at first use).
size_t ThisThreadShard();

// Monotonic event count. Add() is wait-free: one relaxed fetch_add on the
// caller's shard cell.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n) {
    cells_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  // Sum over all shards. Exact once writers have synchronized with the
  // reader (e.g. after a ParallelFor join).
  int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  void Reset();

  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  const std::string name_;
  std::array<Cell, kShards> cells_;
};

// Last-write-wins instantaneous value (unsharded: gauges record
// thread-count-independent facts like "windows found by the last run").
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string name_;
  std::atomic<int64_t> value_{0};
};

// A histogram's aggregated state as captured by Registry::Snapshot().
struct HistogramSnapshot {
  std::string name;
  // Ascending upper bounds; counts[i] tallies observations v <= bounds[i]
  // (first matching bucket), counts.back() the overflow above bounds.back().
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // size bounds.size() + 1

  int64_t total() const;
};

// Fixed-bucket distribution of integer-ish observations (ring expansions
// per query, acceptance percentage per climb). Buckets are chosen at
// creation and never change; observations land in the first bucket whose
// upper bound is >= the value. Per-shard bucket cells keep Observe()
// wait-free, and the integer-only state keeps snapshots bit-deterministic.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) { ObserveCount(v, 1); }

  // Records `n` observations of `v` in one shard write — the bulk-flush
  // path for call sites that pre-aggregate in plain locals.
  void ObserveCount(double v, int64_t n);

  HistogramSnapshot Snapshot() const;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  void Reset();

  size_t BucketIndex(double v) const;

  const std::string name_;
  const std::vector<double> bounds_;
  size_t padded_buckets_;  // buckets rounded up to a cache-line multiple
  // Layout: shard-major, each shard's buckets padded to full cache lines so
  // two shards never share a line. C++20 value-initializes the atomics.
  std::vector<std::atomic<int64_t>> cells_;
};

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

// Point-in-time copy of every registered metric, sorted by name so two
// snapshots of identical state compare (and render) identically.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Value of the named counter, 0 when it was never registered.
  int64_t CounterValue(const std::string& name) const;
  // The named histogram, nullptr when it was never registered.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  // Multi-line human-readable rendering (counters, gauges, histograms).
  std::string ToString() const;
};

// Process-wide metric registry. Mirrors audit::Registry: node-based storage
// so handles survive later registrations, a leaked singleton so metrics
// outlive static destruction order.
class Registry {
 public:
  static Registry& Instance();

  // Find-or-create by name. For histograms the bounds of the first caller
  // win; later callers with different bounds get the existing instance.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  // Zeroes every metric (test isolation). Handles stay valid.
  void ResetAllForTest();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

// Process self-observation: the current resident set size in bytes, read
// from /proc/self/statm (Linux). Returns 0 when the platform offers no
// cheap probe — callers must treat 0 as "unknown", never "no memory".
// Feeds the jobs-layer admission gate and the process.rss_bytes gauge.
int64_t ProcessRssBytes();

// Convenience wrappers for call sites.
inline Counter* GetCounter(const std::string& name) {
  return Registry::Instance().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return Registry::Instance().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name,
                               const std::vector<double>& bounds) {
  return Registry::Instance().GetHistogram(name, bounds);
}
inline MetricsSnapshot Snapshot() { return Registry::Instance().Snapshot(); }

}  // namespace obs
}  // namespace tycos

#endif  // TYCOS_OBS_METRICS_H_
