// Scoped trace spans: lightweight wall-time instrumentation of the search
// phases. A span covers a lexical scope; spans opened inside it nest into a
// per-thread trace tree whose nodes merge same-named siblings, so a run's
// tree reads like an aggregated flame graph:
//
//   tycos_run                 1 call   1.92 s
//     init_scan              14 calls  0.31 s
//       noise_initial        14 calls  0.29 s
//     lahc_climb             14 calls  1.58 s
//       noise_subsequent    412 calls  0.12 s
//
// Spans are a debugging/profiling feature and compile to ((void)0) unless
// TYCOS_OBS_ENABLED is defined to 1 (`cmake --preset obs`, or
// -DTYCOS_OBS=ON), so default builds pay nothing — the ≤1% overhead budget
// for the always-on metrics layer (obs/metrics.h) does not cover spans.
// Timing uses the repo's steady-clock Stopwatch. Placement rule (enforced
// by tools/lint.py --span-hygiene): never open a span inside a per-point
// inner loop — kNN distance kernels and incremental-KSG point updates run
// millions of times per search and a span there measures mostly itself.
//
// The tree is thread-local: worker threads of a parallel fan-out each grow
// their own tree (wall times are not meaningfully mergeable across threads,
// and a shared tree would serialize the hot paths). Render or reset the
// calling thread's tree via Tracer::ThisThread().

#ifndef TYCOS_OBS_TRACE_H_
#define TYCOS_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"

#ifndef TYCOS_OBS_ENABLED
#define TYCOS_OBS_ENABLED 0
#endif

namespace tycos {
namespace obs {

// One aggregated node of a trace tree: all executions of span `name` at
// this position in the call structure.
struct TraceNode {
  std::string name;
  int64_t calls = 0;
  double total_seconds = 0.0;
  std::vector<std::unique_ptr<TraceNode>> children;

  // The child named `name`, created on first use.
  TraceNode* Child(const char* child_name);
};

// The calling thread's span stack and trace tree. Not thread-safe by
// design — each thread owns exactly one (see ThisThread()).
class Tracer {
 public:
  static Tracer& ThisThread();

  Tracer() { stack_.push_back(&root_); }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Push(const char* name);
  // Closes the innermost open span, attributing `elapsed_seconds` to it.
  // The root is never popped: an unmatched Pop is ignored.
  void Pop(double elapsed_seconds);

  // The synthetic root ("" name, no timing); its children are the
  // top-level spans recorded on this thread.
  const TraceNode& root() const { return root_; }
  // Nesting depth of currently open spans (0 when none — the unwound
  // state every early return and stack unwind must restore).
  size_t depth() const { return stack_.size() - 1; }

  void Reset();

  // Indented tree rendering: "name  calls  seconds" per line.
  std::string Render() const;

 private:
  TraceNode root_;
  std::vector<TraceNode*> stack_;  // innermost open span at the back
};

// RAII span: pushes on construction, pops with its measured wall time on
// destruction — so early returns, break/continue, and exceptions all
// unwind the trace stack correctly.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) { Tracer::ThisThread().Push(name); }
  ~ScopedSpan() { Tracer::ThisThread().Pop(watch_.ElapsedSeconds()); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace tycos

// TYCOS_SPAN("name"): times the rest of the enclosing scope as a span in
// the calling thread's trace tree. Compiled out entirely (including the
// Stopwatch reads) unless TYCOS_OBS_ENABLED=1. The two-level concat gives
// each expansion a unique variable name, so two spans may share a scope.
#if TYCOS_OBS_ENABLED
#define TYCOS_OBS_CONCAT_INNER(a, b) a##b
#define TYCOS_OBS_CONCAT(a, b) TYCOS_OBS_CONCAT_INNER(a, b)
#define TYCOS_SPAN(name) \
  ::tycos::obs::ScopedSpan TYCOS_OBS_CONCAT(tycos_span_, __LINE__)(name)
#else
#define TYCOS_SPAN(name) ((void)0)
#endif

#endif  // TYCOS_OBS_TRACE_H_
