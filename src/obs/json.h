// Machine-readable export of a metrics snapshot — the sidecar the bench
// drivers write next to their BENCH_*.json so a run's counters and
// distributions can be diffed across commits the same way its timings are.
// See bench/README.md for the sidecar format and handling policy.

#ifndef TYCOS_OBS_JSON_H_
#define TYCOS_OBS_JSON_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace tycos {
namespace obs {

// Renders the snapshot as a JSON document:
//
//   {
//     "counters":   { "<name>": <int>, ... },
//     "gauges":     { "<name>": <int>, ... },
//     "histograms": { "<name>": { "bounds": [..], "counts": [..] }, ... }
//   }
//
// Entries appear in the snapshot's (sorted-by-name) order, so equal
// snapshots serialize byte-identically. `counts` has one more entry than
// `bounds` (the trailing overflow bucket).
std::string ToJson(const MetricsSnapshot& snapshot);

// ToJson, written to `path`.
Status WriteJson(const std::string& path, const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace tycos

#endif  // TYCOS_OBS_JSON_H_
