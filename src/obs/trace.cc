#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace tycos {
namespace obs {

TraceNode* TraceNode::Child(const char* child_name) {
  for (const std::unique_ptr<TraceNode>& c : children) {
    if (c->name == child_name) return c.get();
  }
  children.push_back(std::make_unique<TraceNode>());
  children.back()->name = child_name;
  return children.back().get();
}

Tracer& Tracer::ThisThread() {
  thread_local Tracer tracer;
  return tracer;
}

void Tracer::Push(const char* name) {
  stack_.push_back(stack_.back()->Child(name));
}

void Tracer::Pop(double elapsed_seconds) {
  if (stack_.size() <= 1) return;  // unmatched Pop; keep the root
  TraceNode* node = stack_.back();
  stack_.pop_back();
  ++node->calls;
  node->total_seconds += elapsed_seconds;
}

void Tracer::Reset() {
  root_.children.clear();
  stack_.clear();
  stack_.push_back(&root_);
}

namespace {

void RenderNode(const TraceNode& node, int indent, std::ostringstream* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "%*s%s  %lld calls  %.6f s\n", indent * 2,
                "", node.name.c_str(),
                static_cast<long long>(node.calls), node.total_seconds);
  *out << line;
  for (const std::unique_ptr<TraceNode>& c : node.children) {
    RenderNode(*c, indent + 1, out);
  }
}

}  // namespace

std::string Tracer::Render() const {
  std::ostringstream out;
  for (const std::unique_ptr<TraceNode>& c : root_.children) {
    RenderNode(*c, 0, &out);
  }
  return out.str();
}

}  // namespace obs
}  // namespace tycos
