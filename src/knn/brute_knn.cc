#include "knn/brute_knn.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace tycos {

namespace {

// Collects the k nearest candidates (L∞) to `probe`, skipping `exclude`.
// Ties on distance break on index for determinism. Returns extents over the
// selected neighbours.
KnnExtents ExtentsOfKnn(const std::vector<Point2>& points, const Point2& probe,
                        int k, size_t exclude) {
  TYCOS_CHECK_GE(k, 1);
  using Cand = std::pair<double, size_t>;  // (distance, index)
  std::vector<Cand> heap;                  // max-heap of the best k
  heap.reserve(static_cast<size_t>(k) + 1);
  for (size_t j = 0; j < points.size(); ++j) {
    if (j == exclude) continue;
    const double d = ChebyshevDistance(points[j], probe);
    if (heap.size() < static_cast<size_t>(k)) {
      heap.emplace_back(d, j);
      std::push_heap(heap.begin(), heap.end());
    } else if (Cand(d, j) < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = Cand(d, j);
      std::push_heap(heap.begin(), heap.end());
    }
  }
  TYCOS_CHECK_EQ(heap.size(), static_cast<size_t>(k));
  KnnExtents e;
  for (const Cand& c : heap) {
    e.dx = std::max(e.dx, std::fabs(points[c.second].x - probe.x));
    e.dy = std::max(e.dy, std::fabs(points[c.second].y - probe.y));
  }
  return e;
}

}  // namespace

KnnExtents BruteKnnExtents(const std::vector<Point2>& points, size_t query,
                           int k) {
  TYCOS_CHECK_LT(query, points.size());
  TYCOS_CHECK_GE(points.size(), static_cast<size_t>(k) + 1);
  return ExtentsOfKnn(points, points[query], k, query);
}

KnnExtents BruteKnnExtentsAt(const std::vector<Point2>& points,
                             const Point2& probe, int k) {
  TYCOS_CHECK_GE(points.size(), static_cast<size_t>(k));
  return ExtentsOfKnn(points, probe, k, points.size());
}

size_t CountWithinX(const std::vector<Point2>& points, double x, double dx,
                    size_t exclude) {
  size_t count = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i == exclude) continue;
    if (std::fabs(points[i].x - x) <= dx) ++count;
  }
  return count;
}

size_t CountWithinY(const std::vector<Point2>& points, double y, double dy,
                    size_t exclude) {
  size_t count = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i == exclude) continue;
    if (std::fabs(points[i].y - y) <= dy) ++count;
  }
  return count;
}

}  // namespace tycos
