#include "knn/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace tycos {

GridIndex::~GridIndex() {
  if (obs_ring_expansions_ == 0 && obs_ring_counts_[0] == 0) return;
  static obs::Counter* expansions =
      obs::GetCounter("knn.grid.ring_expansions");
  static obs::Histogram* rings = obs::GetHistogram(
      "knn.grid.rings_per_query", {0, 1, 2, 3, 4, 5, 6, 7, 8});
  expansions->Add(obs_ring_expansions_);
  for (size_t r = 0; r < kObsRingBuckets; ++r) {
    if (obs_ring_counts_[r] > 0) {
      rings->ObserveCount(static_cast<double>(r), obs_ring_counts_[r]);
    }
  }
}

GridIndex::GridIndex(std::vector<Point2> points) : points_(std::move(points)) {
  if (points_.empty()) {
    cells_.resize(1);
    return;
  }
  double min_x = points_[0].x, max_x = points_[0].x;
  double min_y = points_[0].y, max_y = points_[0].y;
  for (const Point2& p : points_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  min_x_ = min_x;
  min_y_ = min_y;

  // Square cells sized for ~4 points per cell over the larger extent.
  const double span = std::max(max_x - min_x, max_y - min_y);
  const int64_t target_cells = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(std::sqrt(static_cast<double>(points_.size()) / 4.0))));
  cell_size_ = span > 0.0 ? span / static_cast<double>(target_cells) : 1.0;
  cells_x_ = std::max<int64_t>(
      1, static_cast<int64_t>((max_x - min_x) / cell_size_) + 1);
  cells_y_ = std::max<int64_t>(
      1, static_cast<int64_t>((max_y - min_y) / cell_size_) + 1);
  cells_.resize(static_cast<size_t>(cells_x_ * cells_y_));
  for (size_t i = 0; i < points_.size(); ++i) {
    const int64_t cx = CellX(points_[i].x);
    const int64_t cy = CellY(points_[i].y);
    cells_[static_cast<size_t>(cy * cells_x_ + cx)].push_back(
        static_cast<int32_t>(i));
  }
}

int64_t GridIndex::CellX(double x) const {
  const int64_t c = static_cast<int64_t>((x - min_x_) / cell_size_);
  return std::clamp<int64_t>(c, 0, cells_x_ - 1);
}

int64_t GridIndex::CellY(double y) const {
  const int64_t c = static_cast<int64_t>((y - min_y_) / cell_size_);
  return std::clamp<int64_t>(c, 0, cells_y_ - 1);
}

const std::vector<int32_t>& GridIndex::Cell(int64_t cx, int64_t cy) const {
  return cells_[static_cast<size_t>(cy * cells_x_ + cx)];
}

KnnExtents GridIndex::Query(const Point2& probe, int k,
                            size_t exclude) const {
  TYCOS_CHECK_GE(k, 1);
  using Cand = std::pair<double, int32_t>;  // same tie-break as brute/kd
  std::vector<Cand> heap;
  heap.reserve(static_cast<size_t>(k) + 1);

  auto push = [&](int32_t idx) {
    if (static_cast<size_t>(idx) == exclude) return;
    const double d =
        ChebyshevDistance(points_[static_cast<size_t>(idx)], probe);
    if (heap.size() < static_cast<size_t>(k)) {
      heap.emplace_back(d, idx);
      std::push_heap(heap.begin(), heap.end());
    } else if (Cand(d, idx) < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = Cand(d, idx);
      std::push_heap(heap.begin(), heap.end());
    }
  };

  const int64_t pcx = CellX(probe.x);
  const int64_t pcy = CellY(probe.y);
  const int64_t max_ring = std::max(cells_x_, cells_y_);
  int64_t rings_scanned = 0;
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    // All cells whose Chebyshev cell-distance from the probe's cell is
    // exactly `ring`; every point in farther rings is at L∞ distance
    // > (ring - 1) * cell_size_ from anywhere in the probe's cell, but we
    // can bound tighter against the probe itself below.
    if (heap.size() == static_cast<size_t>(k)) {
      // Points in this ring are at least (ring - 1) * cell_size_ away from
      // the probe (the probe sits somewhere inside its own cell).
      const double ring_lower =
          static_cast<double>(ring - 1) * cell_size_;
      if (ring_lower > heap.front().first) break;
    }
    ++rings_scanned;
    const int64_t x_lo = pcx - ring, x_hi = pcx + ring;
    const int64_t y_lo = pcy - ring, y_hi = pcy + ring;
    for (int64_t cy = std::max<int64_t>(y_lo, 0);
         cy <= std::min(y_hi, cells_y_ - 1); ++cy) {
      const bool y_edge = (cy == y_lo || cy == y_hi);
      for (int64_t cx = std::max<int64_t>(x_lo, 0);
           cx <= std::min(x_hi, cells_x_ - 1); ++cx) {
        if (!y_edge && cx != x_lo && cx != x_hi) continue;  // interior
        for (int32_t idx : Cell(cx, cy)) push(idx);
      }
    }
  }
  TYCOS_CHECK_EQ(heap.size(), static_cast<size_t>(k));
  // Expansions = rings beyond the probe's own cell. Plain-int tallies here
  // (flushed by the destructor) keep the query loop registry-free.
  const int64_t ring_expansions = rings_scanned > 0 ? rings_scanned - 1 : 0;
  obs_ring_expansions_ += ring_expansions;
  ++obs_ring_counts_[std::min<size_t>(static_cast<size_t>(ring_expansions),
                                      kObsRingBuckets - 1)];
  KnnExtents e;
  for (const Cand& c : heap) {
    const Point2& p = points_[static_cast<size_t>(c.second)];
    e.dx = std::max(e.dx, std::fabs(p.x - probe.x));
    e.dy = std::max(e.dy, std::fabs(p.y - probe.y));
  }
  return e;
}

KnnExtents GridIndex::QueryExtents(size_t query, int k) const {
  TYCOS_CHECK_LT(query, points_.size());
  TYCOS_CHECK_GE(points_.size(), static_cast<size_t>(k) + 1);
  return Query(points_[query], k, query);
}

KnnExtents GridIndex::QueryExtentsAt(const Point2& probe, int k) const {
  TYCOS_CHECK_GE(points_.size(), static_cast<size_t>(k));
  return Query(probe, k, points_.size());
}

}  // namespace tycos
