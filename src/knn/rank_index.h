// RankIndex: a Fenwick-tree-backed dynamic multiset over a fixed value
// universe, supporting O(log n) insert / erase / closed-range count.
//
// The incremental KSG estimator (Section 7) uses one RankIndex per dimension
// to re-count a point's influenced marginal region after window edits,
// instead of rescanning the window.

#ifndef TYCOS_KNN_RANK_INDEX_H_
#define TYCOS_KNN_RANK_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tycos {

class RankIndex {
 public:
  // The universe is the multiset of values that may ever be inserted (for a
  // window search: every sample of the underlying series). Duplicates are
  // collapsed; the index starts empty.
  explicit RankIndex(std::vector<double> universe);

  // Adds one occurrence of `value`, which must belong to the universe.
  void Insert(double value);

  // Removes one occurrence of `value`; it must be currently present.
  void Erase(double value);

  // Number of stored values v with lo <= v <= hi (closed interval).
  int64_t CountInRange(double lo, double hi) const;

  // Number of stored values.
  int64_t size() const { return total_; }

 private:
  size_t RankOf(double value) const;  // exact rank; CHECKs membership
  int64_t PrefixSum(size_t idx) const;

  std::vector<double> unique_;  // sorted distinct universe values
  std::vector<int64_t> fenwick_;
  int64_t total_ = 0;
};

}  // namespace tycos

#endif  // TYCOS_KNN_RANK_INDEX_H_
