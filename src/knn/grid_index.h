// Uniform-grid kNN index for 2-D points under L∞ — the "grid-based
// structure (for low dimensional data)" the paper cites for expected-case
// O(m log m) all-points kNN (Section 5.1). Cells are square, so L∞ ring
// expansion gives an exact lower bound per ring; results match the brute
// backend bit-for-bit, including the (distance, index) tie-break.

#ifndef TYCOS_KNN_GRID_INDEX_H_
#define TYCOS_KNN_GRID_INDEX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "knn/point.h"

namespace tycos {

class GridIndex {
 public:
  // Builds the grid over `points` with ~4 points per cell on average.
  explicit GridIndex(std::vector<Point2> points);

  // Publishes the query tallies (knn.grid.ring_expansions counter,
  // knn.grid.rings_per_query histogram) in one batch. Tallies are plain
  // ints because an index is only ever queried from the thread that built
  // it — callers must not share a GridIndex across threads.
  ~GridIndex();

  GridIndex(const GridIndex&) = delete;
  GridIndex& operator=(const GridIndex&) = delete;

  size_t size() const { return points_.size(); }

  // Extents of the k nearest neighbours of points[query] (self excluded).
  // Requires size() >= k + 1.
  KnnExtents QueryExtents(size_t query, int k) const;

  // Extents of the k nearest neighbours of an arbitrary probe (nothing
  // excluded). Requires size() >= k.
  KnnExtents QueryExtentsAt(const Point2& probe, int k) const;

 private:
  KnnExtents Query(const Point2& probe, int k, size_t exclude) const;

  int64_t CellX(double x) const;
  int64_t CellY(double y) const;
  const std::vector<int32_t>& Cell(int64_t cx, int64_t cy) const;

  std::vector<Point2> points_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_size_ = 1.0;
  int64_t cells_x_ = 1;
  int64_t cells_y_ = 1;
  std::vector<std::vector<int32_t>> cells_;  // row-major [cy * cells_x_ + cx]

  // Query-shape tallies, flushed to the obs registry by the destructor.
  // rings >= kObsRingBuckets - 1 land in the last (overflow) slot. Mutable
  // because Query() is logically const; see the destructor comment for the
  // single-thread invariant that makes plain ints safe.
  static constexpr size_t kObsRingBuckets = 10;
  mutable int64_t obs_ring_expansions_ = 0;
  mutable std::array<int64_t, kObsRingBuckets> obs_ring_counts_{};
};

}  // namespace tycos

#endif  // TYCOS_KNN_GRID_INDEX_H_
