// 2-D point and k-NN query result types shared by the kNN backends.

#ifndef TYCOS_KNN_POINT_H_
#define TYCOS_KNN_POINT_H_

#include <cmath>

namespace tycos {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

// L∞ (maximum norm) distance, the metric of the paper's KSG formulation.
inline double ChebyshevDistance(const Point2& a, const Point2& b) {
  return std::max(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

// Per-dimension extents of a point's k nearest neighbours: dx is the largest
// |x_i - x_j| and dy the largest |y_i - y_j| over the k neighbours found
// under L∞. These are exactly the (dx, dy) of the paper's Fig. 2, from which
// the marginal regions are formed.
struct KnnExtents {
  double dx = 0.0;
  double dy = 0.0;

  // Radius of the influenced region (Definition 7.1): d = max(dx, dy).
  double radius() const { return dx > dy ? dx : dy; }
};

}  // namespace tycos

#endif  // TYCOS_KNN_POINT_H_
