// 2-D k-d tree with L∞ k-nearest-neighbour queries. Expected O(log m) per
// query (paper Section 5.1 cites [5, 12] for the O(m log m) all-points
// bound). Results match the brute-force backend exactly, including the
// deterministic (distance, index) tie-break.

#ifndef TYCOS_KNN_KD_TREE_H_
#define TYCOS_KNN_KD_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "knn/point.h"

namespace tycos {

class KdTree {
 public:
  // Builds a balanced tree over `points` in O(m log m). The point vector is
  // copied; indices reported by queries refer to positions in `points`.
  explicit KdTree(std::vector<Point2> points);

  size_t size() const { return points_.size(); }

  // Extents of the k nearest neighbours of points[query] (self excluded).
  // Requires size() >= k + 1.
  KnnExtents QueryExtents(size_t query, int k) const;

  // Extents of the k nearest neighbours of an arbitrary probe (nothing
  // excluded). Requires size() >= k.
  KnnExtents QueryExtentsAt(const Point2& probe, int k) const;

 private:
  struct Node {
    int32_t point = -1;    // index into points_
    int32_t left = -1;     // child node ids, -1 when absent
    int32_t right = -1;
    uint8_t axis = 0;      // 0 = x, 1 = y
  };

  int32_t Build(std::vector<int32_t>& ids, size_t lo, size_t hi, int depth);
  KnnExtents Query(const Point2& probe, int k, size_t exclude) const;

  std::vector<Point2> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace tycos

#endif  // TYCOS_KNN_KD_TREE_H_
