// Brute-force k-nearest-neighbour queries under the L∞ norm. O(m) per query;
// the reference backend against which the k-d tree is property-tested, and
// the workhorse for small windows where tree overhead does not pay off.

#ifndef TYCOS_KNN_BRUTE_KNN_H_
#define TYCOS_KNN_BRUTE_KNN_H_

#include <cstddef>
#include <vector>

#include "knn/point.h"

namespace tycos {

// Finds the per-dimension extents of the k nearest neighbours (L∞, self
// excluded) of points[query] among `points`. Requires k >= 1 and
// points.size() >= k + 1.
KnnExtents BruteKnnExtents(const std::vector<Point2>& points, size_t query,
                           int k);

// Same, but for an arbitrary probe location not necessarily in `points`
// (nothing is excluded). Requires points.size() >= k.
KnnExtents BruteKnnExtentsAt(const std::vector<Point2>& points,
                             const Point2& probe, int k);

// Number of i with |points[i].x - x| <= dx, excluding index `exclude`
// (pass points.size() to exclude nothing).
size_t CountWithinX(const std::vector<Point2>& points, double x, double dx,
                    size_t exclude);

// Number of i with |points[i].y - y| <= dy, excluding index `exclude`.
size_t CountWithinY(const std::vector<Point2>& points, double y, double dy,
                    size_t exclude);

}  // namespace tycos

#endif  // TYCOS_KNN_BRUTE_KNN_H_
