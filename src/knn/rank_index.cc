#include "knn/rank_index.h"

#include <algorithm>

#include "common/check.h"

namespace tycos {

RankIndex::RankIndex(std::vector<double> universe)
    : unique_(std::move(universe)) {
  std::sort(unique_.begin(), unique_.end());
  unique_.erase(std::unique(unique_.begin(), unique_.end()), unique_.end());
  fenwick_.assign(unique_.size() + 1, 0);
}

size_t RankIndex::RankOf(double value) const {
  auto it = std::lower_bound(unique_.begin(), unique_.end(), value);
  TYCOS_CHECK(it != unique_.end() && *it == value);
  return static_cast<size_t>(it - unique_.begin());
}

void RankIndex::Insert(double value) {
  for (size_t i = RankOf(value) + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    ++fenwick_[i];
  }
  ++total_;
}

void RankIndex::Erase(double value) {
  TYCOS_CHECK_GT(CountInRange(value, value), 0);
  for (size_t i = RankOf(value) + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    --fenwick_[i];
  }
  --total_;
}

int64_t RankIndex::PrefixSum(size_t idx) const {
  // Sum of counts for ranks [0, idx).
  int64_t sum = 0;
  for (size_t i = idx; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i];
  }
  return sum;
}

int64_t RankIndex::CountInRange(double lo, double hi) const {
  if (lo > hi) return 0;
  const size_t lo_rank = static_cast<size_t>(
      std::lower_bound(unique_.begin(), unique_.end(), lo) - unique_.begin());
  const size_t hi_rank = static_cast<size_t>(
      std::upper_bound(unique_.begin(), unique_.end(), hi) - unique_.begin());
  return PrefixSum(hi_rank) - PrefixSum(lo_rank);
}

}  // namespace tycos
