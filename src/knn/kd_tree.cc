#include "knn/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace tycos {

KdTree::KdTree(std::vector<Point2> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<int32_t> ids(points_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  nodes_.reserve(points_.size());
  root_ = Build(ids, 0, ids.size(), 0);
}

int32_t KdTree::Build(std::vector<int32_t>& ids, size_t lo, size_t hi,
                      int depth) {
  if (lo >= hi) return -1;
  const uint8_t axis = static_cast<uint8_t>(depth & 1);
  const size_t mid = (lo + hi) / 2;
  std::nth_element(
      ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
      [&](int32_t a, int32_t b) {
        const double va = axis ? points_[a].y : points_[a].x;
        const double vb = axis ? points_[b].y : points_[b].x;
        if (va != vb) return va < vb;
        return a < b;  // deterministic layout for duplicate coordinates
      });
  Node node;
  node.point = ids[mid];
  node.axis = axis;
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  const int32_t left = Build(ids, lo, mid, depth + 1);
  const int32_t right = Build(ids, mid + 1, hi, depth + 1);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

namespace {

// Max-heap entry ordered by (distance, index), matching brute_knn's
// tie-break so both backends return identical neighbour sets.
using Cand = std::pair<double, int32_t>;

void PushCandidate(std::vector<Cand>& heap, int k, Cand c) {
  if (heap.size() < static_cast<size_t>(k)) {
    heap.push_back(c);
    std::push_heap(heap.begin(), heap.end());
  } else if (c < heap.front()) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = c;
    std::push_heap(heap.begin(), heap.end());
  }
}

}  // namespace

KnnExtents KdTree::Query(const Point2& probe, int k, size_t exclude) const {
  TYCOS_CHECK_GE(k, 1);
  std::vector<Cand> heap;
  heap.reserve(static_cast<size_t>(k) + 1);

  // Iterative depth-first traversal with pruning on the splitting plane.
  struct Frame {
    int32_t node;
  };
  std::vector<Frame> stack;
  stack.push_back({root_});
  while (!stack.empty()) {
    const int32_t id = stack.back().node;
    stack.pop_back();
    if (id < 0) continue;
    const Node& node = nodes_[static_cast<size_t>(id)];
    const Point2& p = points_[static_cast<size_t>(node.point)];
    if (static_cast<size_t>(node.point) != exclude) {
      PushCandidate(heap, k,
                    Cand(ChebyshevDistance(p, probe), node.point));
    }
    const double diff =
        node.axis ? (probe.y - p.y) : (probe.x - p.x);
    const int32_t near = diff < 0 ? node.left : node.right;
    const int32_t far = diff < 0 ? node.right : node.left;
    // The far subtree can only contain closer points when the plane distance
    // beats the current kth distance (L∞: plane distance lower-bounds it).
    const bool heap_full = heap.size() == static_cast<size_t>(k);
    if (far >= 0 && (!heap_full || std::fabs(diff) <= heap.front().first)) {
      stack.push_back({far});
    }
    if (near >= 0) stack.push_back({near});
  }
  TYCOS_CHECK_EQ(heap.size(), static_cast<size_t>(k));
  KnnExtents e;
  for (const Cand& c : heap) {
    const Point2& p = points_[static_cast<size_t>(c.second)];
    e.dx = std::max(e.dx, std::fabs(p.x - probe.x));
    e.dy = std::max(e.dy, std::fabs(p.y - probe.y));
  }
  return e;
}

KnnExtents KdTree::QueryExtents(size_t query, int k) const {
  TYCOS_CHECK_LT(query, points_.size());
  TYCOS_CHECK_GE(points_.size(), static_cast<size_t>(k) + 1);
  return Query(points_[query], k, query);
}

KnnExtents KdTree::QueryExtentsAt(const Point2& probe, int k) const {
  TYCOS_CHECK_GE(points_.size(), static_cast<size_t>(k));
  return Query(probe, k, points_.size());
}

}  // namespace tycos
