// MASS (Mueen's Algorithm for Similarity Search) [25]: FFT-based
// z-normalized subsequence matching. As the paper notes, MASS has no
// mechanism to search for correlated windows on its own — it answers "where
// in Y does this query from X match best?". The detection harness feeds it
// aligned queries (the query's own position is the checked location), which
// is why it misses time-shifted relations in Table 1.

#ifndef TYCOS_BASELINES_MASS_H_
#define TYCOS_BASELINES_MASS_H_

#include <cstdint>
#include <vector>

#include "core/time_series.h"

namespace tycos {

struct MassMatch {
  int64_t query_start = 0;  // where the query was taken from X
  int64_t match_start = 0;  // best match position in Y
  double distance = 0.0;    // z-normalized Euclidean distance
};

// Distance profile of query (from xs[query_start .. +m)) against every
// subsequence of ys; returns the best match.
MassMatch MassBestMatch(const std::vector<double>& xs,
                        const std::vector<double>& ys, int64_t query_start,
                        int64_t m);

struct MassScanOptions {
  int64_t window = 64;       // query length m
  int64_t stride = 16;       // query step along X
  double threshold = 0.30;   // accept when dist <= threshold * sqrt(2m)
  int64_t align_tolerance = 16;  // match must sit within this of the query
};

// Scans queries along X and reports aligned matches in Y (see header note).
std::vector<MassMatch> MassScan(const SeriesPair& pair,
                                const MassScanOptions& options);

}  // namespace tycos

#endif  // TYCOS_BASELINES_MASS_H_
