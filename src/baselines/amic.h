// AMIC [17]: the authors' earlier Adaptive Mutual-Information-based
// Correlation framework — a *top-down* multi-scale search with *no time
// delay* (τ is always 0). It starts from the full interval, reports maximal
// segments whose normalized MI clears σ, and recursively splits rejected
// segments (halves plus the straddling middle segment, so correlations
// crossing a midpoint are not lost) down to s_min. Its Table 1/3 failures
// on delayed correlations come from the fixed τ = 0.

#ifndef TYCOS_BASELINES_AMIC_H_
#define TYCOS_BASELINES_AMIC_H_

#include <cstdint>

#include "core/time_series.h"
#include "core/window_set.h"
#include "mi/ksg.h"

namespace tycos {

struct AmicOptions {
  double sigma = 0.5;   // threshold on normalized MI
  int64_t s_min = 24;   // recursion floor
  int k = 4;            // KSG k
  MiNormalization normalization = MiNormalization::kCorrelationCoefficient;
  double small_sample_penalty = kDefaultSmallSamplePenalty;
};

struct AmicResult {
  WindowSet windows;            // accepted segments (delay always 0)
  int64_t segments_evaluated = 0;
};

AmicResult AmicSearch(const SeriesPair& pair, const AmicOptions& options);

}  // namespace tycos

#endif  // TYCOS_BASELINES_AMIC_H_
