#include "baselines/pcc_search.h"

#include <cmath>

#include "common/check.h"
#include "core/window_set.h"
#include "mi/pearson.h"

namespace tycos {

std::vector<Window> PccSearch(const SeriesPair& pair,
                              const PccSearchOptions& options) {
  TYCOS_CHECK_GE(options.window, 2);
  TYCOS_CHECK_GE(options.stride, 1);
  const int64_t n = pair.size();
  std::vector<Window> flagged;
  std::vector<double> xs, ys;
  for (int64_t s = 0; s + options.window <= n; s += options.stride) {
    Window w(s, s + options.window - 1, 0);
    ExtractSamples(pair, w, &xs, &ys);
    const double r = PearsonCorrelation(xs, ys);
    if (std::fabs(r) >= options.threshold) {
      w.mi = std::fabs(r);
      flagged.push_back(w);
    }
  }
  return MergeOverlapping(std::move(flagged));
}

}  // namespace tycos
