#include "baselines/mass.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "fft/sliding_dot.h"

namespace tycos {

MassMatch MassBestMatch(const std::vector<double>& xs,
                        const std::vector<double>& ys, int64_t query_start,
                        int64_t m) {
  TYCOS_CHECK_GE(query_start, 0);
  TYCOS_CHECK_LE(query_start + m, static_cast<int64_t>(xs.size()));
  TYCOS_CHECK_GE(m, 2);
  std::vector<double> query(xs.begin() + query_start,
                            xs.begin() + query_start + m);
  const std::vector<double> profile = MassDistanceProfile(query, ys);
  MassMatch best;
  best.query_start = query_start;
  best.match_start = 0;
  best.distance = profile[0];
  for (size_t i = 1; i < profile.size(); ++i) {
    if (profile[i] < best.distance) {
      best.distance = profile[i];
      best.match_start = static_cast<int64_t>(i);
    }
  }
  return best;
}

std::vector<MassMatch> MassScan(const SeriesPair& pair,
                                const MassScanOptions& options) {
  const int64_t n = pair.size();
  const int64_t m = options.window;
  TYCOS_CHECK_GE(m, 2);
  const double accept =
      options.threshold * std::sqrt(2.0 * static_cast<double>(m));
  std::vector<MassMatch> out;
  for (int64_t q = 0; q + m <= n; q += options.stride) {
    MassMatch match = MassBestMatch(pair.x().values(), pair.y().values(), q, m);
    if (match.distance <= accept &&
        std::llabs(match.match_start - match.query_start) <=
            options.align_tolerance) {
      out.push_back(match);
    }
  }
  return out;
}

}  // namespace tycos
