#include "baselines/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "fft/sliding_dot.h"

namespace tycos {

namespace {

// z-normalized Euclidean distance from the dot product and window stats.
double ZDist(double dot, double mu_a, double sd_a, double mu_b, double sd_b,
             double m) {
  if (sd_a == 0.0 || sd_b == 0.0) return std::sqrt(2.0 * m);
  const double corr = (dot - m * mu_a * mu_b) / (m * sd_a * sd_b);
  return std::sqrt(
      std::max(0.0, 2.0 * m * (1.0 - std::clamp(corr, -1.0, 1.0))));
}

// STOMP core: rows are subsequences of `a`, columns subsequences of `b`.
// `exclusion` >= 0 masks |i - j| <= exclusion (self-join); -1 disables.
MatrixProfileResult Stomp(const std::vector<double>& a,
                          const std::vector<double>& b, int64_t m,
                          int64_t exclusion) {
  const int64_t na = static_cast<int64_t>(a.size());
  const int64_t nb = static_cast<int64_t>(b.size());
  TYCOS_CHECK_GE(m, 2);
  TYCOS_CHECK_LE(m, na);
  TYCOS_CHECK_LE(m, nb);
  const int64_t ra = na - m + 1;  // rows
  const int64_t rb = nb - m + 1;  // columns

  std::vector<double> mu_a, sd_a, mu_b, sd_b;
  RollingMeanStd(a, static_cast<size_t>(m), &mu_a, &sd_a);
  RollingMeanStd(b, static_cast<size_t>(m), &mu_b, &sd_b);

  MatrixProfileResult result;
  result.m = m;
  result.profile.assign(static_cast<size_t>(ra),
                        std::numeric_limits<double>::infinity());
  result.index.assign(static_cast<size_t>(ra), -1);

  // First row dot products via FFT, then O(1) incremental updates per row.
  std::vector<double> first_query(a.begin(), a.begin() + m);
  std::vector<double> qt = SlidingDotProduct(first_query, b);
  // Dot products of b's first subsequence against all of a (for the O(1)
  // recurrence's first column).
  std::vector<double> first_col =
      SlidingDotProduct(std::vector<double>(b.begin(), b.begin() + m), a);

  const double dm = static_cast<double>(m);
  std::vector<double> prev(static_cast<size_t>(rb));
  for (int64_t i = 0; i < ra; ++i) {
    if (i > 0) {
      // qt[j] = prev[j-1] - a[i-1]b[j-1] + a[i+m-1]b[j+m-1]
      for (int64_t j = rb - 1; j >= 1; --j) {
        qt[static_cast<size_t>(j)] =
            prev[static_cast<size_t>(j - 1)] -
            a[static_cast<size_t>(i - 1)] * b[static_cast<size_t>(j - 1)] +
            a[static_cast<size_t>(i + m - 1)] *
                b[static_cast<size_t>(j + m - 1)];
      }
      qt[0] = first_col[static_cast<size_t>(i)];
    }
    prev = qt;
    double best = std::numeric_limits<double>::infinity();
    int64_t best_j = -1;
    for (int64_t j = 0; j < rb; ++j) {
      if (exclusion >= 0 && std::llabs(i - j) <= exclusion) continue;
      const double d = ZDist(qt[static_cast<size_t>(j)],
                             mu_a[static_cast<size_t>(i)],
                             sd_a[static_cast<size_t>(i)],
                             mu_b[static_cast<size_t>(j)],
                             sd_b[static_cast<size_t>(j)], dm);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    result.profile[static_cast<size_t>(i)] = best;
    result.index[static_cast<size_t>(i)] = best_j;
  }
  return result;
}

}  // namespace

MatrixProfileResult MatrixProfileAbJoin(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        int64_t m) {
  return Stomp(a, b, m, /*exclusion=*/-1);
}

MatrixProfileResult MatrixProfileSelfJoin(const std::vector<double>& a,
                                          int64_t m) {
  return Stomp(a, a, m, /*exclusion=*/m / 2);
}

}  // namespace tycos
