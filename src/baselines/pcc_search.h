// Sliding-window Pearson correlation detector: the traditional-metric
// baseline of Section 8.1. Fixed window length, zero delay (PCC has no
// delay mechanism), reporting windows where |r| clears a threshold.

#ifndef TYCOS_BASELINES_PCC_SEARCH_H_
#define TYCOS_BASELINES_PCC_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/time_series.h"
#include "core/window.h"

namespace tycos {

struct PccSearchOptions {
  int64_t window = 64;      // fixed window length
  int64_t stride = 16;      // slide step
  double threshold = 0.7;   // |r| >= threshold flags a window
};

// Flagged windows (delay always 0, mi field carries |r|), merged into
// maximal runs.
std::vector<Window> PccSearch(const SeriesPair& pair,
                              const PccSearchOptions& options);

}  // namespace tycos

#endif  // TYCOS_BASELINES_PCC_SEARCH_H_
