#include "baselines/amic.h"

#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace tycos {

namespace {

struct Frame {
  int64_t start;
  int64_t end;
};

}  // namespace

AmicResult AmicSearch(const SeriesPair& pair, const AmicOptions& options) {
  TYCOS_CHECK_GE(options.s_min, options.k + 2);
  AmicResult result;
  const int64_t n = pair.size();
  if (n < options.s_min) return result;

  KsgOptions ksg;
  ksg.k = options.k;

  // The overlapping middle segments can re-generate frames; dedupe so the
  // recursion stays linear in the number of distinct segments.
  std::unordered_set<uint64_t> visited;
  auto key = [](const Frame& f) {
    return (static_cast<uint64_t>(f.start) << 32) |
           static_cast<uint64_t>(f.end);
  };

  std::vector<Frame> stack;
  stack.push_back({0, n - 1});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const int64_t size = f.end - f.start + 1;
    if (size < options.s_min) continue;
    if (!visited.insert(key(f)).second) continue;

    Window w(f.start, f.end, 0);
    auto score = [&](const Window& win) {
      ++result.segments_evaluated;
      return NormalizedMi(pair, win, ksg, options.normalization,
                          options.small_sample_penalty);
    };
    w.mi = score(w);

    const bool splittable = size >= 2 * options.s_min;
    const int64_t mid = f.start + size / 2;
    const int64_t quarter = size / 4;
    const Frame children[3] = {{f.start, mid - 1},
                               {mid, f.end},
                               {f.start + quarter, f.end - quarter}};

    if (w.mi >= options.sigma) {
      // Adaptive refinement: a correlated segment is only accepted when no
      // child concentrates the correlation better — otherwise the window
      // would smear a strong core across diluting noise.
      bool child_improves = false;
      if (splittable) {
        for (const Frame& c : children) {
          const double child_mi = score(Window(c.start, c.end, 0));
          if (child_mi > w.mi + 0.02) {
            child_improves = true;
            break;
          }
        }
      }
      if (!child_improves) {
        result.windows.Insert(w);
        continue;
      }
    } else if (!splittable) {
      continue;
    }
    // Left half, right half, and the straddling middle segment.
    for (const Frame& c : children) stack.push_back(c);
  }

  // Refinement can surface several overlapping locally-maximal segments of
  // the same correlated region; report maximal merged windows.
  WindowSet merged;
  for (const Window& w : MergeOverlapping(result.windows.windows())) {
    merged.Insert(w);
  }
  result.windows = std::move(merged);
  return result;
}

}  // namespace tycos
