// MatrixProfile [31] via the STOMP algorithm: O(n²) all-pairs z-normalized
// similarity join. The AB-join profile gives, for every subsequence of A,
// its nearest neighbour anywhere in B — which is why MatrixProfile does
// find time-shifted *linear* relations in Table 1 (any offset is allowed)
// but still misses non-linear ones (z-normalized Euclidean distance is a
// linear-shape measure).

#ifndef TYCOS_BASELINES_MATRIX_PROFILE_H_
#define TYCOS_BASELINES_MATRIX_PROFILE_H_

#include <cstdint>
#include <vector>

namespace tycos {

struct MatrixProfileResult {
  // profile[i] = distance from a[i..i+m) to its nearest neighbour;
  // index[i] = that neighbour's start position.
  std::vector<double> profile;
  std::vector<int64_t> index;
  int64_t m = 0;
};

// AB-join: nearest neighbour in `b` for every length-m subsequence of `a`.
MatrixProfileResult MatrixProfileAbJoin(const std::vector<double>& a,
                                        const std::vector<double>& b,
                                        int64_t m);

// Self-join with the standard m/2 exclusion zone (motif discovery).
MatrixProfileResult MatrixProfileSelfJoin(const std::vector<double>& a,
                                          int64_t m);

}  // namespace tycos

#endif  // TYCOS_BASELINES_MATRIX_PROFILE_H_
