// Sliding dot product and rolling statistics: the O(n log n) kernel behind
// MASS and MatrixProfile (Mueen's trick of computing all query/subsequence
// dot products with one convolution).

#ifndef TYCOS_FFT_SLIDING_DOT_H_
#define TYCOS_FFT_SLIDING_DOT_H_

#include <cstddef>
#include <vector>

namespace tycos {

// dot[i] = Σ_{j<m} query[j] * series[i + j] for i in [0, n - m].
// O(n log n) via FFT convolution. Requires 1 <= m <= n.
std::vector<double> SlidingDotProduct(const std::vector<double>& query,
                                      const std::vector<double>& series);

// Rolling mean and standard deviation of every length-m subsequence of
// `series` (population stddev). out vectors have size n - m + 1.
void RollingMeanStd(const std::vector<double>& series, size_t m,
                    std::vector<double>* mean, std::vector<double>* std);

// z-normalized Euclidean distance profile of `query` against every length
// |query| subsequence of `series` (the MASS distance profile):
//   dist[i] = sqrt(2 m (1 − (dot_i − m μ_q μ_i) / (m σ_q σ_i))).
// Constant subsequences (σ = 0) get distance sqrt(2m) (uncorrelated).
std::vector<double> MassDistanceProfile(const std::vector<double>& query,
                                        const std::vector<double>& series);

}  // namespace tycos

#endif  // TYCOS_FFT_SLIDING_DOT_H_
