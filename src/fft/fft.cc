#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace tycos {

size_t NextPowerOfTwo(size_t n) {
  TYCOS_CHECK_GE(n, 1u);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<Complex>* data, bool inverse) {
  std::vector<Complex>& a = *data;
  const size_t n = a.size();
  TYCOS_CHECK((n & (n - 1)) == 0);  // power of two
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (Complex& c : a) c /= static_cast<double>(n);
  }
}

std::vector<Complex> FftAnySize(const std::vector<Complex>& data,
                                bool inverse) {
  const size_t n = data.size();
  TYCOS_CHECK_GE(n, 1u);
  if ((n & (n - 1)) == 0) {
    std::vector<Complex> out = data;
    Fft(&out, inverse);
    return out;
  }

  // Bluestein: X_k = b*_k · IFFT(FFT(a) ⊙ FFT(b)) with chirps
  // a_j = x_j · w^{j²}, b_j = w^{-j²}, w = exp(-iπ/n) (sign flips for the
  // inverse transform).
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> chirp(n);
  for (size_t j = 0; j < n; ++j) {
    // j² mod 2n avoids precision loss for large j.
    const size_t j2 = (j * j) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(j2) /
        static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }

  const size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (size_t j = 0; j < n; ++j) {
    a[j] = data[j] * chirp[j];
    b[j] = std::conj(chirp[j]);
  }
  for (size_t j = 1; j < n; ++j) b[m - j] = std::conj(chirp[j]);

  Fft(&a, false);
  Fft(&b, false);
  for (size_t j = 0; j < m; ++j) a[j] *= b[j];
  Fft(&a, true);

  std::vector<Complex> out(n);
  for (size_t j = 0; j < n; ++j) out[j] = a[j] * chirp[j];
  if (inverse) {
    for (Complex& c : out) c /= static_cast<double>(n);
  }
  return out;
}

std::vector<double> Convolve(const std::vector<double>& a,
                             const std::vector<double>& b) {
  TYCOS_CHECK(!a.empty());
  TYCOS_CHECK(!b.empty());
  const size_t out_len = a.size() + b.size() - 1;
  const size_t m = NextPowerOfTwo(out_len);
  std::vector<Complex> fa(m, Complex(0, 0));
  std::vector<Complex> fb(m, Complex(0, 0));
  for (size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0);
  for (size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0);
  Fft(&fa, false);
  Fft(&fb, false);
  for (size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  Fft(&fa, true);
  std::vector<double> out(out_len);
  for (size_t i = 0; i < out_len; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace tycos
