#include "fft/sliding_dot.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "fft/fft.h"

namespace tycos {

std::vector<double> SlidingDotProduct(const std::vector<double>& query,
                                      const std::vector<double>& series) {
  const size_t m = query.size();
  const size_t n = series.size();
  TYCOS_CHECK_GE(m, 1u);
  TYCOS_CHECK_LE(m, n);
  // Convolving the reversed query against the series aligns
  // conv[m - 1 + i] = Σ_j q[j] s[i + j].
  std::vector<double> rq(query.rbegin(), query.rend());
  std::vector<double> conv = Convolve(rq, series);
  std::vector<double> dot(n - m + 1);
  for (size_t i = 0; i + m <= n; ++i) dot[i] = conv[m - 1 + i];
  return dot;
}

void RollingMeanStd(const std::vector<double>& series, size_t m,
                    std::vector<double>* mean, std::vector<double>* std) {
  const size_t n = series.size();
  TYCOS_CHECK_GE(m, 1u);
  TYCOS_CHECK_LE(m, n);
  mean->assign(n - m + 1, 0.0);
  std->assign(n - m + 1, 0.0);
  // Prefix sums of x and x² give O(1) window stats.
  std::vector<double> s1(n + 1, 0.0), s2(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    s1[i + 1] = s1[i] + series[i];
    s2[i + 1] = s2[i] + series[i] * series[i];
  }
  const double inv_m = 1.0 / static_cast<double>(m);
  for (size_t i = 0; i + m <= n; ++i) {
    const double mu = (s1[i + m] - s1[i]) * inv_m;
    const double ex2 = (s2[i + m] - s2[i]) * inv_m;
    (*mean)[i] = mu;
    const double var = std::max(0.0, ex2 - mu * mu);
    (*std)[i] = std::sqrt(var);
  }
}

std::vector<double> MassDistanceProfile(const std::vector<double>& query,
                                        const std::vector<double>& series) {
  const size_t m = query.size();
  TYCOS_CHECK_GE(m, 2u);
  const std::vector<double> dot = SlidingDotProduct(query, series);
  std::vector<double> mean, sd;
  RollingMeanStd(series, m, &mean, &sd);
  const double mu_q = Mean(query);
  const double sd_q = std::sqrt(Variance(query));
  const double dm = static_cast<double>(m);

  std::vector<double> dist(dot.size());
  for (size_t i = 0; i < dot.size(); ++i) {
    if (sd_q == 0.0 || sd[i] == 0.0) {
      dist[i] = std::sqrt(2.0 * dm);  // degenerate: treat as uncorrelated
      continue;
    }
    const double corr =
        (dot[i] - dm * mu_q * mean[i]) / (dm * sd_q * sd[i]);
    const double clamped = std::clamp(corr, -1.0, 1.0);
    dist[i] = std::sqrt(std::max(0.0, 2.0 * dm * (1.0 - clamped)));
  }
  return dist;
}

}  // namespace tycos
