// Self-contained FFT: iterative radix-2 for power-of-two sizes plus
// Bluestein's chirp-z transform for arbitrary sizes. Powers the O(n log n)
// sliding dot products used by the MASS and MatrixProfile baselines.

#ifndef TYCOS_FFT_FFT_H_
#define TYCOS_FFT_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace tycos {

using Complex = std::complex<double>;

// In-place radix-2 FFT. data.size() must be a power of two (1 allowed).
// `inverse` applies the conjugate transform and divides by n.
void Fft(std::vector<Complex>* data, bool inverse);

// FFT of arbitrary length via Bluestein when the size is not a power of two.
// Returns the transform (input untouched).
std::vector<Complex> FftAnySize(const std::vector<Complex>& data,
                                bool inverse);

// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

// Linear convolution of two real sequences via FFT,
// result[k] = Σ_i a[i] * b[k - i], length |a| + |b| - 1.
std::vector<double> Convolve(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace tycos

#endif  // TYCOS_FFT_FFT_H_
