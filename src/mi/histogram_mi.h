// Plug-in (histogram) MI estimator. Slower to converge and more biased than
// KSG (the reason the paper chooses KSG), but simple and non-negative —
// used as an independent cross-check in tests and for the estimator
// comparison micro-benchmark.

#ifndef TYCOS_MI_HISTOGRAM_MI_H_
#define TYCOS_MI_HISTOGRAM_MI_H_

#include <vector>

namespace tycos {

// I(X;Y) in nats from an equal-width 2-D histogram. `bins` <= 0 selects
// ceil(sqrt(m)) bins per dimension.
double HistogramMi(const std::vector<double>& xs,
                   const std::vector<double>& ys, int bins = 0);

}  // namespace tycos

#endif  // TYCOS_MI_HISTOGRAM_MI_H_
