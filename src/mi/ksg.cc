#include "mi/ksg.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <utility>

#include "audit/audit.h"
#include "common/math.h"
#include "knn/brute_knn.h"
#include "knn/grid_index.h"
#include "knn/kd_tree.h"
#include "mi/entropy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tycos {

namespace internal {

namespace {

// SplitMix64: cheap, high-quality 64-bit mix used to derive deterministic
// per-index jitter.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void ApplyTieJitter(std::vector<double>* values, double relative_amplitude,
                    uint64_t salt) {
  if (relative_amplitude <= 0.0 || values->empty()) return;
  const auto [lo, hi] = std::minmax_element(values->begin(), values->end());
  double range = *hi - *lo;
  if (range == 0.0) range = 1.0;
  const double amp = relative_amplitude * range;
  for (size_t i = 0; i < values->size(); ++i) {
    // Uniform in [-0.5, 0.5), scaled.
    const double u =
        static_cast<double>(Mix64(salt * 0x9e3779b97f4a7c15ULL + i) >> 11) *
            (1.0 / 9007199254740992.0) -
        0.5;
    (*values)[i] += amp * u;
  }
}

}  // namespace internal

namespace {

// Closed-interval marginal count over a sorted value array, self excluded:
// #{ j != self : center - d <= v_j <= center + d }. All call sites (batch
// and incremental estimators) share these closed-interval semantics.
int64_t CountClosed(const std::vector<double>& sorted, double center,
                    double d) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), center - d);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), center + d);
  return static_cast<int64_t>(hi - lo) - 1;  // minus self
}

// Theiler-corrected KSG: every count excludes samples within
// `theiler` steps of the query index. Brute-force O(m(m + T)) — this mode
// is an accuracy feature for autocorrelated data, not a fast path.
double KsgMiTheiler(const std::vector<double>& x, const std::vector<double>& y,
                    int k, int64_t theiler) {
  const int64_t m = static_cast<int64_t>(x.size());
  // Need at least k eligible candidates for every point.
  if (m - 2 * theiler - 1 < k + 1) return 0.0;

  std::vector<Point2> points(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    points[static_cast<size_t>(i)] = {x[static_cast<size_t>(i)],
                                      y[static_cast<size_t>(i)]};
  }

  DigammaTable psi;
  double marginal_sum = 0.0;
  double pool_sum = 0.0;
  using Cand = std::pair<double, int64_t>;
  std::vector<Cand> heap;
  for (int64_t i = 0; i < m; ++i) {
    const Point2& probe = points[static_cast<size_t>(i)];
    // kNN over the temporally eligible candidates.
    heap.clear();
    int64_t pool = 0;
    for (int64_t j = 0; j < m; ++j) {
      if (std::llabs(i - j) <= theiler) continue;
      ++pool;
      const double d = ChebyshevDistance(points[static_cast<size_t>(j)], probe);
      if (heap.size() < static_cast<size_t>(k)) {
        heap.emplace_back(d, j);
        std::push_heap(heap.begin(), heap.end());
      } else if (Cand(d, j) < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = Cand(d, j);
        std::push_heap(heap.begin(), heap.end());
      }
    }
    double dx = 0.0, dy = 0.0;
    for (const Cand& c : heap) {
      dx = std::max(dx, std::fabs(points[static_cast<size_t>(c.second)].x -
                                  probe.x));
      dy = std::max(dy, std::fabs(points[static_cast<size_t>(c.second)].y -
                                  probe.y));
    }
    // Marginal counts over the same eligible pool.
    int64_t nx = 0, ny = 0;
    for (int64_t j = 0; j < m; ++j) {
      if (std::llabs(i - j) <= theiler) continue;
      if (std::fabs(points[static_cast<size_t>(j)].x - probe.x) <= dx) ++nx;
      if (std::fabs(points[static_cast<size_t>(j)].y - probe.y) <= dy) ++ny;
    }
    marginal_sum += psi(static_cast<size_t>(std::max<int64_t>(nx, 1))) +
                    psi(static_cast<size_t>(std::max<int64_t>(ny, 1)));
    pool_sum += psi(static_cast<size_t>(pool));
  }
  // Per-point pool sizes replace ψ(m): each point's neighbourhood
  // probabilities are estimated against its own eligible candidate set.
  return psi(static_cast<size_t>(k)) - 1.0 / k -
         marginal_sum / static_cast<double>(m) +
         pool_sum / static_cast<double>(m);
}

}  // namespace

// Single pass over both marginals: detects non-finite samples and constant
// marginals, the two inputs on which a kNN MI query is undefined.
enum class InputHealth { kOk, kConstantMarginal, kNonFinite };

InputHealth ClassifyInputs(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  double x_min = xs[0], x_max = xs[0], y_min = ys[0], y_max = ys[0];
  for (size_t i = 0; i < xs.size(); ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i])) {
      return InputHealth::kNonFinite;
    }
    x_min = std::min(x_min, xs[i]);
    x_max = std::max(x_max, xs[i]);
    y_min = std::min(y_min, ys[i]);
    y_max = std::max(y_max, ys[i]);
  }
  if (x_min == x_max || y_min == y_max) {
    return InputHealth::kConstantMarginal;
  }
  return InputHealth::kOk;
}

double KsgMi(const std::vector<double>& xs, const std::vector<double>& ys,
             const KsgOptions& options) {
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  const int64_t m = static_cast<int64_t>(xs.size());
  const int k = options.k;
  TYCOS_CHECK_GE(k, 1);
  if (m < k + 2) return 0.0;

  // Hostile-input guard: constant (or non-finite) inputs score a defined
  // MI of 0. The check runs before jitter so a constant series stays
  // constant rather than becoming jitter noise.
  switch (ClassifyInputs(xs, ys)) {
    case InputHealth::kOk:
      break;
    case InputHealth::kConstantMarginal:
      if (options.diagnostics) ++options.diagnostics->degenerate_windows;
      return 0.0;
    case InputHealth::kNonFinite:
      if (options.diagnostics) {
        ++options.diagnostics->degenerate_windows;
        ++options.diagnostics->non_finite_inputs;
      }
      return 0.0;
  }

  std::vector<double> x = xs;
  std::vector<double> y = ys;
  if (options.tie_jitter > 0.0) {
    internal::ApplyTieJitter(&x, options.tie_jitter, /*salt=*/1);
    internal::ApplyTieJitter(&y, options.tie_jitter, /*salt=*/2);
  }

  if (options.theiler_window > 0) {
    return KsgMiTheiler(x, y, k, options.theiler_window);
  }

  std::vector<Point2> points(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    points[static_cast<size_t>(i)] = {x[static_cast<size_t>(i)],
                                      y[static_cast<size_t>(i)]};
  }
  std::vector<double> sorted_x = x;
  std::vector<double> sorted_y = y;
  std::sort(sorted_x.begin(), sorted_x.end());
  std::sort(sorted_y.begin(), sorted_y.end());

  KnnBackend backend = options.backend;
  if (backend == KnnBackend::kAuto) {
    backend = m <= 256 ? KnnBackend::kBrute : KnnBackend::kKdTree;
  }

#if TYCOS_AUDIT_ENABLED
  {
    // 3-way backend agreement audit: brute, k-d tree, and grid must return
    // bit-identical extents for the same query (all three share the
    // (distance, index) tie-break). Sampled per estimator call and strided
    // across queries; only then are the two extra indexes built.
    static audit::Auditor* knn_audit = audit::Get("knn_backend_agreement");
    if (knn_audit->ShouldSample(32)) {
      KdTree audit_tree(points);
      GridIndex audit_grid(points);
      const int64_t stride = std::max<int64_t>(1, m / 8);
      for (int64_t i = 0; i < m; i += stride) {
        const KnnExtents b = BruteKnnExtents(points, static_cast<size_t>(i), k);
        const KnnExtents t = audit_tree.QueryExtents(static_cast<size_t>(i), k);
        const KnnExtents g = audit_grid.QueryExtents(static_cast<size_t>(i), k);
        TYCOS_AUDIT_CHECK(
            knn_audit,
            b.dx == t.dx && b.dy == t.dy && b.dx == g.dx && b.dy == g.dy,
            "kNN backends disagree at query " + std::to_string(i) + " of m=" +
                std::to_string(m) + ": brute=(" + std::to_string(b.dx) + "," +
                std::to_string(b.dy) + ") kd=(" + std::to_string(t.dx) + "," +
                std::to_string(t.dy) + ") grid=(" + std::to_string(g.dx) +
                "," + std::to_string(g.dy) + ")");
      }
    }
  }
#endif

  DigammaTable psi;
  double marginal_sum = 0.0;
  auto accumulate = [&](int64_t i, const KnnExtents& e) {
    const int64_t nx = std::max<int64_t>(
        1, CountClosed(sorted_x, x[static_cast<size_t>(i)], e.dx));
    const int64_t ny = std::max<int64_t>(
        1, CountClosed(sorted_y, y[static_cast<size_t>(i)], e.dy));
    marginal_sum += psi(static_cast<size_t>(nx)) + psi(static_cast<size_t>(ny));
  };
  // Each backend answers m queries; the counter is bumped once per call
  // (outside the query loop) so the per-point kernel stays registry-free.
  if (backend == KnnBackend::kKdTree) {
    KdTree tree(points);
    for (int64_t i = 0; i < m; ++i) {
      accumulate(i, tree.QueryExtents(static_cast<size_t>(i), k));
    }
    static obs::Counter* queries = obs::GetCounter("knn.kd_tree.queries");
    queries->Add(m);
  } else if (backend == KnnBackend::kGrid) {
    GridIndex grid(points);
    for (int64_t i = 0; i < m; ++i) {
      accumulate(i, grid.QueryExtents(static_cast<size_t>(i), k));
    }
    static obs::Counter* queries = obs::GetCounter("knn.grid.queries");
    queries->Add(m);
  } else {
    for (int64_t i = 0; i < m; ++i) {
      accumulate(i, BruteKnnExtents(points, static_cast<size_t>(i), k));
    }
    static obs::Counter* queries = obs::GetCounter("knn.brute.queries");
    queries->Add(m);
  }

  return psi(static_cast<size_t>(k)) - 1.0 / k -
         marginal_sum / static_cast<double>(m) + psi(static_cast<size_t>(m));
}

double KsgMi(const SeriesPair& pair, const Window& w,
             const KsgOptions& options) {
  std::vector<double> xs, ys;
  ExtractSamples(pair, w, &xs, &ys);
  return KsgMi(xs, ys, options);
}

double NormalizedMi(const std::vector<double>& xs,
                    const std::vector<double>& ys, const KsgOptions& options,
                    MiNormalization mode, double small_sample_penalty) {
  double mi = KsgMi(xs, ys, options);
  if (small_sample_penalty > 0.0 && !xs.empty()) {
    mi -= small_sample_penalty / std::sqrt(static_cast<double>(xs.size()));
  }
  if (mi <= 0.0) return 0.0;
  if (mode == MiNormalization::kCorrelationCoefficient) {
    return std::sqrt(1.0 - std::exp(-2.0 * mi));
  }
  const double h = HistogramJointEntropy(xs, ys);
  if (h <= 0.0) return 0.0;
  return std::clamp(mi / h, 0.0, 1.0);
}

double NormalizedMi(const SeriesPair& pair, const Window& w,
                    const KsgOptions& options, MiNormalization mode,
                    double small_sample_penalty) {
  std::vector<double> xs, ys;
  ExtractSamples(pair, w, &xs, &ys);
  return NormalizedMi(xs, ys, options, mode, small_sample_penalty);
}

}  // namespace tycos
