// KSG mutual information estimator (Kraskov–Stögbauer–Grassberger,
// estimator #2), the MI measure of the paper (Eq. 2 / Definition 4.6):
//
//   I(X;Y) = ψ(k) − 1/k − ⟨ψ(n_x) + ψ(n_y)⟩ + ψ(m)
//
// where for each sample the per-dimension extents (dx, dy) of its k nearest
// neighbours under L∞ define the marginal regions, and n_x / n_y count the
// samples falling inside them (self excluded), exactly as in the paper's
// Fig. 2 worked example.

#ifndef TYCOS_MI_KSG_H_
#define TYCOS_MI_KSG_H_

#include <vector>

#include "core/time_series.h"
#include "core/window.h"

namespace tycos {

enum class KnnBackend {
  kAuto,      // brute for small m, k-d tree for large m
  kBrute,     // O(m) scans
  kKdTree,    // balanced 2-D tree, expected O(log m) queries
  kGrid,      // uniform grid with L∞ ring expansion (paper's [30])
};

// Counters for defined-but-degenerate estimator inputs. KSG is undefined on
// a constant marginal (every pairwise distance ties at 0, the kNN "extent"
// is an empty strip) and poisoned by non-finite samples; both are mapped to
// MI = 0 and counted here instead of reaching a degenerate kNN query.
struct KsgDiagnostics {
  int64_t degenerate_windows = 0;  // constant-marginal inputs scored as 0
  int64_t non_finite_inputs = 0;   // inputs containing nan/inf, scored as 0
};

struct KsgOptions {
  // Number of nearest neighbours (the paper's k; Kraskov et al. recommend
  // small values, 2–6).
  int k = 4;

  KnnBackend backend = KnnBackend::kAuto;

  // Optional out-counters, bumped when a degenerate input is scored 0.
  KsgDiagnostics* diagnostics = nullptr;

  // When > 0, adds a deterministic per-index jitter of this relative
  // amplitude to break ties on discrete-valued data (Kraskov et al.'s
  // standard remedy). 0 disables.
  double tie_jitter = 0.0;

  // Theiler window (dynamic correlation exclusion): when > 0, samples
  // within this many time steps of the query point are excluded from both
  // the kNN search and the marginal counts. On autocorrelated series this
  // removes the trajectory-manifold artifact — two smooth but unrelated
  // signals otherwise look "dependent" over short windows because temporal
  // neighbours trace a 1-D curve in (x, y) space. Choose roughly the
  // series' decorrelation time. Costs O(m²) (brute scans only) and shrinks
  // the effective sample pool by 2·theiler_window; 0 disables (the paper's
  // plain estimator).
  int64_t theiler_window = 0;
};

// MI estimate for paired samples xs/ys (equal lengths). Returns 0 when the
// sample count is too small for the requested k (m < k + 2), when either
// marginal is constant, or when any sample is non-finite (see
// KsgDiagnostics) — degenerate inputs have defined behavior, never a
// degenerate kNN query. The raw KSG estimate may be slightly negative for
// independent data; callers that need a non-negative value clamp it.
double KsgMi(const std::vector<double>& xs, const std::vector<double>& ys,
             const KsgOptions& options = {});

// MI of the time-delay window w on `pair` (Definition 4.6).
double KsgMi(const SeriesPair& pair, const Window& w,
             const KsgOptions& options = {});

// Normalization mode for mapping raw MI to [0, 1] (Section 6.3.1).
enum class MiNormalization {
  // Ĩ = I_w / H_w with H_w the window's joint entropy from an adaptive 2-D
  // histogram; clamped to [0, 1]. The paper's Eq. (18), literally.
  kEntropyRatio,
  // Information coefficient of correlation: sqrt(1 − exp(−2·I)). Exact for
  // bivariate Gaussians, a robust monotone [0,1] mapping otherwise. The
  // library default: it separates weak non-functional relations (circle)
  // from noise far better than the entropy ratio on short windows.
  kCorrelationCoefficient,
};

// Small-sample significance penalty: before normalization the raw estimate
// is debiased as max(0, I − penalty/sqrt(m)). The KSG null distribution on
// independent data has a heavy O(1/sqrt(m)) tail, and a maximizing search
// over many short windows would otherwise surface pure-noise peaks;
// penalty = 2 pushes the empirical noise maximum below ~0.4 normalized
// while costing strong relations a few percent. 0 disables.
inline constexpr double kDefaultSmallSamplePenalty = 2.0;

// Normalized MI in [0, 1] for paired samples.
double NormalizedMi(
    const std::vector<double>& xs, const std::vector<double>& ys,
    const KsgOptions& options = {},
    MiNormalization mode = MiNormalization::kCorrelationCoefficient,
    double small_sample_penalty = kDefaultSmallSamplePenalty);

// Normalized MI of a window.
double NormalizedMi(
    const SeriesPair& pair, const Window& w, const KsgOptions& options = {},
    MiNormalization mode = MiNormalization::kCorrelationCoefficient,
    double small_sample_penalty = kDefaultSmallSamplePenalty);

namespace internal {

// Applies the deterministic tie-breaking jitter in place (exposed so the
// incremental estimator applies bit-identical jitter).
void ApplyTieJitter(std::vector<double>* values, double relative_amplitude,
                    uint64_t salt);

}  // namespace internal

}  // namespace tycos

#endif  // TYCOS_MI_KSG_H_
