#include "mi/entropy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/math.h"
#include "knn/brute_knn.h"
#include "knn/kd_tree.h"

namespace tycos {

double KozachenkoLeonenkoEntropy(const std::vector<double>& xs,
                                 const std::vector<double>& ys, int k) {
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  const int64_t m = static_cast<int64_t>(xs.size());
  if (m < k + 2) return 0.0;

  std::vector<Point2> points(static_cast<size_t>(m));
  double span = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    points[static_cast<size_t>(i)] = {xs[static_cast<size_t>(i)],
                                      ys[static_cast<size_t>(i)]};
  }
  const auto [xlo, xhi] = std::minmax_element(xs.begin(), xs.end());
  const auto [ylo, yhi] = std::minmax_element(ys.begin(), ys.end());
  span = std::max(*xhi - *xlo, *yhi - *ylo);
  const double eps_floor = std::max(span, 1.0) * 1e-12;

  const bool use_tree = m > 256;
  KdTree tree(use_tree ? points : std::vector<Point2>{});
  double log_sum = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    const KnnExtents e =
        use_tree ? tree.QueryExtents(static_cast<size_t>(i), k)
                 : BruteKnnExtents(points, static_cast<size_t>(i), k);
    const double eps = std::max(e.radius(), eps_floor);
    log_sum += std::log(eps);
  }
  const double d = 2.0;
  return Digamma(static_cast<double>(m)) - Digamma(static_cast<double>(k)) +
         d * std::log(2.0) + (d / static_cast<double>(m)) * log_sum;
}

namespace {

// Equal-width bin id in [0, bins) for v over [lo, hi].
int64_t BinOf(double v, double lo, double width, int64_t bins) {
  if (width <= 0.0) return 0;
  int64_t b = static_cast<int64_t>((v - lo) / width);
  return std::clamp<int64_t>(b, 0, bins - 1);
}

}  // namespace

double HistogramEntropy(const std::vector<double>& values) {
  const int64_t m = static_cast<int64_t>(values.size());
  if (m < 2) return 0.0;
  const int64_t bins = static_cast<int64_t>(
      std::ceil(std::sqrt(static_cast<double>(m))));
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  const double width = (*hi_it - lo) / static_cast<double>(bins);
  std::vector<int64_t> counts(static_cast<size_t>(bins), 0);
  for (double v : values) {
    ++counts[static_cast<size_t>(BinOf(v, lo, width, bins))];
  }
  double h = 0.0;
  for (int64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(m);
    h -= p * std::log(p);
  }
  return h;
}

double HistogramJointEntropy(const std::vector<double>& xs,
                             const std::vector<double>& ys) {
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  const int64_t m = static_cast<int64_t>(xs.size());
  if (m < 2) return 0.0;
  const int64_t bins = static_cast<int64_t>(
      std::ceil(std::sqrt(static_cast<double>(m))));
  const auto [xlo_it, xhi_it] = std::minmax_element(xs.begin(), xs.end());
  const auto [ylo_it, yhi_it] = std::minmax_element(ys.begin(), ys.end());
  const double xlo = *xlo_it, ylo = *ylo_it;
  const double xw = (*xhi_it - xlo) / static_cast<double>(bins);
  const double yw = (*yhi_it - ylo) / static_cast<double>(bins);
  std::vector<int64_t> counts(static_cast<size_t>(bins * bins), 0);
  for (size_t i = 0; i < xs.size(); ++i) {
    const int64_t bx = BinOf(xs[i], xlo, xw, bins);
    const int64_t by = BinOf(ys[i], ylo, yw, bins);
    ++counts[static_cast<size_t>(bx * bins + by)];
  }
  double h = 0.0;
  for (int64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(m);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace tycos
