#include "mi/histogram_mi.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace tycos {

double HistogramMi(const std::vector<double>& xs,
                   const std::vector<double>& ys, int bins) {
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  const int64_t m = static_cast<int64_t>(xs.size());
  if (m < 2) return 0.0;
  const int64_t b = bins > 0
                        ? bins
                        : static_cast<int64_t>(
                              std::ceil(std::sqrt(static_cast<double>(m))));
  const auto [xlo_it, xhi_it] = std::minmax_element(xs.begin(), xs.end());
  const auto [ylo_it, yhi_it] = std::minmax_element(ys.begin(), ys.end());
  const double xlo = *xlo_it, ylo = *ylo_it;
  const double xw = (*xhi_it - xlo) / static_cast<double>(b);
  const double yw = (*yhi_it - ylo) / static_cast<double>(b);

  auto bin_of = [](double v, double lo, double width, int64_t nbins) {
    if (width <= 0.0) return int64_t{0};
    return std::clamp<int64_t>(static_cast<int64_t>((v - lo) / width), 0,
                               nbins - 1);
  };

  std::vector<int64_t> joint(static_cast<size_t>(b * b), 0);
  std::vector<int64_t> mx(static_cast<size_t>(b), 0);
  std::vector<int64_t> my(static_cast<size_t>(b), 0);
  for (size_t i = 0; i < xs.size(); ++i) {
    const int64_t bx = bin_of(xs[i], xlo, xw, b);
    const int64_t by = bin_of(ys[i], ylo, yw, b);
    ++joint[static_cast<size_t>(bx * b + by)];
    ++mx[static_cast<size_t>(bx)];
    ++my[static_cast<size_t>(by)];
  }

  double mi = 0.0;
  const double inv_m = 1.0 / static_cast<double>(m);
  for (int64_t bx = 0; bx < b; ++bx) {
    for (int64_t by = 0; by < b; ++by) {
      const int64_t c = joint[static_cast<size_t>(bx * b + by)];
      if (c == 0) continue;
      const double pxy = static_cast<double>(c) * inv_m;
      const double px =
          static_cast<double>(mx[static_cast<size_t>(bx)]) * inv_m;
      const double py =
          static_cast<double>(my[static_cast<size_t>(by)]) * inv_m;
      mi += pxy * std::log(pxy / (px * py));
    }
  }
  return mi;
}

}  // namespace tycos
