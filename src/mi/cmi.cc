#include "mi/cmi.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace tycos {

namespace {

// L∞ distance between samples i and j over the selected columns.
double MaxDist(const std::vector<const std::vector<double>*>& cols, size_t i,
               size_t j) {
  double d = 0.0;
  for (const std::vector<double>* c : cols) {
    d = std::max(d, std::fabs((*c)[i] - (*c)[j]));
  }
  return d;
}

}  // namespace

double ConditionalMi(const std::vector<double>& xs,
                     const std::vector<double>& ys,
                     const std::vector<std::vector<double>>& zs, int k) {
  TYCOS_CHECK_GE(k, 1);
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  for (const auto& z : zs) TYCOS_CHECK_EQ(z.size(), xs.size());
  const size_t m = xs.size();
  if (m < static_cast<size_t>(k) + 2) return 0.0;

  std::vector<const std::vector<double>*> joint = {&xs, &ys};
  std::vector<const std::vector<double>*> xz = {&xs};
  std::vector<const std::vector<double>*> yz = {&ys};
  std::vector<const std::vector<double>*> z_only;
  for (const auto& z : zs) {
    joint.push_back(&z);
    xz.push_back(&z);
    yz.push_back(&z);
    z_only.push_back(&z);
  }

  DigammaTable psi;
  double acc = 0.0;
  std::vector<double> dist(m);
  for (size_t i = 0; i < m; ++i) {
    // Distance to the k-th nearest neighbour in the full joint space.
    size_t count = 0;
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      dist[count++] = MaxDist(joint, i, j);
    }
    std::nth_element(dist.begin(), dist.begin() + (k - 1),
                     dist.begin() + static_cast<long>(count));
    const double eps = dist[static_cast<size_t>(k - 1)];

    // Strict counts within eps in the marginal subspaces (Frenzel–Pompe).
    int64_t n_xz = 0, n_yz = 0, n_z = 0;
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      if (MaxDist(xz, i, j) < eps) ++n_xz;
      if (MaxDist(yz, i, j) < eps) ++n_yz;
      if (!z_only.empty() && MaxDist(z_only, i, j) < eps) ++n_z;
    }
    if (z_only.empty()) {
      // No conditioning: KSG estimator #1, ψ(k) + ψ(m) − ⟨ψ(nx+1)+ψ(ny+1)⟩.
      acc += psi(static_cast<size_t>(n_xz + 1)) +
             psi(static_cast<size_t>(n_yz + 1)) -
             psi(m);
    } else {
      acc += psi(static_cast<size_t>(n_xz + 1)) +
             psi(static_cast<size_t>(n_yz + 1)) -
             psi(static_cast<size_t>(n_z + 1));
    }
  }
  return psi(static_cast<size_t>(k)) - acc / static_cast<double>(m);
}

double TransferEntropy(const std::vector<double>& source,
                       const std::vector<double>& target,
                       const TransferEntropyOptions& options) {
  TYCOS_CHECK_EQ(source.size(), target.size());
  TYCOS_CHECK_GE(options.lag, 1);
  TYCOS_CHECK_GE(options.history, 1);
  const int64_t n = static_cast<int64_t>(source.size());
  const int64_t start = std::max(options.lag, options.history);
  const int64_t samples = n - start;
  if (samples < options.k + 2) return 0.0;

  std::vector<double> target_now(static_cast<size_t>(samples));
  std::vector<double> source_past(static_cast<size_t>(samples));
  std::vector<std::vector<double>> target_hist(
      static_cast<size_t>(options.history),
      std::vector<double>(static_cast<size_t>(samples)));
  for (int64_t t = start; t < n; ++t) {
    const size_t row = static_cast<size_t>(t - start);
    target_now[row] = target[static_cast<size_t>(t)];
    source_past[row] = source[static_cast<size_t>(t - options.lag)];
    for (int64_t h = 1; h <= options.history; ++h) {
      target_hist[static_cast<size_t>(h - 1)][row] =
          target[static_cast<size_t>(t - h)];
    }
  }
  return ConditionalMi(target_now, source_past, target_hist, options.k);
}

CausalDirection EstimateDirection(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  const TransferEntropyOptions& options) {
  CausalDirection d;
  d.te_forward = TransferEntropy(a, b, options);
  d.te_backward = TransferEntropy(b, a, options);
  return d;
}

}  // namespace tycos
