// Pearson correlation coefficient (PCC), the traditional linear correlation
// metric used as a baseline (Section 8.1).

#ifndef TYCOS_MI_PEARSON_H_
#define TYCOS_MI_PEARSON_H_

#include <vector>

namespace tycos {

// Pearson's r in [-1, 1]. Returns 0 when either input is constant or when
// fewer than 2 samples are supplied.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace tycos

#endif  // TYCOS_MI_PEARSON_H_
