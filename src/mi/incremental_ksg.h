// Incremental KSG estimator — the paper's "efficient MI computation"
// (Section 7). Maintains per-point kNN extents and marginal counts for a
// current window and updates them under window edits (grow / shrink / slide)
// instead of recomputing from scratch:
//
//  * Influenced region (IR, Definition 7.1): the L∞ ball of radius
//    d = max(dx, dy) around a point. A point added to / removed from the
//    window changes p's k nearest neighbours iff it lies in IR(p)
//    (Lemmas 3–4) — only then is p's kNN search redone.
//  * Influenced marginal regions (IMR, Definition 7.2): the value strips
//    |x − x_p| <= dx and |y − y_p| <= dy. A point entering/leaving an IMR
//    only bumps the marginal count n_x / n_y (Lemmas 5–6) — an O(1) digamma
//    adjustment, no kNN search.
//
// The running sum Σ[ψ(n_x)+ψ(n_y)] makes the window MI an O(1) read.
// Results are bit-compatible with the batch estimator KsgMi (same
// closed-interval counting semantics and deterministic kNN tie-break).

#ifndef TYCOS_MI_INCREMENTAL_KSG_H_
#define TYCOS_MI_INCREMENTAL_KSG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/math.h"
#include "core/time_series.h"
#include "core/window.h"
#include "knn/point.h"
#include "knn/rank_index.h"

namespace tycos {

// Counters exposing how much work the incremental path saved; used by tests
// (proving reuse actually happens) and by the ablation micro-benchmark.
struct IncrementalKsgStats {
  int64_t full_rebuilds = 0;       // windows recomputed from scratch
  int64_t incremental_moves = 0;   // windows updated via add/remove deltas
  int64_t points_added = 0;
  int64_t points_removed = 0;
  int64_t knn_recomputes = 0;      // per-point kNN searches from IR hits
  int64_t marginal_updates = 0;    // O(1) IMR count adjustments
  int64_t degenerate_windows = 0;  // constant/non-finite windows scored as 0
};

class IncrementalKsg {
 public:
  // The estimator keeps a reference to `pair`; it must outlive this object.
  IncrementalKsg(const SeriesPair& pair, int k);

  IncrementalKsg(const IncrementalKsg&) = delete;
  IncrementalKsg& operator=(const IncrementalKsg&) = delete;

  // Moves the estimator to window w and returns its MI. Windows sharing the
  // delay of the previous window are updated incrementally by adding and
  // removing edge points; a delay change or a disjoint jump triggers a full
  // rebuild. Returns 0 for windows too small for k (size < k + 2) and for
  // degenerate windows (a constant marginal or any non-finite sample,
  // detected in O(1) from precomputed tables; see stats().degenerate_windows)
  // — the estimator state is left untouched for those, so CurrentMi() keeps
  // describing the last healthy window.
  double SetWindow(const Window& w);

  // MI of the current window (O(1)).
  double CurrentMi() const;

  const IncrementalKsgStats& stats() const { return stats_; }
  int k() const { return k_; }

  // Publishes the incremental.* stats_ fields to the obs registry as deltas
  // since the previous flush. Called by IncrementalEvaluator at run / climb
  // boundaries — never per slide, so the hot path stays atomic-free.
  void FlushObsCounters();

  // Test-only fault hook for the audit selftest: perturbs the running ψ-sum
  // the way a real bookkeeping bug would (a missed IMR update, a stale
  // extent), so the incremental-vs-batch differential auditor has a
  // deliberately broken estimator to catch. Never call outside tests.
  void InjectStateDriftForTest(double delta) { sum_psi_ += delta; }

 private:
  struct PointState {
    Point2 p;
    double dx = 0.0;   // kNN extents of this point
    double dy = 0.0;
    int64_t nx = 0;    // marginal counts (self excluded, clamped >= 1)
    int64_t ny = 0;
  };

  int64_t WindowSizeNow() const { return end_ - start_ + 1; }
  Point2 PointAt(int64_t global_index, int64_t delay) const;

  // O(1) hostile-window test against the precomputed per-series tables:
  // true when w selects a constant marginal or any non-finite sample.
  bool DegenerateWindow(const Window& w) const;

  // Full O(m log m) recompute of all state for window w.
  void Rebuild(const Window& w);

  // Incremental edge edits (same delay as current window).
  void AddPoint(int64_t global_index);
  void RemovePoint(int64_t global_index);

  // Recomputes extents + marginals of the point stored at deque slot `slot`
  // against the current active set, adjusting sum_psi_.
  void RecomputePoint(size_t slot);

  // Marginal counts for a probe via the rank indexes (self excluded).
  int64_t CountMarginalX(double x, double dx) const;
  int64_t CountMarginalY(double y, double dy) const;

  // kNN extents of `probe` against all active points, excluding slot
  // `exclude_slot` (pass points_.size() to exclude nothing).
  KnnExtents ScanKnn(const Point2& probe, size_t exclude_slot) const;

  const SeriesPair& pair_;
  const int k_;
  // Lazily grown lookup table; mutable so the O(1) CurrentMi() stays const.
  mutable DigammaTable psi_;

  // Hostile-input tables, one entry per sample: run_start_*_[i] is the
  // smallest j with values j..i all equal (so [s, e] is constant iff
  // run_start[e] <= s), nonfinite_prefix_*_[i+1] counts non-finite samples
  // in [0, i].
  std::vector<int64_t> run_start_x_;
  std::vector<int64_t> run_start_y_;
  std::vector<int64_t> nonfinite_prefix_x_;
  std::vector<int64_t> nonfinite_prefix_y_;

  bool has_window_ = false;
  int64_t start_ = 0;   // current window, global X indices
  int64_t end_ = -1;
  int64_t delay_ = 0;

  // points_[i] corresponds to global X index start_ + i.
  std::deque<PointState> points_;
  RankIndex x_index_;
  RankIndex y_index_;
  double sum_psi_ = 0.0;  // Σ ψ(nx_i) + ψ(ny_i) over active points

  // Reusable scratch, hoisted out of the per-slide hot path so steady-state
  // add/remove/scan cycles allocate nothing. Each buffer is cleared (never
  // shrunk) at its use site; knn_scratch_ is mutable because the const
  // ScanKnn uses it as its candidate heap.
  std::vector<size_t> recompute_scratch_;            // IR-hit slots
  mutable std::vector<std::pair<double, size_t>> knn_scratch_;
  std::vector<Point2> rebuild_scratch_;              // window points

  IncrementalKsgStats stats_;
  // Watermark of the last FlushObsCounters(): only field deltas are
  // published, so a flush on an idle estimator is free.
  IncrementalKsgStats flushed_stats_;
};

}  // namespace tycos

#endif  // TYCOS_MI_INCREMENTAL_KSG_H_
