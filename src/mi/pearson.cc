#include "mi/pearson.h"

#include <cmath>

#include "common/check.h"

namespace tycos {

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  const size_t m = xs.size();
  if (m < 2) return 0.0;
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < m; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(m);
  const double my = sy / static_cast<double>(m);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace tycos
