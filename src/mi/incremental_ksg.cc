#include "mi/incremental_ksg.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "knn/brute_knn.h"
#include "knn/kd_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#if TYCOS_AUDIT_ENABLED
#include "mi/ksg.h"
#endif

namespace tycos {

namespace {

// ψ(max(n, 1)): the same clamp the batch estimator applies before the
// digamma so degenerate floating-point counts cannot reach ψ(0).
double PsiClamped(DigammaTable& psi, int64_t n) {
  return psi(static_cast<size_t>(n < 1 ? 1 : n));
}

}  // namespace

namespace {

// Universe values for the rank indexes. Non-finite samples are mapped to 0
// so the sorted universe keeps a strict weak order; they can never be
// *inserted* (windows touching them are rejected as degenerate), so the
// substitution only affects construction.
std::vector<double> FiniteUniverse(const std::vector<double>& values) {
  std::vector<double> out = values;
  for (double& v : out) {
    if (!std::isfinite(v)) v = 0.0;
  }
  return out;
}

void BuildHostileTables(const std::vector<double>& values,
                        std::vector<int64_t>* run_start,
                        std::vector<int64_t>* nonfinite_prefix) {
  const int64_t n = static_cast<int64_t>(values.size());
  run_start->resize(static_cast<size_t>(n));
  nonfinite_prefix->assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    (*run_start)[static_cast<size_t>(i)] =
        (i > 0 && values[static_cast<size_t>(i)] ==
                      values[static_cast<size_t>(i - 1)])
            ? (*run_start)[static_cast<size_t>(i - 1)]
            : i;
    (*nonfinite_prefix)[static_cast<size_t>(i) + 1] =
        (*nonfinite_prefix)[static_cast<size_t>(i)] +
        (std::isfinite(values[static_cast<size_t>(i)]) ? 0 : 1);
  }
}

}  // namespace

IncrementalKsg::IncrementalKsg(const SeriesPair& pair, int k)
    : pair_(pair),
      k_(k),
      x_index_(FiniteUniverse(pair.x().values())),
      y_index_(FiniteUniverse(pair.y().values())) {
  TYCOS_CHECK_GE(k_, 1);
  BuildHostileTables(pair.x().values(), &run_start_x_, &nonfinite_prefix_x_);
  BuildHostileTables(pair.y().values(), &run_start_y_, &nonfinite_prefix_y_);
}

bool IncrementalKsg::DegenerateWindow(const Window& w) const {
  const size_t xe = static_cast<size_t>(w.end);
  const size_t ye = static_cast<size_t>(w.y_end());
  if (run_start_x_[xe] <= w.start) return true;            // constant X
  if (run_start_y_[ye] <= w.y_start()) return true;        // constant Y
  if (nonfinite_prefix_x_[xe + 1] -
          nonfinite_prefix_x_[static_cast<size_t>(w.start)] > 0) {
    return true;
  }
  if (nonfinite_prefix_y_[ye + 1] -
          nonfinite_prefix_y_[static_cast<size_t>(w.y_start())] > 0) {
    return true;
  }
  return false;
}

Point2 IncrementalKsg::PointAt(int64_t global_index, int64_t delay) const {
  return {pair_.x()[global_index], pair_.y()[global_index + delay]};
}

int64_t IncrementalKsg::CountMarginalX(double x, double dx) const {
  return x_index_.CountInRange(x - dx, x + dx) - 1;  // minus self
}

int64_t IncrementalKsg::CountMarginalY(double y, double dy) const {
  return y_index_.CountInRange(y - dy, y + dy) - 1;
}

KnnExtents IncrementalKsg::ScanKnn(const Point2& probe,
                                   size_t exclude_slot) const {
  // Max-heap of the best k candidates ordered by (distance, slot) — the same
  // deterministic tie-break as the batch backends.
  using Cand = std::pair<double, size_t>;
  std::vector<Cand>& heap = knn_scratch_;
  heap.clear();
  heap.reserve(static_cast<size_t>(k_) + 1);
  for (size_t j = 0; j < points_.size(); ++j) {
    if (j == exclude_slot) continue;
    const double d = ChebyshevDistance(points_[j].p, probe);
    if (heap.size() < static_cast<size_t>(k_)) {
      heap.emplace_back(d, j);
      std::push_heap(heap.begin(), heap.end());
    } else if (Cand(d, j) < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = Cand(d, j);
      std::push_heap(heap.begin(), heap.end());
    }
  }
  TYCOS_CHECK_EQ(heap.size(), static_cast<size_t>(k_));
  KnnExtents e;
  for (const Cand& c : heap) {
    e.dx = std::max(e.dx, std::fabs(points_[c.second].p.x - probe.x));
    e.dy = std::max(e.dy, std::fabs(points_[c.second].p.y - probe.y));
  }
  return e;
}

void IncrementalKsg::RecomputePoint(size_t slot) {
  PointState& st = points_[slot];
  sum_psi_ -= PsiClamped(psi_, st.nx) + PsiClamped(psi_, st.ny);
  const KnnExtents e = ScanKnn(st.p, slot);
  st.dx = e.dx;
  st.dy = e.dy;
  st.nx = CountMarginalX(st.p.x, st.dx);
  st.ny = CountMarginalY(st.p.y, st.dy);
  sum_psi_ += PsiClamped(psi_, st.nx) + PsiClamped(psi_, st.ny);
  ++stats_.knn_recomputes;
}

void IncrementalKsg::Rebuild(const Window& w) {
  TYCOS_SPAN("ksg_rebuild");
  for (const PointState& st : points_) {
    x_index_.Erase(st.p.x);
    y_index_.Erase(st.p.y);
  }
  points_.clear();
  sum_psi_ = 0.0;

  start_ = w.start;
  end_ = w.end;
  delay_ = w.delay;
  const int64_t m = w.size();
  if (m < k_ + 2) {
    has_window_ = false;  // too small to estimate; force rebuild next time
    return;
  }
  has_window_ = true;

  std::vector<Point2>& pts = rebuild_scratch_;
  pts.clear();
  pts.resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    pts[static_cast<size_t>(i)] = PointAt(start_ + i, delay_);
    x_index_.Insert(pts[static_cast<size_t>(i)].x);
    y_index_.Insert(pts[static_cast<size_t>(i)].y);
  }

  const bool use_tree = m > 256;
  KdTree tree(use_tree ? pts : std::vector<Point2>{});
#if TYCOS_AUDIT_ENABLED
  // Backend-agreement audit: the k-d tree fast path must return extents
  // bit-identical to the brute reference (same deterministic tie-break).
  // Sampled per rebuild, strided within it, to bound the O(m) brute scans.
  static audit::Auditor* knn_audit = audit::Get("knn_backend_agreement");
  const bool audit_rebuild = use_tree && knn_audit->ShouldSample(16);
  const int64_t audit_stride = std::max<int64_t>(1, m / 8);
#endif
  for (int64_t i = 0; i < m; ++i) {
    PointState st;
    st.p = pts[static_cast<size_t>(i)];
    const KnnExtents e =
        use_tree ? tree.QueryExtents(static_cast<size_t>(i), k_)
                 : BruteKnnExtents(pts, static_cast<size_t>(i), k_);
#if TYCOS_AUDIT_ENABLED
    if (audit_rebuild && i % audit_stride == 0) {
      const KnnExtents b = BruteKnnExtents(pts, static_cast<size_t>(i), k_);
      TYCOS_AUDIT_CHECK(knn_audit, e.dx == b.dx && e.dy == b.dy,
                        "kd-tree extents diverge from brute at point " +
                            std::to_string(i) + " of m=" + std::to_string(m) +
                            ": kd=(" + std::to_string(e.dx) + "," +
                            std::to_string(e.dy) + ") brute=(" +
                            std::to_string(b.dx) + "," + std::to_string(b.dy) +
                            ")");
    }
#endif
    st.dx = e.dx;
    st.dy = e.dy;
    st.nx = CountMarginalX(st.p.x, st.dx);
    st.ny = CountMarginalY(st.p.y, st.dy);
    sum_psi_ += PsiClamped(psi_, st.nx) + PsiClamped(psi_, st.ny);
    points_.push_back(st);
  }
  ++stats_.full_rebuilds;
  // One registry write per rebuild (not per query): the backend answered m
  // kNN queries while rebuilding the window state.
  static obs::Counter* kd_queries = obs::GetCounter("knn.kd_tree.queries");
  static obs::Counter* brute_queries = obs::GetCounter("knn.brute.queries");
  (use_tree ? kd_queries : brute_queries)->Add(m);
}

void IncrementalKsg::AddPoint(int64_t global_index) {
  TYCOS_CHECK(global_index == start_ - 1 || global_index == end_ + 1);
  const bool at_front = global_index == start_ - 1;
  const Point2 o = PointAt(global_index, delay_);

  // Classify existing points: IR hit -> kNN recompute; IMR hit -> count bump
  // (Lemmas 3 and 5).
  std::vector<size_t>& to_recompute = recompute_scratch_;
  to_recompute.clear();
  for (size_t j = 0; j < points_.size(); ++j) {
    PointState& p = points_[j];
    // IR membership is tested with the same ChebyshevDistance computation
    // the kNN search uses, so a point exactly at the k-th distance (e.g. the
    // defining neighbour) is classified identically — reconstructing box
    // bounds as p.x ± d would round differently and miss it.
    const double d = std::max(p.dx, p.dy);
    const bool in_ir = ChebyshevDistance(o, p.p) <= d;
    if (in_ir) {
      to_recompute.push_back(j);
      continue;
    }
    if (o.x >= p.p.x - p.dx && o.x <= p.p.x + p.dx) {
      sum_psi_ -= PsiClamped(psi_, p.nx);
      ++p.nx;
      sum_psi_ += PsiClamped(psi_, p.nx);
      ++stats_.marginal_updates;
    }
    if (o.y >= p.p.y - p.dy && o.y <= p.p.y + p.dy) {
      sum_psi_ -= PsiClamped(psi_, p.ny);
      ++p.ny;
      sum_psi_ += PsiClamped(psi_, p.ny);
      ++stats_.marginal_updates;
    }
  }

  // Insert the new point.
  x_index_.Insert(o.x);
  y_index_.Insert(o.y);
  PointState st;
  st.p = o;
  if (at_front) {
    points_.push_front(st);
    --start_;
    // Slots shifted by one.
    for (size_t& j : to_recompute) ++j;
  } else {
    points_.push_back(st);
    ++end_;
  }
  const size_t own_slot = at_front ? 0 : points_.size() - 1;

  // The new point's own state.
  {
    PointState& self = points_[own_slot];
    const KnnExtents e = ScanKnn(self.p, own_slot);
    self.dx = e.dx;
    self.dy = e.dy;
    self.nx = CountMarginalX(self.p.x, self.dx);
    self.ny = CountMarginalY(self.p.y, self.dy);
    sum_psi_ += PsiClamped(psi_, self.nx) + PsiClamped(psi_, self.ny);
  }

  // Re-derive state for IR-hit points now that o is in the window.
  for (size_t j : to_recompute) RecomputePoint(j);
  ++stats_.points_added;
}

void IncrementalKsg::RemovePoint(int64_t global_index) {
  TYCOS_CHECK(global_index == start_ || global_index == end_);
  const bool at_front = global_index == start_;
  const size_t slot = at_front ? 0 : points_.size() - 1;
  const PointState removed = points_[slot];

  sum_psi_ -= PsiClamped(psi_, removed.nx) + PsiClamped(psi_, removed.ny);
  x_index_.Erase(removed.p.x);
  y_index_.Erase(removed.p.y);
  if (at_front) {
    points_.pop_front();
    ++start_;
  } else {
    points_.pop_back();
    --end_;
  }

  // Classify survivors against the removed point (Lemmas 4 and 6).
  std::vector<size_t>& to_recompute = recompute_scratch_;
  to_recompute.clear();
  for (size_t j = 0; j < points_.size(); ++j) {
    PointState& p = points_[j];
    // Same exact-distance IR test as in AddPoint (see comment there).
    const double d = std::max(p.dx, p.dy);
    const bool in_ir = ChebyshevDistance(removed.p, p.p) <= d;
    if (in_ir) {
      to_recompute.push_back(j);
      continue;
    }
    if (removed.p.x >= p.p.x - p.dx && removed.p.x <= p.p.x + p.dx) {
      sum_psi_ -= PsiClamped(psi_, p.nx);
      --p.nx;
      sum_psi_ += PsiClamped(psi_, p.nx);
      ++stats_.marginal_updates;
    }
    if (removed.p.y >= p.p.y - p.dy && removed.p.y <= p.p.y + p.dy) {
      sum_psi_ -= PsiClamped(psi_, p.ny);
      --p.ny;
      sum_psi_ += PsiClamped(psi_, p.ny);
      ++stats_.marginal_updates;
    }
  }
  for (size_t j : to_recompute) RecomputePoint(j);
  ++stats_.points_removed;
}

double IncrementalKsg::SetWindow(const Window& w) {
  TYCOS_SPAN("ksg_set_window");
  TYCOS_CHECK_GE(w.start, 0);
  TYCOS_CHECK_LT(w.end, pair_.size());
  TYCOS_CHECK_GE(w.y_start(), 0);
  TYCOS_CHECK_LT(w.y_end(), pair_.size());

  if (w.size() < k_ + 2) {
    Rebuild(w);  // clears state; CurrentMi() is 0
    return 0.0;
  }

  // Hostile-window guard: constant marginals and non-finite samples score a
  // defined 0 and never reach a kNN query. State is left on the previous
  // (healthy) window so an interleaved degenerate probe does not destroy
  // incremental locality.
  if (DegenerateWindow(w)) {
    ++stats_.degenerate_windows;
    return 0.0;
  }

  bool incremental = has_window_ && w.delay == delay_;
  if (incremental) {
    const int64_t overlap =
        std::min(end_, w.end) - std::max(start_, w.start) + 1;
    const int64_t changes =
        (w.size() - std::max<int64_t>(overlap, 0)) +
        (WindowSizeNow() - std::max<int64_t>(overlap, 0));
    // Fall back to a rebuild when too little is shared (the intermediate
    // window must also stay large enough for kNN queries).
    if (overlap < k_ + 2 || changes >= w.size()) incremental = false;
  }

  if (!incremental) {
    Rebuild(w);
    return CurrentMi();
  }

  // Shrink first (front then back), then grow, so the active set is always
  // a valid window between edits.
  while (start_ < w.start) RemovePoint(start_);
  while (end_ > w.end) RemovePoint(end_);
  while (start_ > w.start) AddPoint(start_ - 1);
  while (end_ < w.end) AddPoint(end_ + 1);
  ++stats_.incremental_moves;

#if TYCOS_AUDIT_ENABLED
  {
    // Differential audit (the paper's core equivalence, Eq. 2 / Sec. 7):
    // after an incremental move, the maintained state must reproduce the
    // batch estimator's MI for the same window. Sampled because the batch
    // recompute is O(m log m) — exactly the cost the incremental path
    // exists to avoid.
    static audit::Auditor* diff_audit = audit::Get("incremental_vs_batch");
    if (diff_audit->ShouldSample(32)) {
      std::vector<double> xs, ys;
      ExtractSamples(pair_, w, &xs, &ys);
      KsgOptions opts;
      opts.k = k_;
      opts.backend = KnnBackend::kBrute;
      const double batch = KsgMi(xs, ys, opts);
      const double inc = CurrentMi();
      TYCOS_AUDIT_CHECK(
          diff_audit, std::fabs(inc - batch) <= 1e-7,
          "incremental MI diverged from batch on " + w.ToString() +
              ": incremental=" + std::to_string(inc) +
              " batch=" + std::to_string(batch) +
              " diff=" + std::to_string(inc - batch));
    }
  }
#endif
  return CurrentMi();
}

void IncrementalKsg::FlushObsCounters() {
  static obs::Counter* rebuilds =
      obs::GetCounter("incremental.full_rebuilds");
  static obs::Counter* moves =
      obs::GetCounter("incremental.incremental_moves");
  static obs::Counter* added = obs::GetCounter("incremental.points_added");
  static obs::Counter* removed =
      obs::GetCounter("incremental.points_removed");
  static obs::Counter* recomputes =
      obs::GetCounter("incremental.knn_recomputes");
  static obs::Counter* marginals =
      obs::GetCounter("incremental.marginal_updates");
  const auto flush = [](obs::Counter* counter, int64_t now,
                        int64_t* flushed) {
    if (now == *flushed) return;
    counter->Add(now - *flushed);
    *flushed = now;
  };
  flush(rebuilds, stats_.full_rebuilds, &flushed_stats_.full_rebuilds);
  flush(moves, stats_.incremental_moves, &flushed_stats_.incremental_moves);
  flush(added, stats_.points_added, &flushed_stats_.points_added);
  flush(removed, stats_.points_removed, &flushed_stats_.points_removed);
  flush(recomputes, stats_.knn_recomputes, &flushed_stats_.knn_recomputes);
  flush(marginals, stats_.marginal_updates, &flushed_stats_.marginal_updates);
  // stats_.degenerate_windows is deliberately absent: IncrementalEvaluator
  // folds it into mi.degenerate_windows alongside its stateless path.
}

double IncrementalKsg::CurrentMi() const {
  if (!has_window_) return 0.0;
  const int64_t m = WindowSizeNow();
  if (m < k_ + 2) return 0.0;
  return psi_(static_cast<size_t>(k_)) - 1.0 / k_ -
         sum_psi_ / static_cast<double>(m) + psi_(static_cast<size_t>(m));
}

}  // namespace tycos
