// Entropy estimators used for MI normalization (Eq. 18) and as reference
// implementations in tests.

#ifndef TYCOS_MI_ENTROPY_H_
#define TYCOS_MI_ENTROPY_H_

#include <vector>

namespace tycos {

// Kozachenko–Leonenko differential entropy of the joint (x, y) sample under
// the L∞ norm (nats):
//   H ≈ ψ(m) − ψ(k) + log(2^d) + (d/m) Σ log ε_i
// with ε_i the distance to the k-th nearest neighbour and d = 2. Duplicate
// points (ε = 0) are floored at a tiny scale-relative epsilon.
double KozachenkoLeonenkoEntropy(const std::vector<double>& xs,
                                 const std::vector<double>& ys, int k = 4);

// Shannon entropy (nats) of a 1-D sample from an equal-width histogram with
// ceil(sqrt(m)) bins.
double HistogramEntropy(const std::vector<double>& values);

// Shannon entropy (nats) of the joint (x, y) sample from an equal-width 2-D
// histogram with ceil(sqrt(m)) bins per dimension. Always >= 0; this is the
// H_w used by the entropy-ratio normalization.
double HistogramJointEntropy(const std::vector<double>& xs,
                             const std::vector<double>& ys);

}  // namespace tycos

#endif  // TYCOS_MI_ENTROPY_H_
