// Conditional mutual information and transfer entropy — the "infer causal
// effects from the extracted correlations" direction of the paper's
// conclusion. Once TYCOS has located a correlated window, these estimators
// answer the follow-up questions: does the dependence survive conditioning
// on a third signal, and which series drives which?
//
// Both use the Frenzel–Pompe kNN estimator (the conditional analogue of
// KSG): with ε_i the distance to the k-th neighbour in the full joint space
// under L∞,
//
//   I(X;Y|Z) = ψ(k) − ⟨ψ(n_xz + 1) + ψ(n_yz + 1) − ψ(n_z + 1)⟩
//
// where the n's count samples strictly within ε_i in the respective
// marginal subspaces.

#ifndef TYCOS_MI_CMI_H_
#define TYCOS_MI_CMI_H_

#include <cstdint>
#include <vector>

namespace tycos {

// I(X;Y|Z) in nats for paired samples. `zs` holds one or more conditioning
// columns (each the same length as xs/ys); an empty `zs` reduces to an
// unconditional KSG-1 MI estimate. Returns 0 when fewer than k + 2 samples
// are supplied. O(m²·d) brute-force scans.
double ConditionalMi(const std::vector<double>& xs,
                     const std::vector<double>& ys,
                     const std::vector<std::vector<double>>& zs, int k = 4);

struct TransferEntropyOptions {
  int k = 4;
  // Source→target interaction lag: the target at time t is explained by the
  // source at time t − lag.
  int64_t lag = 1;
  // Length of the target's own history conditioned away (embedding
  // dimension of Y's past).
  int64_t history = 1;
};

// Transfer entropy TE(X→Y) = I(y_t ; x_{t−lag} | y_{t−1}, ..., y_{t−history})
// in nats. Positive when X's past adds predictive information about Y
// beyond Y's own past — the directed counterpart of the windows TYCOS
// extracts. Returns 0 when the series are too short.
double TransferEntropy(const std::vector<double>& source,
                       const std::vector<double>& target,
                       const TransferEntropyOptions& options = {});

// Convenience verdict: compares TE in both directions over the samples.
struct CausalDirection {
  double te_forward = 0.0;   // TE(source -> target)
  double te_backward = 0.0;  // TE(target -> source)

  // Positive margin means forward dominates.
  double margin() const { return te_forward - te_backward; }
};

CausalDirection EstimateDirection(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  const TransferEntropyOptions& options = {});

}  // namespace tycos

#endif  // TYCOS_MI_CMI_H_
