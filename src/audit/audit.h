// Runtime invariant audit layer.
//
// A process-wide registry of named auditors — cheap counters that verify
// cross-implementation invariants the type system cannot express: the
// incremental KSG estimator must agree with the batch estimator, the three
// kNN backends must return identical extents, a WindowSet must stay
// non-nested, ParallelFor must execute exactly the prefix [0, claimed), and
// multi-restart RNG streams must be distinct and reproducible.
//
// Auditors are compiled out of release builds: configure with
// `-DTYCOS_AUDIT=ON` (the `audit` CMake preset) to define
// TYCOS_AUDIT_ENABLED=1, which turns the TYCOS_AUDIT_* macros into real
// checks. With the option off the macros expand to nothing, so hot paths
// carry zero cost — the expensive differential recomputes at the call sites
// must therefore sit inside `#if TYCOS_AUDIT_ENABLED` blocks, not behind a
// runtime flag.
//
// A violation never aborts: it bumps the auditor's failure counter and
// captures the first failure's human-readable context. Results are read as
// a structured AuditReport (audit::Snapshot()), surfaced through
// TycosStats::audit_checks / audit_failures after each search run, and
// asserted on by the `audit_selftest` binary.

#ifndef TYCOS_AUDIT_AUDIT_H_
#define TYCOS_AUDIT_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef TYCOS_AUDIT_ENABLED
#define TYCOS_AUDIT_ENABLED 0
#endif

namespace tycos {
namespace audit {

// Counters of one named invariant, as captured by Snapshot().
struct AuditorStats {
  std::string name;
  int64_t checks = 0;
  int64_t failures = 0;
  // Context string of the first observed violation ("" while clean).
  std::string first_failure;
};

// Structured result of an audit window: aggregate counters plus the
// per-auditor breakdown (only auditors that ran at least one check).
struct AuditReport {
  int64_t checks = 0;
  int64_t failures = 0;
  std::vector<AuditorStats> auditors;

  bool ok() const { return failures == 0; }
  // Multi-line human-readable rendering (one line per auditor, first
  // failure context indented below failing ones).
  std::string ToString() const;
};

// One named invariant. Thread-safe: Check() may race from concurrent
// climbs; counters are atomic and the first-failure capture is locked.
class Auditor {
 public:
  explicit Auditor(std::string name) : name_(std::move(name)) {}

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // Records one check. On the first failure, `context` is invoked once to
  // capture a diagnostic string; later failures only bump the counter, so
  // a hot loop that goes bad cannot allocate unboundedly.
  void Check(bool ok, const std::function<std::string()>& context);

  // Deterministic sampling for expensive differential audits: true on the
  // 1st, (period+1)th, ... call. Counter-based (never wall clock or RNG),
  // so a given workload samples the same operations on every run.
  bool ShouldSample(int64_t period);

  const std::string& name() const { return name_; }
  int64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  int64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  std::string first_failure() const;

 private:
  friend class Registry;
  void Reset();

  const std::string name_;
  std::atomic<int64_t> checks_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<int64_t> sample_clock_{0};
  mutable std::mutex mu_;  // guards first_failure_
  std::string first_failure_;
};

// Process-wide auditor registry. Auditor handles are stable for the process
// lifetime; look one up once per call site (function-local static) and
// reuse it.
class Registry {
 public:
  static Registry& Instance();

  // Returns the auditor named `name`, creating it on first use.
  Auditor* Get(const std::string& name);

  // Aggregate counters across all auditors (cheap; no per-auditor copy).
  int64_t TotalChecks() const;
  int64_t TotalFailures() const;

  // Structured snapshot of every auditor that ran at least one check.
  AuditReport Snapshot() const;

  // Zeroes every auditor (test isolation between selftest scenarios).
  void ResetAllForTest();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // Node-based container: Get() hands out raw pointers that must survive
  // later insertions.
  std::vector<std::unique_ptr<Auditor>> auditors_;
};

// Convenience wrappers for call sites.
inline Auditor* Get(const std::string& name) {
  return Registry::Instance().Get(name);
}
inline AuditReport Snapshot() { return Registry::Instance().Snapshot(); }

}  // namespace audit
}  // namespace tycos

// TYCOS_AUDIT_CHECK(auditor, cond, context_expr): record one check on
// `auditor`; `context_expr` (a std::string expression) is evaluated only on
// the auditor's first failure. Compiled out entirely when TYCOS_AUDIT is
// off. `auditor` is an audit::Auditor*.
#if TYCOS_AUDIT_ENABLED
#define TYCOS_AUDIT_CHECK(auditor, cond, context_expr) \
  (auditor)->Check((cond), [&]() -> std::string { return (context_expr); })
// Marks a statement that exists only to feed auditors (state capture,
// expensive recomputes). Prefer `#if TYCOS_AUDIT_ENABLED` blocks for
// multi-statement setup.
#define TYCOS_AUDIT_ONLY(statement) statement
#else
#define TYCOS_AUDIT_CHECK(auditor, cond, context_expr) ((void)0)
#define TYCOS_AUDIT_ONLY(statement) ((void)0)
#endif

#endif  // TYCOS_AUDIT_AUDIT_H_
