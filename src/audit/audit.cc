#include "audit/audit.h"

#include <sstream>

namespace tycos {
namespace audit {

void Auditor::Check(bool ok, const std::function<std::string()>& context) {
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (ok) return;
  const int64_t prior = failures_.fetch_add(1, std::memory_order_relaxed);
  if (prior == 0) {
    std::string ctx = context ? context() : std::string();
    std::lock_guard<std::mutex> lock(mu_);
    // A racing first failure may have landed between the fetch_add and the
    // lock; keep whichever arrived first.
    if (first_failure_.empty()) {
      first_failure_ = ctx.empty() ? "(no context)" : std::move(ctx);
    }
  }
}

bool Auditor::ShouldSample(int64_t period) {
  if (period <= 1) return true;
  const int64_t tick = sample_clock_.fetch_add(1, std::memory_order_relaxed);
  return tick % period == 0;
}

std::string Auditor::first_failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_failure_;
}

void Auditor::Reset() {
  checks_.store(0, std::memory_order_relaxed);
  failures_.store(0, std::memory_order_relaxed);
  sample_clock_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  first_failure_.clear();
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  out << "audit: " << checks << " checks, " << failures << " failures"
      << (ok() ? " (ok)" : " (VIOLATIONS)") << "\n";
  for (const AuditorStats& a : auditors) {
    out << "  " << a.name << ": " << a.checks << " checks, " << a.failures
        << " failures\n";
    if (a.failures > 0 && !a.first_failure.empty()) {
      out << "    first failure: " << a.first_failure << "\n";
    }
  }
  return out.str();
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // leaked: process lifetime
  return *instance;
}

Auditor* Registry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Auditor>& a : auditors_) {
    if (a->name() == name) return a.get();
  }
  auditors_.push_back(std::make_unique<Auditor>(name));
  return auditors_.back().get();
}

int64_t Registry::TotalChecks() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const std::unique_ptr<Auditor>& a : auditors_) total += a->checks();
  return total;
}

int64_t Registry::TotalFailures() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const std::unique_ptr<Auditor>& a : auditors_) total += a->failures();
  return total;
}

AuditReport Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  AuditReport report;
  for (const std::unique_ptr<Auditor>& a : auditors_) {
    const int64_t checks = a->checks();
    if (checks == 0) continue;
    AuditorStats st;
    st.name = a->name();
    st.checks = checks;
    st.failures = a->failures();
    st.first_failure = a->first_failure();
    report.checks += st.checks;
    report.failures += st.failures;
    report.auditors.push_back(std::move(st));
  }
  return report;
}

void Registry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Auditor>& a : auditors_) a->Reset();
}

}  // namespace audit
}  // namespace tycos
