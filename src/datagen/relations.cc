#include "datagen/relations.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace tycos {
namespace datagen {

const char* RelationTypeName(RelationType type) {
  switch (type) {
    case RelationType::kIndependent:
      return "Independent";
    case RelationType::kLinear:
      return "Linear";
    case RelationType::kExponential:
      return "Exp";
    case RelationType::kQuadratic:
      return "Quad";
    case RelationType::kCircle:
      return "Circle";
    case RelationType::kSine:
      return "Sine";
    case RelationType::kCross:
      return "Cross";
    case RelationType::kQuartic:
      return "Quartic";
    case RelationType::kSquareRoot:
      return "SquareRoot";
  }
  return "Unknown";
}

namespace {

void ZNormalize(std::vector<double>* v) {
  const double mu = Mean(*v);
  const double sd = std::sqrt(Variance(*v));
  if (sd == 0.0) {
    for (double& x : *v) x -= mu;
    return;
  }
  for (double& x : *v) x = (x - mu) / sd;
}

}  // namespace

namespace {

// Domain of x for each relation (Table 1).
void RelationDomain(RelationType type, double* lo, double* hi) {
  switch (type) {
    case RelationType::kIndependent:
      *lo = -12.0;
      *hi = 18.0;  // ~N(3,5) span; values unused for the relation itself
      break;
    case RelationType::kLinear:
      *lo = 0.0;
      *hi = 10.0;
      break;
    case RelationType::kExponential:
      *lo = -10.0;
      *hi = 10.0;
      break;
    case RelationType::kQuadratic:
      *lo = -4.0;
      *hi = 4.0;
      break;
    case RelationType::kCircle:
      *lo = -3.0;
      *hi = 3.0;
      break;
    case RelationType::kSine:
      *lo = 0.0;
      *hi = 10.0;
      break;
    case RelationType::kCross:
      *lo = -5.0;
      *hi = 5.0;
      break;
    case RelationType::kQuartic:
      *lo = -1.0;
      *hi = 3.0;
      break;
    case RelationType::kSquareRoot:
      *lo = 0.0;
      *hi = 25.0;
      break;
  }
}

}  // namespace

void SampleRelation(RelationType type, int64_t m, Rng& rng,
                    std::vector<double>* xs, std::vector<double>* ys,
                    XSampling sampling) {
  TYCOS_CHECK_GE(m, 1);
  xs->resize(static_cast<size_t>(m));
  ys->resize(static_cast<size_t>(m));

  double lo = 0.0, hi = 1.0;
  RelationDomain(type, &lo, &hi);
  // Random-walk mode: step = range/12 decorrelates x over ~25 samples.
  const double step = (hi - lo) / 12.0;
  double walk = rng.Uniform(lo, hi);

  for (int64_t i = 0; i < m; ++i) {
    const size_t s = static_cast<size_t>(i);
    double x;
    if (sampling == XSampling::kRandomWalk) {
      walk += rng.Normal(0.0, step);
      // Reflect at the domain boundaries.
      while (walk < lo || walk > hi) {
        if (walk < lo) walk = 2.0 * lo - walk;
        if (walk > hi) walk = 2.0 * hi - walk;
      }
      x = walk;
    } else {
      x = rng.Uniform(lo, hi);
    }
    const double u = rng.Uniform(0.0, 1.0);
    double y = 0.0;
    switch (type) {
      case RelationType::kIndependent:
        (*xs)[s] = rng.Normal(3.0, 5.0);
        (*ys)[s] = rng.Normal(0.0, 1.0);
        continue;
      case RelationType::kLinear:
        y = 2.0 * x + u;
        break;
      case RelationType::kExponential:
        // 0.01^(x+u) spans 40 decades; generate in scaled log-space and let
        // the final z-normalization rescale (a monotone-linear change that
        // keeps the relation intact while staying in double range).
        y = std::pow(0.01, (x + u) / 4.0);
        break;
      case RelationType::kQuadratic:
        y = x * x + u;
        break;
      case RelationType::kCircle: {
        const double root = std::sqrt(std::max(0.0, 9.0 - x * x));
        y = (rng.Bernoulli(0.5) ? root : -root) + u;
        break;
      }
      case RelationType::kSine:
        y = 2.0 * std::sin(x) + u;
        break;
      case RelationType::kCross:
        y = (rng.Bernoulli(0.5) ? x : -x) + u;
        break;
      case RelationType::kQuartic:
        y = x * x * x * x - 4.0 * x * x * x + 4.0 * x * x + x + u;
        break;
      case RelationType::kSquareRoot:
        y = std::sqrt(x);
        break;
    }
    (*xs)[s] = x;
    (*ys)[s] = y;
  }
  ZNormalize(xs);
  ZNormalize(ys);
}

SyntheticDataset ComposeDataset(const std::vector<SegmentSpec>& segments,
                                int64_t gap, uint64_t seed,
                                XSampling sampling) {
  TYCOS_CHECK_GE(gap, 0);
  Rng rng(seed);

  int64_t max_delay = 0;
  int64_t content = gap;
  for (const SegmentSpec& s : segments) {
    TYCOS_CHECK_GE(s.length, 1);
    TYCOS_CHECK_GE(s.delay, 0);
    max_delay = std::max(max_delay, s.delay);
    content += s.length + gap;
  }
  const int64_t n = content + max_delay;

  // Independent N(0,1) background everywhere, then overwrite with segments.
  std::vector<double> x(static_cast<size_t>(n));
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.Normal(0.0, 1.0);
    y[static_cast<size_t>(i)] = rng.Normal(0.0, 1.0);
  }

  SyntheticDataset out{SeriesPair(), {}};
  int64_t pos = gap;
  for (const SegmentSpec& s : segments) {
    std::vector<double> xs, ys;
    SampleRelation(s.type, s.length, rng, &xs, &ys, sampling);
    for (int64_t i = 0; i < s.length; ++i) {
      x[static_cast<size_t>(pos + i)] = xs[static_cast<size_t>(i)];
      y[static_cast<size_t>(pos + s.delay + i)] = ys[static_cast<size_t>(i)];
    }
    out.planted.push_back(PlantedRelation{s.type, pos, s.length, s.delay});
    pos += s.length + gap;
  }

  out.pair = SeriesPair(TimeSeries(std::move(x), "X"),
                        TimeSeries(std::move(y), "Y"));
  return out;
}

SyntheticDataset SyntheticWorkload(int variant, int64_t n, uint64_t seed) {
  TYCOS_CHECK_GE(variant, 1);
  TYCOS_CHECK_LE(variant, 3);
  TYCOS_CHECK_GE(n, 400);

  // Relation mixes per variant; delays grow with the variant index.
  std::vector<RelationType> mix;
  int64_t delay_step = 0;
  switch (variant) {
    case 1:
      mix = {RelationType::kLinear, RelationType::kQuadratic,
             RelationType::kSine};
      delay_step = 0;
      break;
    case 2:
      mix = {RelationType::kExponential, RelationType::kCircle,
             RelationType::kQuartic, RelationType::kLinear};
      delay_step = 8;
      break;
    default:
      mix = {RelationType::kSquareRoot, RelationType::kCross,
             RelationType::kSine, RelationType::kQuadratic,
             RelationType::kLinear};
      delay_step = 12;
      break;
  }

  // Budget: half the length on relations, half on separators.
  const int64_t k = static_cast<int64_t>(mix.size());
  const int64_t seg_len = std::max<int64_t>(32, n / (2 * k));
  const int64_t gap = std::max<int64_t>(
      16, (n - seg_len * k) / (k + 1));
  std::vector<SegmentSpec> specs;
  for (int64_t i = 0; i < k; ++i) {
    specs.push_back(SegmentSpec{mix[static_cast<size_t>(i)], seg_len,
                                delay_step * i});
  }
  return ComposeDataset(specs, gap, seed);
}

}  // namespace datagen
}  // namespace tycos
