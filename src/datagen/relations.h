// Synthetic relation generators reproducing the Table 1 workload: nine
// relation types (linear and non-linear, monotonic and non-monotonic,
// functional and non-functional), planted into a series pair with
// configurable time delays and separated by independent noise.

#ifndef TYCOS_DATAGEN_RELATIONS_H_
#define TYCOS_DATAGEN_RELATIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/time_series.h"
#include "core/window.h"

namespace tycos {
namespace datagen {

// The Table 1 relations, y = f(x) + u with u ~ U(0, 1) noise.
enum class RelationType {
  kIndependent,  // y ~ N(0,1), x ~ N(3,5)
  kLinear,       // y = 2x + u,                 x in [0, 10]
  kExponential,  // y = 0.01^(x+u),             x in [-10, 10]
  kQuadratic,    // y = x² + u,                 x in [-4, 4]
  kCircle,       // y = ±sqrt(3² − x²) + u,     x in [-3, 3]
  kSine,         // y = 2 sin(x) + u,           x in [0, 10]
  kCross,        // y = ±x + u,                 x in [-5, 5]
  kQuartic,      // y = x⁴ − 4x³ + 4x² + x + u, x in [-1, 3]
  kSquareRoot,   // y = sqrt(x),                x in [0, 25]
};

inline constexpr RelationType kAllRelations[] = {
    RelationType::kIndependent, RelationType::kLinear,
    RelationType::kExponential, RelationType::kQuadratic,
    RelationType::kCircle,      RelationType::kSine,
    RelationType::kCross,       RelationType::kQuartic,
    RelationType::kSquareRoot,
};

const char* RelationTypeName(RelationType type);

// How the x samples traverse the relation's domain.
enum class XSampling {
  // Independent uniform draws: the (x, y) pairs carry no serial structure,
  // so a planted delay is a sharp spike in τ (the default, and what keeps
  // ground truth unambiguous).
  kIid,
  // Reflected random walk over the domain: mimics autocorrelated sensor
  // data. Serial smoothness widens delay basins but also lets the KSG
  // estimator see spurious "MI" between unrelated smooth stretches (the
  // trajectory-manifold artifact); see DESIGN.md.
  kRandomWalk,
};

// Draws m paired samples of the relation over the Table 1 domain,
// y = f(x) + u. Both outputs are z-normalized (a linear rescale, so every
// statistical relationship is preserved) so segments splice seamlessly into
// an N(0,1) background.
void SampleRelation(RelationType type, int64_t m, Rng& rng,
                    std::vector<double>* xs, std::vector<double>* ys,
                    XSampling sampling = XSampling::kIid);

// One planted segment of a composite dataset.
struct SegmentSpec {
  RelationType type;
  int64_t length;
  int64_t delay;  // Y lags X by this many samples (>= 0 here)
};

// Ground truth of a planted segment after composition.
struct PlantedRelation {
  RelationType type;
  int64_t x_start;  // where the relation's X window begins
  int64_t length;
  int64_t delay;

  Window AsWindow() const {
    return Window(x_start, x_start + length - 1, delay);
  }
};

struct SyntheticDataset {
  SeriesPair pair;
  std::vector<PlantedRelation> planted;
};

// Lays out `segments` left to right, separated (and book-ended) by `gap`
// samples, over an independent N(0, 1) background on both series. The Y
// values of each segment are written `delay` samples after its X values,
// emulating the paper's lagged interactions. `sampling` selects how each
// segment's x traverses its domain (see XSampling).
SyntheticDataset ComposeDataset(const std::vector<SegmentSpec>& segments,
                                int64_t gap, uint64_t seed,
                                XSampling sampling = XSampling::kIid);

// The Fig. 9 composite workloads: "Synthetic 1/2/3" combine several Table 1
// relations into one pair of total length ~n. `variant` in {1, 2, 3} selects
// the relation mix; delays grow with the variant.
SyntheticDataset SyntheticWorkload(int variant, int64_t n, uint64_t seed);

}  // namespace datagen
}  // namespace tycos

#endif  // TYCOS_DATAGEN_RELATIONS_H_
