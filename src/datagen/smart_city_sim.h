// Simulated weather / traffic data standing in for the NYC Open Data
// collections [2] of the paper (DESIGN.md, substitution 2). Weather events
// (rain showers, wind storms, snowfall) drive incident counts with the
// Table 3 lags:
//
//   C7  Precipitation → Collisions          lag 0.5–2 h
//   C8  WindSpeed     → Collisions          lag 0.25–1 h
//   C9  Precipitation → PedestrianInjured   lag 0.5–2 h (stronger response)
//   C10 WindSpeed     → MotoristKilled      lag 0.25–1 h
//
// Incident channels are Poisson counts whose rate rises nonlinearly with
// the (lagged) weather intensity, so the dependency is non-linear — exactly
// the kind PCC misses and MI catches.

#ifndef TYCOS_DATAGEN_SMART_CITY_SIM_H_
#define TYCOS_DATAGEN_SMART_CITY_SIM_H_

#include <cstdint>
#include <vector>

#include "core/time_series.h"

namespace tycos {
namespace datagen {

enum class CityChannel {
  kPrecipitation = 0,
  kWindSpeed,
  kSnow,
  kCollisions,
  kPedestrianInjured,
  kMotoristKilled,
  kCyclistInjured,
};
inline constexpr int kNumCityChannels = 7;

const char* CityChannelName(CityChannel c);

struct SmartCitySimOptions {
  int days = 14;
  int samples_per_hour = 4;  // 15-minute resolution, like the paper's NYC data
  uint64_t seed = 11;
};

class SmartCitySimulator {
 public:
  explicit SmartCitySimulator(const SmartCitySimOptions& options);

  int64_t length() const { return length_; }
  int samples_per_hour() const { return options_.samples_per_hour; }

  const TimeSeries& Channel(CityChannel c) const;

  SeriesPair Pair(CityChannel leader, CityChannel follower) const;

 private:
  SmartCitySimOptions options_;
  int64_t length_;
  std::vector<TimeSeries> channels_;
};

}  // namespace datagen
}  // namespace tycos

#endif  // TYCOS_DATAGEN_SMART_CITY_SIM_H_
