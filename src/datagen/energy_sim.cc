#include "datagen/energy_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tycos {
namespace datagen {

const char* EnergyChannelName(EnergyChannel c) {
  switch (c) {
    case EnergyChannel::kKitchen:
      return "Kitchen";
    case EnergyChannel::kDishWasher:
      return "DishWasher";
    case EnergyChannel::kMicrowave:
      return "Microwave";
    case EnergyChannel::kClothesWasher:
      return "ClothesWasher";
    case EnergyChannel::kDryer:
      return "Dryer";
    case EnergyChannel::kBathroomLight:
      return "BathroomLight";
    case EnergyChannel::kKitchenLight:
      return "KitchenLight";
    case EnergyChannel::kChildrenRoomLight:
      return "ChildrenRoomLight";
    case EnergyChannel::kLivingRoomLight:
      return "LivingRoomLight";
  }
  return "Unknown";
}

namespace {

// A smooth random event profile: positive random walk around `base` with
// soft clipping, so the follower replay carries real information.
std::vector<double> EventProfile(int64_t duration, double base, Rng& rng) {
  std::vector<double> p(static_cast<size_t>(duration));
  double level = base;
  for (int64_t i = 0; i < duration; ++i) {
    level += rng.Normal(0.0, base * 0.15);
    level = std::clamp(level, base * 0.3, base * 2.0);
    p[static_cast<size_t>(i)] = level;
  }
  return p;
}

// Writes leader[start .. start+dur) += profile and
// follower[start+lag .. ) += gain * profile + noise.
void AddLaggedEvent(std::vector<double>* leader, std::vector<double>* follower,
                    int64_t start, int64_t duration, int64_t lag, double base,
                    double gain, Rng& rng) {
  const int64_t n = static_cast<int64_t>(leader->size());
  if (start < 0 || duration < 1) return;
  const std::vector<double> profile = EventProfile(duration, base, rng);
  for (int64_t i = 0; i < duration; ++i) {
    const int64_t li = start + i;
    const int64_t fi = start + lag + i;
    if (li >= 0 && li < n) {
      (*leader)[static_cast<size_t>(li)] += profile[static_cast<size_t>(i)];
    }
    if (fi >= 0 && fi < n) {
      (*follower)[static_cast<size_t>(fi)] +=
          gain * profile[static_cast<size_t>(i)] +
          rng.Normal(0.0, base * 0.05);
    }
  }
}

}  // namespace

EnergySimulator::EnergySimulator(const EnergySimOptions& options)
    : options_(options) {
  TYCOS_CHECK_GE(options_.days, 1);
  TYCOS_CHECK_GE(options_.samples_per_hour, 1);
  const int64_t per_hour = options_.samples_per_hour;
  const int64_t per_day = 24 * per_hour;
  length_ = per_day * options_.days;

  Rng rng(options_.seed);
  std::vector<std::vector<double>> ch(
      kNumEnergyChannels, std::vector<double>(static_cast<size_t>(length_)));

  // Standby noise floor on every channel.
  for (auto& c : ch) {
    for (double& v : c) v = std::fabs(rng.Normal(0.02, 0.01));
  }

  auto minutes = [per_hour](double mins) {
    return static_cast<int64_t>(
        std::llround(mins * static_cast<double>(per_hour) / 60.0));
  };
  auto at = [&](int day, double hour) {
    return static_cast<int64_t>(day) * per_day +
           static_cast<int64_t>(
               std::llround(hour * static_cast<double>(per_hour)));
  };
  auto& kitchen = ch[static_cast<int>(EnergyChannel::kKitchen)];
  auto& dish = ch[static_cast<int>(EnergyChannel::kDishWasher)];
  auto& micro = ch[static_cast<int>(EnergyChannel::kMicrowave)];
  auto& washer = ch[static_cast<int>(EnergyChannel::kClothesWasher)];
  auto& dryer = ch[static_cast<int>(EnergyChannel::kDryer)];
  auto& bath_l = ch[static_cast<int>(EnergyChannel::kBathroomLight)];
  auto& kitchen_l = ch[static_cast<int>(EnergyChannel::kKitchenLight)];
  auto& child_l = ch[static_cast<int>(EnergyChannel::kChildrenRoomLight)];
  auto& living_l = ch[static_cast<int>(EnergyChannel::kLivingRoomLight)];

  for (int day = 0; day < options_.days; ++day) {
    // C1/C2: evening cooking (16–19 h); the dishwasher replays 0–4 h later,
    // the microwave assists within the hour.
    {
      const int64_t start = at(day, 16.0 + rng.Uniform(0.0, 2.0));
      const int64_t dur = minutes(rng.Uniform(60.0, 120.0));
      const int64_t dish_lag = minutes(rng.Uniform(0.0, 240.0));
      AddLaggedEvent(&kitchen, &dish, start, dur, dish_lag, 1.2, 0.8, rng);
      const int64_t micro_lag = minutes(rng.Uniform(0.0, 60.0));
      AddLaggedEvent(&kitchen, &micro, start,
                     std::min<int64_t>(dur, minutes(30)), micro_lag, 0.9, 0.7,
                     rng);
    }
    // C3: laundry roughly every other day; dryer follows 10–30 min after.
    if (rng.Bernoulli(0.5)) {
      const int64_t start = at(day, 10.0 + rng.Uniform(0.0, 6.0));
      const int64_t dur = minutes(rng.Uniform(45.0, 75.0));
      const int64_t lag = dur + minutes(rng.Uniform(10.0, 30.0));
      AddLaggedEvent(&washer, &dryer, start, dur, lag, 0.9, 0.9, rng);
    }
    // C4/C5: morning routine — bathroom light, then the kitchen light 1–5
    // minutes later, then the microwave within 2 minutes.
    {
      const int64_t start = at(day, 6.0 + rng.Uniform(0.0, 0.75));
      const int64_t dur = minutes(rng.Uniform(15.0, 30.0));
      const int64_t kl_lag = minutes(rng.Uniform(1.0, 5.0));
      AddLaggedEvent(&bath_l, &kitchen_l, start, dur, kl_lag, 0.12, 0.9, rng);
      const int64_t mw_lag = minutes(rng.Uniform(0.0, 2.0));
      AddLaggedEvent(&kitchen_l, &micro, start + kl_lag,
                     std::min<int64_t>(dur, minutes(15)), mw_lag, 0.1, 6.0,
                     rng);
    }
    // C6: children's room light in the evening; living room 15–40 min later.
    {
      const int64_t start = at(day, 19.5 + rng.Uniform(0.0, 1.0));
      const int64_t dur = minutes(rng.Uniform(30.0, 60.0));
      const int64_t lag = minutes(rng.Uniform(15.0, 40.0));
      AddLaggedEvent(&child_l, &living_l, start, dur, lag, 0.1, 0.9, rng);
    }
  }

  channels_.reserve(kNumEnergyChannels);
  for (int c = 0; c < kNumEnergyChannels; ++c) {
    channels_.emplace_back(std::move(ch[static_cast<size_t>(c)]),
                           EnergyChannelName(static_cast<EnergyChannel>(c)));
  }
}

const TimeSeries& EnergySimulator::Channel(EnergyChannel c) const {
  return channels_[static_cast<size_t>(c)];
}

SeriesPair EnergySimulator::Pair(EnergyChannel leader,
                                 EnergyChannel follower) const {
  return SeriesPair(Channel(leader), Channel(follower));
}

}  // namespace datagen
}  // namespace tycos
