#include "datagen/smart_city_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tycos {
namespace datagen {

const char* CityChannelName(CityChannel c) {
  switch (c) {
    case CityChannel::kPrecipitation:
      return "Precipitation";
    case CityChannel::kWindSpeed:
      return "WindSpeed";
    case CityChannel::kSnow:
      return "Snow";
    case CityChannel::kCollisions:
      return "Collisions";
    case CityChannel::kPedestrianInjured:
      return "PedestrianInjured";
    case CityChannel::kMotoristKilled:
      return "MotoristKilled";
    case CityChannel::kCyclistInjured:
      return "CyclistInjured";
  }
  return "Unknown";
}

namespace {

// Adds a weather event: a ragged triangular intensity burst.
void AddBurst(std::vector<double>* series, int64_t start, int64_t duration,
              double peak, Rng& rng) {
  const int64_t n = static_cast<int64_t>(series->size());
  for (int64_t i = 0; i < duration; ++i) {
    const int64_t t = start + i;
    if (t < 0 || t >= n) continue;
    const double frac = static_cast<double>(i) / static_cast<double>(duration);
    const double envelope = frac < 0.3 ? frac / 0.3 : (1.0 - frac) / 0.7;
    const double v = peak * std::max(0.0, envelope) *
                     (0.7 + 0.6 * rng.Uniform(0.0, 1.0));
    (*series)[static_cast<size_t>(t)] += v;
  }
}

}  // namespace

SmartCitySimulator::SmartCitySimulator(const SmartCitySimOptions& options)
    : options_(options) {
  TYCOS_CHECK_GE(options_.days, 1);
  TYCOS_CHECK_GE(options_.samples_per_hour, 1);
  const int64_t per_hour = options_.samples_per_hour;
  const int64_t per_day = 24 * per_hour;
  length_ = per_day * options_.days;

  Rng rng(options_.seed);
  std::vector<double> precip(static_cast<size_t>(length_), 0.0);
  std::vector<double> wind(static_cast<size_t>(length_), 0.0);
  std::vector<double> snow(static_cast<size_t>(length_), 0.0);

  // Baseline breeze.
  for (double& v : wind) v = std::fabs(rng.Normal(2.0, 0.8));

  auto hours = [per_hour](double h) {
    return static_cast<int64_t>(
        std::llround(h * static_cast<double>(per_hour)));
  };

  // Weather events: ~1.2 rain showers, ~0.8 wind storms, ~0.4 snowfalls per
  // day on average, at random times.
  const int rain_events = std::max(1, static_cast<int>(options_.days * 1.2));
  const int wind_events = std::max(1, static_cast<int>(options_.days * 0.8));
  const int snow_events = std::max(1, static_cast<int>(options_.days * 0.4));
  for (int e = 0; e < rain_events; ++e) {
    AddBurst(&precip, rng.UniformInt(0, length_ - 1),
             hours(rng.Uniform(1.0, 5.0)), rng.Uniform(2.0, 8.0), rng);
  }
  for (int e = 0; e < wind_events; ++e) {
    AddBurst(&wind, rng.UniformInt(0, length_ - 1),
             hours(rng.Uniform(2.0, 8.0)), rng.Uniform(6.0, 15.0), rng);
  }
  for (int e = 0; e < snow_events; ++e) {
    AddBurst(&snow, rng.UniformInt(0, length_ - 1),
             hours(rng.Uniform(3.0, 10.0)), rng.Uniform(1.0, 4.0), rng);
  }

  // Per-event lags (constant within an event scale, drawn once per series
  // pair relation): precipitation impacts 0.5–2 h later, wind 0.25–1 h.
  const int64_t rain_lag = hours(rng.Uniform(0.5, 2.0));
  const int64_t wind_lag = hours(rng.Uniform(0.25, 1.0));
  const int64_t snow_lag = hours(rng.Uniform(0.5, 2.0));

  auto lagged = [&](const std::vector<double>& src, int64_t t, int64_t lag) {
    const int64_t i = t - lag;
    return (i >= 0 && i < length_) ? src[static_cast<size_t>(i)] : 0.0;
  };

  // Incident counts: Poisson around a nonlinear (saturating) response to
  // lagged weather, on top of a diurnal baseline.
  std::vector<double> collisions(static_cast<size_t>(length_));
  std::vector<double> pedestrian(static_cast<size_t>(length_));
  std::vector<double> motorist(static_cast<size_t>(length_));
  std::vector<double> cyclist(static_cast<size_t>(length_));
  for (int64_t t = 0; t < length_; ++t) {
    const double hour_of_day =
        static_cast<double>(t % per_day) / static_cast<double>(per_hour);
    const double diurnal =
        1.5 + std::sin((hour_of_day - 6.0) / 24.0 * 2.0 * M_PI);
    const double rain = lagged(precip, t, rain_lag);
    const double gust = lagged(wind, t, wind_lag);
    const double flake = lagged(snow, t, snow_lag);

    // Saturating nonlinear responses.
    const double rain_effect = 6.0 * rain * rain / (4.0 + rain * rain);
    const double wind_effect = 5.0 * gust * gust / (60.0 + gust * gust);
    const double snow_effect = 5.0 * flake * flake / (2.0 + flake * flake);

    collisions[static_cast<size_t>(t)] = static_cast<double>(rng.Poisson(
        diurnal + 2.0 * rain_effect + 1.6 * wind_effect + snow_effect));
    pedestrian[static_cast<size_t>(t)] = static_cast<double>(
        rng.Poisson(0.4 * diurnal + 1.6 * rain_effect + 0.2 * wind_effect));
    motorist[static_cast<size_t>(t)] = static_cast<double>(
        rng.Poisson(0.2 * diurnal + 0.2 * rain_effect + 1.4 * wind_effect));
    cyclist[static_cast<size_t>(t)] = static_cast<double>(
        rng.Poisson(0.2 * diurnal + 0.5 * rain_effect + 1.0 * wind_effect));
  }

  channels_.reserve(kNumCityChannels);
  auto add = [&](std::vector<double>&& v, CityChannel c) {
    channels_.emplace_back(std::move(v), CityChannelName(c));
  };
  add(std::move(precip), CityChannel::kPrecipitation);
  add(std::move(wind), CityChannel::kWindSpeed);
  add(std::move(snow), CityChannel::kSnow);
  add(std::move(collisions), CityChannel::kCollisions);
  add(std::move(pedestrian), CityChannel::kPedestrianInjured);
  add(std::move(motorist), CityChannel::kMotoristKilled);
  add(std::move(cyclist), CityChannel::kCyclistInjured);
}

const TimeSeries& SmartCitySimulator::Channel(CityChannel c) const {
  return channels_[static_cast<size_t>(c)];
}

SeriesPair SmartCitySimulator::Pair(CityChannel leader,
                                    CityChannel follower) const {
  return SeriesPair(Channel(leader), Channel(follower));
}

}  // namespace datagen
}  // namespace tycos
