// Simulated residential plug-load data standing in for the NIST Net-Zero
// energy dataset [1] of the paper (see DESIGN.md, substitution 1). Generates
// per-channel power series whose cross-channel lags are the correlations
// Table 3 reports:
//
//   C1 Kitchen → DishWasher        lag 0–4 h     (evening cooking + cleanup)
//   C2 Kitchen → Microwave         lag 0–1 h
//   C3 ClothesWasher → Dryer       lag 10–30 min
//   C4 BathroomLight → KitchenLight lag 1–5 min  (morning routine)
//   C5 KitchenLight → Microwave    lag 0–2 min
//   C6 ChildrenRoomLight → LivingRoomLight lag 15–40 min
//
// A follower channel replays the leader's (random-walk) event profile at the
// lag with gain and noise, planting a genuine lagged functional dependency
// rather than mere co-occurrence.

#ifndef TYCOS_DATAGEN_ENERGY_SIM_H_
#define TYCOS_DATAGEN_ENERGY_SIM_H_

#include <cstdint>
#include <vector>

#include "core/time_series.h"

namespace tycos {
namespace datagen {

enum class EnergyChannel {
  kKitchen = 0,
  kDishWasher,
  kMicrowave,
  kClothesWasher,
  kDryer,
  kBathroomLight,
  kKitchenLight,
  kChildrenRoomLight,
  kLivingRoomLight,
};
inline constexpr int kNumEnergyChannels = 9;

const char* EnergyChannelName(EnergyChannel c);

struct EnergySimOptions {
  int days = 14;
  int samples_per_hour = 12;  // 5-minute resolution, like the NIST minutes
  uint64_t seed = 7;
};

class EnergySimulator {
 public:
  explicit EnergySimulator(const EnergySimOptions& options);

  int64_t length() const { return length_; }
  int samples_per_hour() const { return options_.samples_per_hour; }

  const TimeSeries& Channel(EnergyChannel c) const;

  // Convenience: the (leader, follower) pair for a Table 3 row.
  SeriesPair Pair(EnergyChannel leader, EnergyChannel follower) const;

 private:
  EnergySimOptions options_;
  int64_t length_;
  std::vector<TimeSeries> channels_;
};

}  // namespace datagen
}  // namespace tycos

#endif  // TYCOS_DATAGEN_ENERGY_SIM_H_
