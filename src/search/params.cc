#include "search/params.h"

namespace tycos {

Status TycosParams::Validate(int64_t series_length) const {
  const Status shape = ValidateShape();
  if (!shape.ok()) return shape;
  if (s_max > series_length) {
    return Status::InvalidArgument("s_max exceeds the series length");
  }
  if (td_max >= series_length) {
    return Status::InvalidArgument("td_max must be < series length");
  }
  return Status::Ok();
}

Status TycosParams::ValidateShape() const {
  if (sigma <= 0.0 || sigma > 1.0) {
    return Status::InvalidArgument("sigma must be in (0, 1]");
  }
  if (epsilon_ratio < 0.0 || epsilon_ratio >= 1.0) {
    return Status::InvalidArgument("epsilon_ratio must be in [0, 1)");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (s_min < k + 2) {
    return Status::InvalidArgument(
        "s_min must be >= k + 2 so the KSG estimator is defined");
  }
  if (s_min > s_max) return Status::InvalidArgument("s_min > s_max");
  if (td_max < 0) return Status::InvalidArgument("td_max must be >= 0");
  if (delta < 1) return Status::InvalidArgument("delta must be >= 1");
  if (initial_delay_step < 0) {
    return Status::InvalidArgument("initial_delay_step must be >= 0");
  }
  if (history_length < 1) {
    return Status::InvalidArgument("history_length must be >= 1");
  }
  if (max_idle < 1) return Status::InvalidArgument("max_idle must be >= 1");
  if (max_neighborhood_level < 1) {
    return Status::InvalidArgument("max_neighborhood_level must be >= 1");
  }
  if (top_k < 0) return Status::InvalidArgument("top_k must be >= 0");
  if (num_restarts < 0) {
    return Status::InvalidArgument("num_restarts must be >= 0");
  }
  if (tie_jitter < 0.0) {
    return Status::InvalidArgument("tie_jitter must be >= 0");
  }
  if (small_sample_penalty < 0.0) {
    return Status::InvalidArgument("small_sample_penalty must be >= 0");
  }
  if (theiler_window < 0) {
    return Status::InvalidArgument("theiler_window must be >= 0");
  }
  if (theiler_window > 0 && s_min < 2 * theiler_window + k + 3) {
    return Status::InvalidArgument(
        "s_min too small for the Theiler window: need s_min >= "
        "2*theiler_window + k + 3 eligible samples");
  }
  return Status::Ok();
}

}  // namespace tycos
