#include "search/brute_force_search.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mi/ksg.h"
#include "search/evaluator.h"

namespace tycos {

namespace {

SeriesPair PreparePair(const SeriesPair& pair, const TycosParams& params) {
  if (params.tie_jitter <= 0.0) return pair;
  std::vector<double> xs = pair.x().values();
  std::vector<double> ys = pair.y().values();
  internal::ApplyTieJitter(&xs, params.tie_jitter, /*salt=*/1);
  internal::ApplyTieJitter(&ys, params.tie_jitter, /*salt=*/2);
  return SeriesPair(TimeSeries(std::move(xs), pair.x().name()),
                    TimeSeries(std::move(ys), pair.y().name()));
}

Status ValidateForSearch(const SeriesPair& pair, const TycosParams& params) {
  Status st = params.Validate(pair.size());
  if (!st.ok()) return st;
  st = pair.x().Validate();
  if (!st.ok()) return st;
  return pair.y().Validate();
}

}  // namespace

BruteForceSearch::BruteForceSearch(Validated, const SeriesPair& pair,
                                   const TycosParams& params,
                                   bool use_incremental_mi)
    : pair_(PreparePair(pair, params)),
      params_(params),
      use_incremental_mi_(use_incremental_mi) {}

BruteForceSearch::BruteForceSearch(const SeriesPair& pair,
                                   const TycosParams& params,
                                   bool use_incremental_mi)
    : BruteForceSearch(
          [&] {
            const Status st = ValidateForSearch(pair, params);
            if (!st.ok()) {
              std::fprintf(stderr, "BruteForceSearch: invalid input: %s\n",
                           st.ToString().c_str());
            }
            TYCOS_CHECK(st.ok());
            return Validated{};
          }(),
          pair, params, use_incremental_mi) {}

Result<std::unique_ptr<BruteForceSearch>> BruteForceSearch::Create(
    const SeriesPair& pair, const TycosParams& params,
    bool use_incremental_mi) {
  const Status st = ValidateForSearch(pair, params);
  if (!st.ok()) return st;
  return std::unique_ptr<BruteForceSearch>(
      new BruteForceSearch(Validated{}, pair, params, use_incremental_mi));
}

int64_t BruteForceSearch::CountFeasibleWindows() const {
  const int64_t n = pair_.size();
  int64_t count = 0;
  for (int64_t tau = -params_.td_max; tau <= params_.td_max; ++tau) {
    const int64_t start_lo = std::max<int64_t>(0, -tau);
    const int64_t end_cap = std::min(n - 1, n - 1 - tau);
    for (int64_t start = start_lo; start + params_.s_min - 1 <= end_cap;
         ++start) {
      const int64_t end_hi = std::min(start + params_.s_max - 1, end_cap);
      const int64_t end_lo = start + params_.s_min - 1;
      if (end_hi >= end_lo) count += end_hi - end_lo + 1;
    }
  }
  return count;
}

BruteForceResult BruteForceSearch::Run() {
  // The no-limit context never stops a run, so the Result is always ok.
  return std::move(Run(RunContext::None()).value());
}

Result<BruteForceResult> BruteForceSearch::Run(const RunContext& ctx) {
  BruteForceResult result;
  std::unique_ptr<WindowEvaluator> evaluator;
  if (use_incremental_mi_ && params_.theiler_window == 0) {
    // Threshold 0: unlike the LAHC search, the scanline enumeration visits
    // perfectly overlapping windows back to back, so even tiny windows are
    // cheaper through the incremental state.
    evaluator = std::make_unique<IncrementalEvaluator>(
        pair_, params_, /*small_window_threshold=*/0);
  } else {
    evaluator = std::make_unique<BatchEvaluator>(pair_, params_);
  }

  const int64_t n = pair_.size();
  std::optional<StopReason> stop;
  // Scanline order (delay, start, ascending end) maximizes overlap between
  // consecutive windows for the incremental estimator: each step is a
  // single AddPoint.
  for (int64_t tau = -params_.td_max; tau <= params_.td_max && !stop; ++tau) {
    const int64_t start_lo = std::max<int64_t>(0, -tau);
    const int64_t end_cap = std::min(n - 1, n - 1 - tau);
    for (int64_t start = start_lo; start + params_.s_min - 1 <= end_cap;
         ++start) {
      // Scanline-boundary poll: one scanline is at most s_max - s_min + 1
      // evaluations, bounding how late a fired limit is noticed.
      if ((stop = ctx.ShouldStop(result.windows_evaluated))) break;
      const int64_t end_hi = std::min(start + params_.s_max - 1, end_cap);
      for (int64_t end = start + params_.s_min - 1; end <= end_hi; ++end) {
        Window w(start, end, tau);
        w.mi = evaluator->Score(w);
        if (!std::isfinite(w.mi)) {
          ++result.non_finite_scores;
          w.mi = 0.0;
        }
        ++result.windows_evaluated;
        if (w.mi >= params_.sigma) result.raw.push_back(w);
      }
    }
  }
  result.merged = MergeOverlapping(result.raw);
  result.partial = stop.has_value();
  result.stop_reason = stop.value_or(StopReason::kCompleted);
  return result;
}

}  // namespace tycos
