#include "search/brute_force_search.h"

#include <algorithm>
#include <memory>

#include "mi/ksg.h"
#include "search/evaluator.h"

namespace tycos {

namespace {

SeriesPair PreparePair(const SeriesPair& pair, const TycosParams& params) {
  if (params.tie_jitter <= 0.0) return pair;
  std::vector<double> xs = pair.x().values();
  std::vector<double> ys = pair.y().values();
  internal::ApplyTieJitter(&xs, params.tie_jitter, /*salt=*/1);
  internal::ApplyTieJitter(&ys, params.tie_jitter, /*salt=*/2);
  return SeriesPair(TimeSeries(std::move(xs), pair.x().name()),
                    TimeSeries(std::move(ys), pair.y().name()));
}

}  // namespace

BruteForceSearch::BruteForceSearch(const SeriesPair& pair,
                                   const TycosParams& params,
                                   bool use_incremental_mi)
    : pair_(PreparePair(pair, params)),
      params_(params),
      use_incremental_mi_(use_incremental_mi) {
  TYCOS_CHECK(params_.Validate(pair_.size()).ok());
}

int64_t BruteForceSearch::CountFeasibleWindows() const {
  const int64_t n = pair_.size();
  int64_t count = 0;
  for (int64_t tau = -params_.td_max; tau <= params_.td_max; ++tau) {
    const int64_t start_lo = std::max<int64_t>(0, -tau);
    const int64_t end_cap = std::min(n - 1, n - 1 - tau);
    for (int64_t start = start_lo; start + params_.s_min - 1 <= end_cap;
         ++start) {
      const int64_t end_hi = std::min(start + params_.s_max - 1, end_cap);
      const int64_t end_lo = start + params_.s_min - 1;
      if (end_hi >= end_lo) count += end_hi - end_lo + 1;
    }
  }
  return count;
}

BruteForceResult BruteForceSearch::Run() {
  BruteForceResult result;
  std::unique_ptr<WindowEvaluator> evaluator;
  if (use_incremental_mi_ && params_.theiler_window == 0) {
    // Threshold 0: unlike the LAHC search, the scanline enumeration visits
    // perfectly overlapping windows back to back, so even tiny windows are
    // cheaper through the incremental state.
    evaluator = std::make_unique<IncrementalEvaluator>(
        pair_, params_, /*small_window_threshold=*/0);
  } else {
    evaluator = std::make_unique<BatchEvaluator>(pair_, params_);
  }

  const int64_t n = pair_.size();
  // Scanline order (delay, start, ascending end) maximizes overlap between
  // consecutive windows for the incremental estimator: each step is a
  // single AddPoint.
  for (int64_t tau = -params_.td_max; tau <= params_.td_max; ++tau) {
    const int64_t start_lo = std::max<int64_t>(0, -tau);
    const int64_t end_cap = std::min(n - 1, n - 1 - tau);
    for (int64_t start = start_lo; start + params_.s_min - 1 <= end_cap;
         ++start) {
      const int64_t end_hi = std::min(start + params_.s_max - 1, end_cap);
      for (int64_t end = start + params_.s_min - 1; end <= end_hi; ++end) {
        Window w(start, end, tau);
        w.mi = evaluator->Score(w);
        ++result.windows_evaluated;
        if (w.mi >= params_.sigma) result.raw.push_back(w);
      }
    }
  }
  result.merged = MergeOverlapping(result.raw);
  return result;
}

}  // namespace tycos
