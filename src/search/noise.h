// The MI-based noise theory of Section 6: initial noise pruning (Fig. 7)
// that finds a promising starting window, and the subsequent noise test
// (Definition 6.4) that masks unpromising extension directions during the
// climb.

#ifndef TYCOS_SEARCH_NOISE_H_
#define TYCOS_SEARCH_NOISE_H_

#include <optional>

#include "core/time_series.h"
#include "core/window.h"
#include "search/evaluator.h"
#include "search/params.h"

namespace tycos {

// Directions a climb may extend a window in. The noise test masks
// directions for the remainder of the current climb (Section 6.2.2).
struct DirectionMask {
  bool extend_end_blocked = false;    // t_e growth along +y axis
  bool extend_start_blocked = false;  // t_s growth along -x axis

  void Reset() { extend_end_blocked = extend_start_blocked = false; }
};

// Initial noise pruning (Section 6.2.1, Fig. 7).
//
// Starting at X index `from`, combines consecutive s_min blocks, discarding
// accumulations whose next block is noise (Definition 6.4), until a window
// scoring >= ε is found. When `scan_delays` is true, every block is probed
// on a coarse delay grid (step s_min, clipped to ±td_max) as well as τ = 0,
// and the best-scoring placement is used — this lets the search start in
// the basin of a delayed correlation. Returns nullopt when the rest of the
// series contains no window above ε.
std::optional<Window> InitialNoisePruning(const SeriesPair& pair,
                                          WindowEvaluator& evaluator,
                                          const TycosParams& params,
                                          int64_t from, bool scan_delays);

// Subsequent noise detection (Section 6.2.2) for the current window w.
//
// For each unblocked extension direction, evaluates the adjacent chunk w_δ
// (length max(δ, s_min)) and the concatenation w ⊙ w_δ. The direction is
// blocked when score(w_δ) < ε and score(w ⊙ w_δ) < score(w), i.e. the chunk
// is noise w.r.t. w. Returns the number of directions newly blocked.
int DetectSubsequentNoise(const SeriesPair& pair, WindowEvaluator& evaluator,
                          const TycosParams& params, const Window& w,
                          double current_score, DirectionMask* mask);

}  // namespace tycos

#endif  // TYCOS_SEARCH_NOISE_H_
