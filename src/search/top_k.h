// Top-K filtering (Section 6.3.2): maintains the K highest-scoring windows
// seen so far and exposes the dynamic correlation threshold σ (the K-th best
// score once the list fills).

#ifndef TYCOS_SEARCH_TOP_K_H_
#define TYCOS_SEARCH_TOP_K_H_

#include <vector>

#include "core/window.h"

namespace tycos {

class TopKFilter {
 public:
  explicit TopKFilter(int k);

  // Offers a scored window. Nested duplicates of an incumbent (Contains in
  // either direction) replace it only on a higher score. Returns true when
  // the window enters the list.
  bool Offer(const Window& w);

  // The dynamic σ: 0 until the list is full, then the minimum score held.
  double CurrentSigma() const;

  bool full() const { return static_cast<int>(windows_.size()) == k_; }
  const std::vector<Window>& windows() const { return windows_; }
  int k() const { return k_; }

 private:
  int k_;
  std::vector<Window> windows_;  // kept sorted by descending score
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_TOP_K_H_
