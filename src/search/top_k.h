// Top-K filtering (Section 6.3.2): maintains the K highest-scoring windows
// seen so far and exposes the dynamic correlation threshold σ (the K-th best
// score once the list fills).
//
// The retained set is non-nesting (no window Contains another) and
// insertion-order-independent: the filter remembers every offer and keeps
// the greedy selection over all of them — sorted by (score desc, start, end,
// delay), take each window that nests with no already-taken one, stop at K.
// Evicting incumbents pairwise instead (the previous implementation) made
// membership depend on arrival order: with A ⊃ B, A ⊃ C, B and C disjoint
// and scores B > A > C, offering B…A…C kept {B, C} while A…B…C kept {B}
// only — and one nested pass could even leave two nested windows in place.

#ifndef TYCOS_SEARCH_TOP_K_H_
#define TYCOS_SEARCH_TOP_K_H_

#include <vector>

#include "core/window.h"

namespace tycos {

class TopKFilter {
 public:
  explicit TopKFilter(int k);

  // Offers a scored window. Re-offers of the same (start, end, delay) keep
  // the highest score seen. Returns true when the window is in the retained
  // selection afterwards. O(offers · K) per call; offers are climb results,
  // not per-evaluation candidates, so the quadratic stays small.
  bool Offer(const Window& w);

  // The dynamic σ: 0 until the selection is full, then the minimum score
  // retained.
  double CurrentSigma() const;

  bool full() const { return static_cast<int>(selection_.size()) == k_; }
  const std::vector<Window>& windows() const { return selection_; }
  int k() const { return k_; }

 private:
  // Recomputes selection_ from offers_ (kept in selection order).
  void RebuildSelection();

  int k_;
  // Every distinct window offered, best score per window, sorted by
  // (mi desc, start, end, delay) — the deterministic selection order.
  std::vector<Window> offers_;
  std::vector<Window> selection_;  // greedy non-nesting prefix, size <= k_
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_TOP_K_H_
