#include "search/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace tycos {

namespace {

Status ValidateConfig(const TycosParams& params, int64_t effective_trigger) {
  const Status st = params.ValidateShape();
  if (!st.ok()) return st;
  if (effective_trigger < params.s_min) {
    return Status::InvalidArgument(
        "search_trigger (" + std::to_string(effective_trigger) +
        ") must be >= s_min (" + std::to_string(params.s_min) + ")");
  }
  return Status::Ok();
}

int64_t EffectiveTrigger(const TycosParams& params, int64_t search_trigger) {
  return search_trigger > 0 ? search_trigger : 2 * params.s_max;
}

}  // namespace

StreamingTycos::StreamingTycos(Validated, const TycosParams& params,
                               TycosVariant variant, uint64_t seed,
                               int64_t search_trigger, DataPolicy policy)
    : params_(params),
      variant_(variant),
      seed_(seed),
      search_trigger_(EffectiveTrigger(params, search_trigger)),
      policy_(policy) {}

StreamingTycos::StreamingTycos(const TycosParams& params, TycosVariant variant,
                               uint64_t seed, int64_t search_trigger,
                               DataPolicy policy)
    : StreamingTycos(
          [&] {
            const Status st = ValidateConfig(
                params, EffectiveTrigger(params, search_trigger));
            if (!st.ok()) {
              std::fprintf(stderr, "StreamingTycos: invalid config: %s\n",
                           st.ToString().c_str());
            }
            TYCOS_CHECK(st.ok());
            return Validated{};
          }(),
          params, variant, seed, search_trigger, policy) {}

Result<std::unique_ptr<StreamingTycos>> StreamingTycos::Create(
    const TycosParams& params, TycosVariant variant, uint64_t seed,
    int64_t search_trigger, DataPolicy policy) {
  const Status st =
      ValidateConfig(params, EffectiveTrigger(params, search_trigger));
  if (!st.ok()) return st;
  return std::unique_ptr<StreamingTycos>(new StreamingTycos(
      Validated{}, params, variant, seed, search_trigger, policy));
}

Status StreamingTycos::Append(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument(
        "stream desynchronized: x chunk has " + std::to_string(xs.size()) +
        " samples but y chunk has " + std::to_string(ys.size()));
  }
  std::vector<double> cx = xs;
  std::vector<double> cy = ys;

  switch (policy_) {
    case DataPolicy::kReject:
      for (size_t i = 0; i < cx.size(); ++i) {
        if (!std::isfinite(cx[i]) || !std::isfinite(cy[i])) {
          ++ingest_stats_.non_finite;
          return Status::InvalidArgument(
              "non-finite sample at stream position " +
              std::to_string(samples_seen_ + static_cast<int64_t>(i)) +
              " (policy: reject); chunk not buffered");
        }
      }
      break;
    case DataPolicy::kDropRow: {
      std::vector<std::vector<double>> cols;
      cols.push_back(std::move(cx));
      cols.push_back(std::move(cy));
      const Status st = SanitizeColumns(&cols, policy_, &ingest_stats_);
      if (!st.ok()) return st;
      cx = std::move(cols[0]);
      cy = std::move(cols[1]);
      break;
    }
    case DataPolicy::kInterpolate: {
      // Use the last buffered sample as left context so a gap at the chunk
      // boundary interpolates from real data instead of clamping. A
      // trailing non-finite run still clamps to the last finite value: the
      // stream cannot wait for a right neighbour that hasn't arrived.
      const bool ctx = !buffer_x_.empty();
      if (ctx) {
        cx.insert(cx.begin(), buffer_x_.back());
        cy.insert(cy.begin(), buffer_y_.back());
      }
      Status st = SanitizeValues(&cx, policy_, &ingest_stats_);
      if (st.ok()) st = SanitizeValues(&cy, policy_, &ingest_stats_);
      if (!st.ok()) {
        return Status::InvalidArgument(
            st.message() + " (chunk at stream position " +
            std::to_string(samples_seen_) + " has no finite sample to " +
            "interpolate from)");
      }
      if (ctx) {
        cx.erase(cx.begin());
        cy.erase(cy.begin());
      }
      break;
    }
  }

  buffer_x_.insert(buffer_x_.end(), cx.begin(), cx.end());
  buffer_y_.insert(buffer_y_.end(), cy.begin(), cy.end());
  samples_seen_ += static_cast<int64_t>(cx.size());
  return MaybeSearch(/*force=*/false);
}

Status StreamingTycos::Flush() { return MaybeSearch(/*force=*/true); }

Status StreamingTycos::MaybeSearch(bool force) {
  const int64_t unsearched = samples_seen_ - searched_until_;
  if (unsearched < params_.s_min) return Status::Ok();
  if (!force && unsearched < search_trigger_) return Status::Ok();

  // Windows may straddle the previous search boundary by up to s_max
  // samples and reach a further td_max into already-searched data on Y, so
  // the pass rescans that margin.
  const int64_t margin = params_.s_max + params_.td_max;
  const int64_t from = std::max<int64_t>(offset_, searched_until_ - margin);

  // Drop everything before `from`: no future window can touch it.
  const int64_t drop = from - offset_;
  if (drop > 0) {
    buffer_x_.erase(buffer_x_.begin(), buffer_x_.begin() + drop);
    buffer_y_.erase(buffer_y_.begin(), buffer_y_.begin() + drop);
    offset_ = from;
  }

  if (static_cast<int64_t>(buffer_x_.size()) < params_.s_min) {
    return Status::Ok();
  }

  // The chunk may be shorter than the configured window ceiling; clamp the
  // per-pass params so Validate holds on small tails.
  TycosParams pass = params_;
  const int64_t n = static_cast<int64_t>(buffer_x_.size());
  pass.s_max = std::min(pass.s_max, n);
  pass.td_max = std::min(pass.td_max, n - 1);
  if (pass.s_min > pass.s_max) return Status::Ok();

  const SeriesPair pair{TimeSeries(buffer_x_), TimeSeries(buffer_y_)};
  Result<std::unique_ptr<Tycos>> search = Tycos::Create(
      pair, pass, variant_, seed_ + static_cast<uint64_t>(search_passes_));
  if (!search.ok()) return search.status();
  const RunContext& ctx =
      run_context_ != nullptr ? *run_context_ : RunContext::None();
  Result<SearchOutcome> outcome = search.value()->Run(ctx);
  if (!outcome.ok()) return outcome.status();
  ++search_passes_;
  last_pass_partial_ = outcome.value().partial;
  last_stop_reason_ = outcome.value().stop_reason;

  for (Window w : outcome.value().windows.windows()) {
    // Back to global stream coordinates.
    w.start += offset_;
    w.end += offset_;
    // Windows that end strictly inside the previously searched region were
    // discoverable by an earlier pass; skipping them avoids flooding the
    // result set with near-duplicates from the rescan margin.
    if (w.end < searched_until_) continue;
    results_.Insert(w);
  }
  // Even after a partial pass the searched cursor advances: the stream
  // moves on, and last_pass_partial()/last_stop_reason() report the gap.
  searched_until_ = samples_seen_;
  return Status::Ok();
}

}  // namespace tycos
