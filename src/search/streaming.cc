#include "search/streaming.h"

#include <algorithm>

#include "common/check.h"

namespace tycos {

StreamingTycos::StreamingTycos(const TycosParams& params, TycosVariant variant,
                               uint64_t seed, int64_t search_trigger)
    : params_(params),
      variant_(variant),
      seed_(seed),
      search_trigger_(search_trigger > 0 ? search_trigger : 2 * params.s_max) {
  TYCOS_CHECK_GE(search_trigger_, params_.s_min);
}

void StreamingTycos::Append(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  TYCOS_CHECK_EQ(xs.size(), ys.size());
  buffer_x_.insert(buffer_x_.end(), xs.begin(), xs.end());
  buffer_y_.insert(buffer_y_.end(), ys.begin(), ys.end());
  samples_seen_ += static_cast<int64_t>(xs.size());
  MaybeSearch(/*force=*/false);
}

void StreamingTycos::Flush() { MaybeSearch(/*force=*/true); }

void StreamingTycos::MaybeSearch(bool force) {
  const int64_t unsearched = samples_seen_ - searched_until_;
  if (unsearched < params_.s_min) return;
  if (!force && unsearched < search_trigger_) return;

  // Windows may straddle the previous search boundary by up to s_max
  // samples and reach a further td_max into already-searched data on Y, so
  // the pass rescans that margin.
  const int64_t margin = params_.s_max + params_.td_max;
  const int64_t from = std::max<int64_t>(offset_, searched_until_ - margin);

  // Drop everything before `from`: no future window can touch it.
  const int64_t drop = from - offset_;
  if (drop > 0) {
    buffer_x_.erase(buffer_x_.begin(), buffer_x_.begin() + drop);
    buffer_y_.erase(buffer_y_.begin(), buffer_y_.begin() + drop);
    offset_ = from;
  }

  if (static_cast<int64_t>(buffer_x_.size()) < params_.s_min) return;

  // The chunk may be shorter than the configured window ceiling; clamp the
  // per-pass params so Validate holds on small tails.
  TycosParams pass = params_;
  const int64_t n = static_cast<int64_t>(buffer_x_.size());
  pass.s_max = std::min(pass.s_max, n);
  pass.td_max = std::min(pass.td_max, n - 1);
  if (pass.s_min > pass.s_max) return;

  const SeriesPair pair{TimeSeries(buffer_x_), TimeSeries(buffer_y_)};
  Tycos search(pair, pass, variant_,
               seed_ + static_cast<uint64_t>(search_passes_));
  const WindowSet found = search.Run();
  ++search_passes_;

  for (Window w : found.windows()) {
    // Back to global stream coordinates.
    w.start += offset_;
    w.end += offset_;
    // Windows that end strictly inside the previously searched region were
    // discoverable by an earlier pass; skipping them avoids flooding the
    // result set with near-duplicates from the rescan margin.
    if (w.end < searched_until_) continue;
    results_.Insert(w);
  }
  searched_until_ = samples_seen_;
}

}  // namespace tycos
