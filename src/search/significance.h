// Surrogate-based significance testing for extracted windows.
//
// The correlation threshold σ is a point estimate cutoff; for borderline
// windows (short, noisy, or autocorrelated data) a calibrated answer to
// "could this MI arise with no cross-dependence at all?" is more useful.
// The standard time-series surrogate applies: circularly shift the window's
// Y samples by random offsets — marginal distribution and serial structure
// are preserved exactly, cross-dependence at the window's alignment is
// destroyed — and compare the observed MI against the surrogate
// distribution.

#ifndef TYCOS_SEARCH_SIGNIFICANCE_H_
#define TYCOS_SEARCH_SIGNIFICANCE_H_

#include <cstdint>

#include "core/time_series.h"
#include "core/window_set.h"
#include "mi/ksg.h"

namespace tycos {

struct SignificanceOptions {
  // Number of circular-shift surrogates. The smallest achievable p-value is
  // 1 / (permutations + 1).
  int permutations = 99;
  uint64_t seed = 7;
  // Minimum circular shift, as a fraction of the window size, so surrogates
  // do not stay nearly aligned with the original.
  double min_shift_fraction = 0.1;
  KsgOptions ksg;
};

// One-sided permutation p-value for the window's MI: the add-one estimate
// (1 + #{surrogate MI >= observed}) / (1 + permutations).
double WindowPValue(const SeriesPair& pair, const Window& w,
                    const SignificanceOptions& options = {});

// Keeps the windows whose p-value is <= alpha; each kept window's MI field
// is left untouched.
WindowSet FilterSignificant(const SeriesPair& pair, const WindowSet& windows,
                            double alpha,
                            const SignificanceOptions& options = {});

}  // namespace tycos

#endif  // TYCOS_SEARCH_SIGNIFICANCE_H_
