#include "search/evaluator.h"

#include <algorithm>
#include <cmath>

#include "mi/entropy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tycos {

namespace {

// Publishes `now - *flushed` on `counter` and advances the watermark.
// Skipping the zero-delta case keeps a flush on an idle evaluator free.
void FlushCounterDelta(obs::Counter* counter, int64_t now, int64_t* flushed) {
  if (now == *flushed) return;
  counter->Add(now - *flushed);
  *flushed = now;
}

obs::Counter* MiEvaluationsCounter() {
  static obs::Counter* c = obs::GetCounter("mi.evaluations");
  return c;
}

obs::Counter* MiDegenerateCounter() {
  static obs::Counter* c = obs::GetCounter("mi.degenerate_windows");
  return c;
}

// Packs (start, end, delay) into one 64-bit key. 21 bits per field supports
// series up to 2^21 (~2M) samples, far beyond the search scales here.
uint64_t WindowKey(const Window& w) {
  TYCOS_CHECK_LT(w.start, int64_t{1} << 21);
  TYCOS_CHECK_LT(w.end, int64_t{1} << 21);
  TYCOS_CHECK_LT(w.delay, int64_t{1} << 20);
  TYCOS_CHECK_GT(w.delay, -(int64_t{1} << 20));
  return (static_cast<uint64_t>(w.start) << 42) |
         (static_cast<uint64_t>(w.end) << 21) |
         static_cast<uint64_t>(w.delay + (int64_t{1} << 20));
}

double NormalizeScore(double raw_mi, const SeriesPair& pair, const Window& w,
                      const TycosParams& params) {
  if (!std::isfinite(raw_mi)) return 0.0;
  if (params.small_sample_penalty > 0.0 && w.size() > 0) {
    raw_mi -=
        params.small_sample_penalty / std::sqrt(static_cast<double>(w.size()));
  }
  if (raw_mi <= 0.0) return 0.0;
  if (params.normalization == MiNormalization::kCorrelationCoefficient) {
    return std::sqrt(1.0 - std::exp(-2.0 * raw_mi));
  }
  std::vector<double> xs, ys;
  ExtractSamples(pair, w, &xs, &ys);
  const double h = HistogramJointEntropy(xs, ys);
  if (h <= 0.0) return 0.0;
  return std::clamp(raw_mi / h, 0.0, 1.0);
}

KsgOptions OptionsFrom(const TycosParams& params) {
  KsgOptions o;
  o.k = params.k;
  o.backend = params.backend;
  o.tie_jitter = 0.0;  // jitter is applied to the series once, up front
  o.theiler_window = params.theiler_window;
  return o;
}

}  // namespace

BatchEvaluator::BatchEvaluator(const SeriesPair& pair,
                               const TycosParams& params)
    : pair_(pair), params_(params) {}

double BatchEvaluator::Score(const Window& w) {
  TYCOS_SPAN("mi_batch_score");
  ++evaluations_;
  KsgOptions options = OptionsFrom(params_);
  options.diagnostics = &diagnostics_;
  const double raw = KsgMi(pair_, w, options);
  return NormalizeScore(raw, pair_, w, params_);
}

void BatchEvaluator::FlushObsCounters() {
  FlushCounterDelta(MiEvaluationsCounter(), evaluations_,
                    &flushed_evaluations_);
  FlushCounterDelta(MiDegenerateCounter(), diagnostics_.degenerate_windows,
                    &flushed_degenerate_);
}

IncrementalEvaluator::IncrementalEvaluator(const SeriesPair& pair,
                                           const TycosParams& params,
                                           int64_t small_window_threshold)
    : pair_(pair),
      params_(params),
      ksg_(pair, params.k),
      small_window_threshold_(small_window_threshold) {}

double IncrementalEvaluator::Score(const Window& w) {
  TYCOS_SPAN("mi_incremental_score");
  ++evaluations_;
  double raw;
  if (w.size() < small_window_threshold_) {
    KsgOptions options = OptionsFrom(params_);
    options.diagnostics = &diagnostics_;
    raw = KsgMi(pair_, w, options);
  } else {
    raw = ksg_.SetWindow(w);
  }
  return NormalizeScore(raw, pair_, w, params_);
}

void IncrementalEvaluator::FlushObsCounters() {
  FlushCounterDelta(MiEvaluationsCounter(), evaluations_,
                    &flushed_evaluations_);
  // degenerate_windows() spans both the stateless small-window path and the
  // incremental estimator; the ksg_ flush below covers the incremental.*
  // family only, so nothing is double counted.
  FlushCounterDelta(MiDegenerateCounter(), degenerate_windows(),
                    &flushed_degenerate_);
  ksg_.FlushObsCounters();
}

CachingEvaluator::CachingEvaluator(std::unique_ptr<WindowEvaluator> inner,
                                   size_t max_entries)
    : inner_(std::move(inner)), max_entries_(max_entries) {}

double CachingEvaluator::Score(const Window& w) {
  const uint64_t key = WindowKey(w);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  const double score = inner_->Score(w);
  if (cache_.size() >= max_entries_) cache_.clear();
  cache_.emplace(key, score);
  return score;
}

void CachingEvaluator::FlushObsCounters() {
  static obs::Counter* hits = obs::GetCounter("mi.cache_hits");
  FlushCounterDelta(hits, hits_, &flushed_hits_);
  inner_->FlushObsCounters();
}

std::unique_ptr<WindowEvaluator> MakeEvaluator(const SeriesPair& pair,
                                               const TycosParams& params,
                                               bool incremental) {
  std::unique_ptr<WindowEvaluator> core;
  if (incremental) {
    core = std::make_unique<IncrementalEvaluator>(pair, params);
  } else {
    core = std::make_unique<BatchEvaluator>(pair, params);
  }
  if (!params.cache_evaluations) return core;
  return std::make_unique<CachingEvaluator>(std::move(core));
}

}  // namespace tycos
