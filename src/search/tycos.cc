#include "search/tycos.h"

#include <algorithm>
#include <cmath>

#include "audit/audit.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/top_k.h"

namespace tycos {

const char* TycosVariantName(TycosVariant v) {
  switch (v) {
    case TycosVariant::kL:
      return "TYCOS_L";
    case TycosVariant::kLN:
      return "TYCOS_LN";
    case TycosVariant::kLM:
      return "TYCOS_LM";
    case TycosVariant::kLMN:
      return "TYCOS_LMN";
  }
  return "TYCOS_?";
}

namespace {

SeriesPair PreparePair(const SeriesPair& pair, const TycosParams& params) {
  if (params.tie_jitter <= 0.0) return pair;
  std::vector<double> xs = pair.x().values();
  std::vector<double> ys = pair.y().values();
  internal::ApplyTieJitter(&xs, params.tie_jitter, /*salt=*/1);
  internal::ApplyTieJitter(&ys, params.tie_jitter, /*salt=*/2);
  return SeriesPair(TimeSeries(std::move(xs), pair.x().name()),
                    TimeSeries(std::move(ys), pair.y().name()));
}

Status ValidateForSearch(const SeriesPair& pair, const TycosParams& params) {
  Status st = params.Validate(pair.size());
  if (!st.ok()) return st;
  st = pair.x().Validate();
  if (!st.ok()) return st;
  return pair.y().Validate();
}

// The registry counters Run(ctx) folds back into TycosStats. Resolved once;
// the registry owns the counters for the process lifetime.
struct RunCounterBindings {
  obs::Counter* climbs = obs::GetCounter("tycos.climbs");
  obs::Counter* accepted = obs::GetCounter("tycos.accepted_moves");
  obs::Counter* rejected = obs::GetCounter("tycos.rejected_moves");
  obs::Counter* noise_blocked = obs::GetCounter("tycos.noise_blocked");
  obs::Counter* non_finite = obs::GetCounter("tycos.non_finite_scores");
  obs::Counter* evaluations = obs::GetCounter("mi.evaluations");
  obs::Counter* cache_hits = obs::GetCounter("mi.cache_hits");
  obs::Counter* degenerate = obs::GetCounter("mi.degenerate_windows");
};

const RunCounterBindings& Bindings() {
  static const RunCounterBindings b;
  return b;
}

// Point-in-time values of the bound counters, for before/after run deltas.
struct RunCounterValues {
  int64_t climbs = 0;
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t noise_blocked = 0;
  int64_t non_finite = 0;
  int64_t evaluations = 0;
  int64_t cache_hits = 0;
  int64_t degenerate = 0;
};

RunCounterValues CaptureRunCounters() {
  const RunCounterBindings& b = Bindings();
  RunCounterValues v;
  v.climbs = b.climbs->Value();
  v.accepted = b.accepted->Value();
  v.rejected = b.rejected->Value();
  v.noise_blocked = b.noise_blocked->Value();
  v.non_finite = b.non_finite->Value();
  v.evaluations = b.evaluations->Value();
  v.cache_hits = b.cache_hits->Value();
  v.degenerate = b.degenerate->Value();
  return v;
}

}  // namespace

void Tycos::FlushClimbCounters(const ClimbCounters& c) {
  const RunCounterBindings& b = Bindings();
  b.climbs->Add(1);
  if (c.accepted_moves > 0) b.accepted->Add(c.accepted_moves);
  if (c.rejected_moves > 0) b.rejected->Add(c.rejected_moves);
  if (c.noise_blocked > 0) b.noise_blocked->Add(c.noise_blocked);
  if (c.non_finite_scores > 0) b.non_finite->Add(c.non_finite_scores);
  static obs::Histogram* accept_ratio = obs::GetHistogram(
      "tycos.climb_accept_ratio",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  const int64_t moves = c.accepted_moves + c.rejected_moves;
  if (moves > 0) {
    accept_ratio->Observe(static_cast<double>(c.accepted_moves) /
                          static_cast<double>(moves));
  }
}

Tycos::EvaluatorStack Tycos::BuildEvaluator() const {
  EvaluatorStack stack;
  std::unique_ptr<WindowEvaluator> core;
  // Temporal (Theiler) exclusion is only implemented in the batch
  // estimator, so it overrides the M variants' incremental evaluator.
  if (use_incremental() && params_.theiler_window == 0) {
    core = std::make_unique<IncrementalEvaluator>(pair_, params_);
  } else {
    core = std::make_unique<BatchEvaluator>(pair_, params_);
  }
  if (params_.cache_evaluations) {
    auto caching = std::make_unique<CachingEvaluator>(std::move(core));
    stack.cache = caching.get();
    stack.evaluator = std::move(caching);
  } else {
    stack.evaluator = std::move(core);
  }
  return stack;
}

Tycos::Tycos(Validated, const SeriesPair& pair, const TycosParams& params,
             TycosVariant variant, uint64_t seed)
    : pair_(PreparePair(pair, params)),
      params_(params),
      variant_(variant),
      seed_(seed),
      rng_(seed) {
  EvaluatorStack stack = BuildEvaluator();
  cache_ = stack.cache;
  evaluator_ = std::move(stack.evaluator);
}

Tycos::Tycos(const SeriesPair& pair, const TycosParams& params,
             TycosVariant variant, uint64_t seed)
    : Tycos(
          [&] {
            const Status st = ValidateForSearch(pair, params);
            if (!st.ok()) {
              std::fprintf(stderr, "Tycos: invalid input: %s\n",
                           st.ToString().c_str());
            }
            TYCOS_CHECK(st.ok());
            return Validated{};
          }(),
          pair, params, variant, seed) {}

Result<std::unique_ptr<Tycos>> Tycos::Create(const SeriesPair& pair,
                                             const TycosParams& params,
                                             TycosVariant variant,
                                             uint64_t seed) {
  const Status st = ValidateForSearch(pair, params);
  if (!st.ok()) return st;
  return std::unique_ptr<Tycos>(
      new Tycos(Validated{}, pair, params, variant, seed));
}

void Tycos::WrapEvaluatorForTest(const EvaluatorWrapper& wrap) {
  evaluator_ = wrap(std::move(evaluator_));
  // The cache (if any) now lives somewhere inside the wrapped stack; the
  // raw pointer stays valid for stats reads. Multi-restart climbs each call
  // the wrapper again on their private stack.
  test_wrapper_ = wrap;
}

double Tycos::SafeScore(const ClimbContext& cc, const Window& w) const {
  const double score = cc.evaluator->Score(w);
  if (!std::isfinite(score)) {
    ++cc.counters->non_finite_scores;
    return 0.0;
  }
  return score;
}

std::vector<Window> Tycos::GenerateNeighbors(const Window& w, int level,
                                             const DirectionMask& mask) const {
  const int64_t step = params_.delta * level;
  const int64_t offsets[3] = {-step, 0, step};
  std::vector<Window> out;
  out.reserve(26);
  for (int64_t ds : offsets) {
    for (int64_t de : offsets) {
      for (int64_t dt : offsets) {
        if (ds == 0 && de == 0 && dt == 0) continue;
        // Noise masks: a blocked end direction forbids growing t_e forward;
        // a blocked start direction forbids growing t_s backward.
        if (mask.extend_end_blocked && de > 0) continue;
        if (mask.extend_start_blocked && ds < 0) continue;
        Window nb(w.start + ds, w.end + de, w.delay + dt);
        if (!IsFeasible(nb, pair_.size(), params_.s_min, params_.s_max,
                        params_.td_max)) {
          continue;
        }
        out.push_back(nb);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    if (a.delay != b.delay) return a.delay < b.delay;
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  return out;
}

Window Tycos::Climb(const ClimbContext& cc, const Window& w0,
                    const RunContext& ctx,
                    std::optional<StopReason>* stop) const {
  TYCOS_SPAN("lahc_climb");
  Window w = w0;
  Window best_seen = w0;
  LahcHistory history(params_.history_length, w0.mi);
  DirectionMask mask;
  int idle = 0;
  int level = 1;

  while (idle < params_.max_idle) {
    if ((*stop = ctx.ShouldStop(cc.evaluator->evaluations()))) {
      return best_seen;
    }
    if (use_noise()) {
      cc.counters->noise_blocked += DetectSubsequentNoise(
          pair_, *cc.evaluator, params_, w, w.mi, &mask);
    }
    std::vector<Window> neighbors = GenerateNeighbors(w, level, mask);
    if (neighbors.empty()) {
      ++idle;
      level = std::min(level + 1, params_.max_neighborhood_level);
      continue;
    }
    Window best_nb;
    bool have_best = false;
    for (Window& nb : neighbors) {
      // Neighbourhood-boundary poll: a deadline is honored within one
      // evaluation, so best-so-far is returned promptly even when a single
      // shell is expensive.
      if ((*stop = ctx.ShouldStop(cc.evaluator->evaluations()))) {
        return best_seen;
      }
      nb.mi = SafeScore(cc, nb);
      if (!have_best || nb.mi > best_nb.mi) {
        best_nb = nb;
        have_best = true;
      }
    }
    const size_t slot = history.SampleSlot(*cc.rng);
    const double history_value = history.ValueAt(slot);
    if (best_nb.mi > history_value || best_nb.mi > w.mi) {
      // Policy 1: accept (possibly sideways/downhill through the history).
      w = best_nb;
      idle = 0;
      level = 1;
      mask.Reset();  // the local context moved; re-derive noise directions
      ++cc.counters->accepted_moves;
      if (w.mi > best_seen.mi) best_seen = w;
    } else {
      // Policy 2: no improvement in this neighbourhood; widen it.
      ++idle;
      level = std::min(level + 1, params_.max_neighborhood_level);
      ++cc.counters->rejected_moves;
    }
    if (w.mi > history.ValueAt(slot)) history.Update(slot, w.mi);
  }
  return best_seen;
}

WindowSet Tycos::Run() {
  // The no-limit context never stops a run, so the Result is always ok.
  return std::move(Run(RunContext::None()).value().windows);
}

Result<SearchOutcome> Tycos::Run(const RunContext& ctx) {
  TYCOS_SPAN("tycos_run");
  // The registry is the source of truth for work counters; stats_ is this
  // engine's view of it, maintained as the delta observed across the
  // dispatch (climbs and evaluators publish at climb/run boundaries, so the
  // counters are settled by the time the dispatch returns). Same windowing
  // caveat as the audit block below: concurrent runs in other threads can
  // inflate a delta.
  const RunCounterValues counters_before = CaptureRunCounters();
#if TYCOS_AUDIT_ENABLED
  // Surface the audit activity of this run through stats(): record the
  // process-wide registry delta across the dispatch. Concurrent runs in
  // other threads can inflate the window — acceptable for a debug-build
  // diagnostic whose zero/non-zero failure signal is what matters.
  const int64_t checks_before = audit::Registry::Instance().TotalChecks();
  const int64_t failures_before = audit::Registry::Instance().TotalFailures();
#endif
  Result<SearchOutcome> out = params_.num_restarts > 0
                                  ? RunMultiRestart(ctx)
                                  : RunSequential(ctx);
#if TYCOS_AUDIT_ENABLED
  stats_.audit_checks +=
      audit::Registry::Instance().TotalChecks() - checks_before;
  stats_.audit_failures +=
      audit::Registry::Instance().TotalFailures() - failures_before;
#endif
  const RunCounterValues counters_after = CaptureRunCounters();
  stats_.climbs += counters_after.climbs - counters_before.climbs;
  stats_.accepted_moves += counters_after.accepted - counters_before.accepted;
  stats_.rejected_moves += counters_after.rejected - counters_before.rejected;
  stats_.noise_blocked +=
      counters_after.noise_blocked - counters_before.noise_blocked;
  stats_.non_finite_scores +=
      counters_after.non_finite - counters_before.non_finite;
  stats_.mi_evaluations +=
      counters_after.evaluations - counters_before.evaluations;
  stats_.cache_hits += counters_after.cache_hits - counters_before.cache_hits;
  stats_.degenerate_windows +=
      counters_after.degenerate - counters_before.degenerate;
  if (out.ok()) {
    static obs::Gauge* last_windows =
        obs::GetGauge("tycos.last_windows_found");
    last_windows->Set(stats_.windows_found);
  }
  return out;
}

Result<SearchOutcome> Tycos::RunSequential(const RunContext& ctx) {
  SearchOutcome outcome;
  WindowSet& results = outcome.windows;
  TopKFilter top_k(params_.top_k > 0 ? params_.top_k : 1);
  const bool dynamic_sigma = params_.top_k > 0;
  const int64_t n = pair_.size();

  std::optional<StopReason> stop;
  int64_t cursor = 0;
  while (cursor + params_.s_min <= n) {
    if ((stop = ctx.ShouldStop(evaluator_->evaluations()))) break;
    ClimbCounters counters;
    const ClimbContext cc{evaluator_.get(), &rng_, &counters};
    Window w0;
    if (use_noise()) {
      std::optional<Window> init = InitialNoisePruning(
          pair_, *evaluator_, params_, cursor, /*scan_delays=*/true);
      if (!init.has_value()) break;  // nothing above ε remains
      w0 = *init;
      if (!std::isfinite(w0.mi)) {
        ++counters.non_finite_scores;
        w0.mi = 0.0;
      }
    } else {
      w0 = Window(cursor, cursor + params_.s_min - 1, 0);
      w0.mi = SafeScore(cc, w0);
    }
    const Window w = Climb(cc, w0, ctx, &stop);
    FlushClimbCounters(counters);

    // Even when the climb was interrupted, its best-so-far window is a
    // genuinely evaluated candidate: offering it through the normal accept
    // path keeps the partial result a valid non-nested, σ-respecting set.
    bool accepted = false;
    if (dynamic_sigma) {
      accepted = top_k.Offer(w);
    } else if (w.mi >= params_.sigma) {
      accepted = results.Insert(w);
    }
    if (stop.has_value()) break;
    // Restart on the remaining data (Algorithm 1 line 21). The cursor always
    // advances by at least s_min so the scan terminates.
    const int64_t resume_after = accepted ? std::max(w.end, w0.end) : w0.end;
    cursor = std::max(cursor + params_.s_min, resume_after + 1);
  }

  if (dynamic_sigma) {
    TYCOS_SPAN("extract");
    for (const Window& w : top_k.windows()) results.Insert(w);
  }
  outcome.partial = stop.has_value();
  outcome.stop_reason = stop.value_or(StopReason::kCompleted);
  stats_.stop_reason = outcome.stop_reason;
  stats_.windows_found = static_cast<int64_t>(results.size());
  // Settle the evaluator stack's locally tallied work (mi.*, incremental.*)
  // so the caller's registry delta covers this run in full.
  evaluator_->FlushObsCounters();
  return outcome;
}

Result<SearchOutcome> Tycos::RunMultiRestart(const RunContext& ctx) {
  const int64_t n = pair_.size();
  const int restarts = params_.num_restarts;
  // Valid start cursors are [0, n - s_min]; params validation guarantees
  // s_min <= s_max <= n, so there is at least one.
  const int64_t usable = n - params_.s_min + 1;

  // Everything a climb produces, written only by the executor that claimed
  // its index and read only after the ParallelFor join. Work counters are
  // absent: each climb publishes its own tallies to the obs registry before
  // returning, and Run(ctx) folds the registry delta into stats_.
  struct ClimbResult {
    bool has_window = false;
    Window window;
    std::optional<StopReason> stop;
  };
  std::vector<ClimbResult> climbs(static_cast<size_t>(restarts));

#if TYCOS_AUDIT_ENABLED
  {
    // RNG stream-derivation audit: multi-restart determinism rests on every
    // climb owning a seed stream that (a) is reproducible from (seed, index)
    // alone and (b) never collides with a sibling climb's stream. A
    // collision would make two climbs sample identical LAHC histories; a
    // non-reproducible derivation would break bit-identity across runs.
    static audit::Auditor* rng_audit = audit::Get("rng_stream_derivation");
    std::vector<uint64_t> seeds(static_cast<size_t>(restarts));
    for (int r = 0; r < restarts; ++r) {
      const auto stream = static_cast<uint64_t>(r);
      seeds[static_cast<size_t>(r)] = DeriveStreamSeed(seed_, stream);
      TYCOS_AUDIT_CHECK(
          rng_audit,
          seeds[static_cast<size_t>(r)] == DeriveStreamSeed(seed_, stream),
          "DeriveStreamSeed not reproducible for stream " + std::to_string(r));
    }
    std::vector<uint64_t> sorted_seeds = seeds;
    std::sort(sorted_seeds.begin(), sorted_seeds.end());
    const bool distinct = std::adjacent_find(sorted_seeds.begin(),
                                             sorted_seeds.end()) ==
                          sorted_seeds.end();
    TYCOS_AUDIT_CHECK(rng_audit, distinct,
                      "seed stream collision across " +
                          std::to_string(restarts) + " restarts of seed " +
                          std::to_string(seed_));
  }
#endif

  const int threads = static_cast<int>(std::min<int64_t>(
      ThreadPool::ResolveThreadCount(params_.num_threads), restarts));
  ThreadPool pool(threads - 1);
  const ThreadPool::ForStatus fs = pool.ParallelFor(
      restarts, ctx, [&](int64_t r) -> std::optional<StopReason> {
        ClimbResult& out = climbs[static_cast<size_t>(r)];
        EvaluatorStack stack = BuildEvaluator();
        if (test_wrapper_) {
          stack.evaluator = test_wrapper_(std::move(stack.evaluator));
        }
        Rng rng(DeriveStreamSeed(seed_, static_cast<uint64_t>(r)));
        const int64_t cursor = r * usable / restarts;
        ClimbCounters counters;
        const ClimbContext cc{stack.evaluator.get(), &rng, &counters};

        Window w0;
        bool have_start = false;
        if (use_noise()) {
          std::optional<Window> init = InitialNoisePruning(
              pair_, *stack.evaluator, params_, cursor, /*scan_delays=*/true);
          if (init.has_value()) {
            w0 = *init;
            if (!std::isfinite(w0.mi)) {
              ++counters.non_finite_scores;
              w0.mi = 0.0;
            }
            have_start = true;
          }
        } else {
          w0 = Window(cursor, cursor + params_.s_min - 1, 0);
          w0.mi = SafeScore(cc, w0);
          have_start = true;
        }

        if (have_start) {
          out.window = Climb(cc, w0, ctx, &out.stop);
          out.has_window = true;
          FlushClimbCounters(counters);
        }
        // Settle this climb's evaluator stack before it is destroyed; the
        // registry sums are per-climb integers, so the run total is
        // bit-identical at any thread count.
        stack.evaluator->FlushObsCounters();
        // A per-climb budget exhausting is local (every climb carries the
        // same budget); only global limits end the whole run.
        if (out.stop == StopReason::kDeadlineExceeded ||
            out.stop == StopReason::kCancelled) {
          return out.stop;
        }
        return std::nullopt;
      });

  // Merge in climb-index order — never completion order — so the result set
  // is bit-identical at every thread count. (The registry counters need no
  // ordering: integer sums commute.)
  TYCOS_SPAN("extract");
  SearchOutcome outcome;
  TopKFilter top_k(params_.top_k > 0 ? params_.top_k : 1);
  const bool dynamic_sigma = params_.top_k > 0;
  std::optional<StopReason> stop;
  for (int64_t r = 0; r < fs.claimed; ++r) {
    const ClimbResult& c = climbs[static_cast<size_t>(r)];
    if (c.stop.has_value() && !stop.has_value()) stop = c.stop;
    if (!c.has_window) continue;
    if (dynamic_sigma) {
      top_k.Offer(c.window);
    } else if (c.window.mi >= params_.sigma) {
      outcome.windows.Insert(c.window);
    }
  }
  if (dynamic_sigma) {
    for (const Window& w : top_k.windows()) outcome.windows.Insert(w);
  }

  // Reasons recorded by climbs are taken in index order; a stop only the
  // claim-level poll observed (no climb ran into it) comes last.
  if (!stop.has_value()) stop = fs.stop;
  outcome.partial = stop.has_value() || fs.claimed < restarts;
  outcome.stop_reason = stop.value_or(StopReason::kCompleted);
  stats_.stop_reason = outcome.stop_reason;
  stats_.windows_found = static_cast<int64_t>(outcome.windows.size());
  return outcome;
}

}  // namespace tycos
