#include "search/tycos.h"

#include <algorithm>
#include <cmath>

#include "search/top_k.h"

namespace tycos {

const char* TycosVariantName(TycosVariant v) {
  switch (v) {
    case TycosVariant::kL:
      return "TYCOS_L";
    case TycosVariant::kLN:
      return "TYCOS_LN";
    case TycosVariant::kLM:
      return "TYCOS_LM";
    case TycosVariant::kLMN:
      return "TYCOS_LMN";
  }
  return "TYCOS_?";
}

namespace {

SeriesPair PreparePair(const SeriesPair& pair, const TycosParams& params) {
  if (params.tie_jitter <= 0.0) return pair;
  std::vector<double> xs = pair.x().values();
  std::vector<double> ys = pair.y().values();
  internal::ApplyTieJitter(&xs, params.tie_jitter, /*salt=*/1);
  internal::ApplyTieJitter(&ys, params.tie_jitter, /*salt=*/2);
  return SeriesPair(TimeSeries(std::move(xs), pair.x().name()),
                    TimeSeries(std::move(ys), pair.y().name()));
}

Status ValidateForSearch(const SeriesPair& pair, const TycosParams& params) {
  Status st = params.Validate(pair.size());
  if (!st.ok()) return st;
  st = pair.x().Validate();
  if (!st.ok()) return st;
  return pair.y().Validate();
}

}  // namespace

Tycos::Tycos(Validated, const SeriesPair& pair, const TycosParams& params,
             TycosVariant variant, uint64_t seed)
    : pair_(PreparePair(pair, params)),
      params_(params),
      variant_(variant),
      rng_(seed) {
  std::unique_ptr<WindowEvaluator> core;
  // Temporal (Theiler) exclusion is only implemented in the batch
  // estimator, so it overrides the M variants' incremental evaluator.
  if (use_incremental() && params_.theiler_window == 0) {
    core = std::make_unique<IncrementalEvaluator>(pair_, params_);
  } else {
    core = std::make_unique<BatchEvaluator>(pair_, params_);
  }
  if (params_.cache_evaluations) {
    auto caching = std::make_unique<CachingEvaluator>(std::move(core));
    cache_ = caching.get();
    evaluator_ = std::move(caching);
  } else {
    evaluator_ = std::move(core);
  }
}

Tycos::Tycos(const SeriesPair& pair, const TycosParams& params,
             TycosVariant variant, uint64_t seed)
    : Tycos(
          [&] {
            const Status st = ValidateForSearch(pair, params);
            if (!st.ok()) {
              std::fprintf(stderr, "Tycos: invalid input: %s\n",
                           st.ToString().c_str());
            }
            TYCOS_CHECK(st.ok());
            return Validated{};
          }(),
          pair, params, variant, seed) {}

Result<std::unique_ptr<Tycos>> Tycos::Create(const SeriesPair& pair,
                                             const TycosParams& params,
                                             TycosVariant variant,
                                             uint64_t seed) {
  const Status st = ValidateForSearch(pair, params);
  if (!st.ok()) return st;
  return std::unique_ptr<Tycos>(
      new Tycos(Validated{}, pair, params, variant, seed));
}

void Tycos::WrapEvaluatorForTest(const EvaluatorWrapper& wrap) {
  evaluator_ = wrap(std::move(evaluator_));
  // The cache (if any) now lives somewhere inside the wrapped stack; the
  // raw pointer stays valid for stats reads.
}

double Tycos::SafeScore(const Window& w) {
  const double score = evaluator_->Score(w);
  if (!std::isfinite(score)) {
    ++stats_.non_finite_scores;
    return 0.0;
  }
  return score;
}

std::vector<Window> Tycos::GenerateNeighbors(const Window& w, int level,
                                             const DirectionMask& mask) const {
  const int64_t step = params_.delta * level;
  const int64_t offsets[3] = {-step, 0, step};
  std::vector<Window> out;
  out.reserve(26);
  for (int64_t ds : offsets) {
    for (int64_t de : offsets) {
      for (int64_t dt : offsets) {
        if (ds == 0 && de == 0 && dt == 0) continue;
        // Noise masks: a blocked end direction forbids growing t_e forward;
        // a blocked start direction forbids growing t_s backward.
        if (mask.extend_end_blocked && de > 0) continue;
        if (mask.extend_start_blocked && ds < 0) continue;
        Window nb(w.start + ds, w.end + de, w.delay + dt);
        if (!IsFeasible(nb, pair_.size(), params_.s_min, params_.s_max,
                        params_.td_max)) {
          continue;
        }
        out.push_back(nb);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    if (a.delay != b.delay) return a.delay < b.delay;
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  return out;
}

Window Tycos::Climb(const Window& w0, const RunContext& ctx,
                    std::optional<StopReason>* stop) {
  Window w = w0;
  Window best_seen = w0;
  LahcHistory history(params_.history_length, w0.mi);
  DirectionMask mask;
  int idle = 0;
  int level = 1;

  while (idle < params_.max_idle) {
    if ((*stop = ctx.ShouldStop(evaluator_->evaluations()))) {
      return best_seen;
    }
    if (use_noise()) {
      stats_.noise_blocked += DetectSubsequentNoise(pair_, *evaluator_,
                                                    params_, w, w.mi, &mask);
    }
    std::vector<Window> neighbors = GenerateNeighbors(w, level, mask);
    if (neighbors.empty()) {
      ++idle;
      level = std::min(level + 1, params_.max_neighborhood_level);
      continue;
    }
    Window best_nb;
    bool have_best = false;
    for (Window& nb : neighbors) {
      // Neighbourhood-boundary poll: a deadline is honored within one
      // evaluation, so best-so-far is returned promptly even when a single
      // shell is expensive.
      if ((*stop = ctx.ShouldStop(evaluator_->evaluations()))) {
        return best_seen;
      }
      nb.mi = SafeScore(nb);
      if (!have_best || nb.mi > best_nb.mi) {
        best_nb = nb;
        have_best = true;
      }
    }
    const size_t slot = history.SampleSlot(rng_);
    const double history_value = history.ValueAt(slot);
    if (best_nb.mi > history_value || best_nb.mi > w.mi) {
      // Policy 1: accept (possibly sideways/downhill through the history).
      w = best_nb;
      idle = 0;
      level = 1;
      mask.Reset();  // the local context moved; re-derive noise directions
      ++stats_.accepted_moves;
      if (w.mi > best_seen.mi) best_seen = w;
    } else {
      // Policy 2: no improvement in this neighbourhood; widen it.
      ++idle;
      level = std::min(level + 1, params_.max_neighborhood_level);
      ++stats_.rejected_moves;
    }
    if (w.mi > history.ValueAt(slot)) history.Update(slot, w.mi);
  }
  return best_seen;
}

WindowSet Tycos::Run() {
  // The no-limit context never stops a run, so the Result is always ok.
  return std::move(Run(RunContext::None()).value().windows);
}

Result<SearchOutcome> Tycos::Run(const RunContext& ctx) {
  SearchOutcome outcome;
  WindowSet& results = outcome.windows;
  TopKFilter top_k(params_.top_k > 0 ? params_.top_k : 1);
  const bool dynamic_sigma = params_.top_k > 0;
  const int64_t n = pair_.size();

  std::optional<StopReason> stop;
  int64_t cursor = 0;
  while (cursor + params_.s_min <= n) {
    if ((stop = ctx.ShouldStop(evaluator_->evaluations()))) break;
    Window w0;
    if (use_noise()) {
      std::optional<Window> init = InitialNoisePruning(
          pair_, *evaluator_, params_, cursor, /*scan_delays=*/true);
      if (!init.has_value()) break;  // nothing above ε remains
      w0 = *init;
      if (!std::isfinite(w0.mi)) {
        ++stats_.non_finite_scores;
        w0.mi = 0.0;
      }
    } else {
      w0 = Window(cursor, cursor + params_.s_min - 1, 0);
      w0.mi = SafeScore(w0);
    }
    ++stats_.climbs;
    const Window w = Climb(w0, ctx, &stop);

    // Even when the climb was interrupted, its best-so-far window is a
    // genuinely evaluated candidate: offering it through the normal accept
    // path keeps the partial result a valid non-nested, σ-respecting set.
    bool accepted = false;
    if (dynamic_sigma) {
      accepted = top_k.Offer(w);
    } else if (w.mi >= params_.sigma) {
      accepted = results.Insert(w);
    }
    if (stop.has_value()) break;
    // Restart on the remaining data (Algorithm 1 line 21). The cursor always
    // advances by at least s_min so the scan terminates.
    const int64_t resume_after = accepted ? std::max(w.end, w0.end) : w0.end;
    cursor = std::max(cursor + params_.s_min, resume_after + 1);
  }

  if (dynamic_sigma) {
    for (const Window& w : top_k.windows()) results.Insert(w);
  }
  outcome.partial = stop.has_value();
  outcome.stop_reason = stop.value_or(StopReason::kCompleted);
  stats_.stop_reason = outcome.stop_reason;
  stats_.windows_found = static_cast<int64_t>(results.size());
  stats_.mi_evaluations = evaluator_->evaluations();
  stats_.degenerate_windows = evaluator_->degenerate_windows();
  if (cache_ != nullptr) stats_.cache_hits = cache_->cache_hits();
  return outcome;
}

}  // namespace tycos
