#include "search/fault_injector.h"

namespace tycos {

double FaultInjector::Score(const Window& w) {
  double score = inner_->Score(w);
  ++scores_served_;
  if (plan_.cancel_context != nullptr && scores_served_ == plan_.cancel_at) {
    plan_.cancel_context->RequestCancel();
    ++faults_injected_;
  }
  if (plan_.degenerate_from >= 0 && scores_served_ >= plan_.degenerate_from) {
    ++faults_injected_;
    return 0.0;
  }
  if (plan_.corrupt_every > 0 && scores_served_ % plan_.corrupt_every == 0) {
    ++faults_injected_;
    return plan_.corrupt_value;
  }
  return score;
}

}  // namespace tycos
