#include "search/fault_injector.h"

#include <string>

#include "common/rng.h"

namespace tycos {

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kTransient:
      return "transient";
    case FaultClass::kPermanent:
      return "permanent";
  }
  return "unknown";
}

namespace {

// Uniform [0, 1) draw that is a pure function of (seed, stream): one
// SplitMix64 stream derivation, top 53 bits as the mantissa.
double HashUniform(uint64_t seed, uint64_t stream) {
  const uint64_t h = DeriveStreamSeed(seed, stream);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultClass PairFaultSchedule::At(int64_t pair_index, int attempt) const {
  const uint64_t pair_u = static_cast<uint64_t>(pair_index);
  // Permanent faults are a per-pair coin so the pair fails on every attempt.
  if (spec_.permanent_rate > 0.0 &&
      HashUniform(seed_ ^ 0x9e3779b97f4a7c15ull, pair_u) <
          spec_.permanent_rate) {
    return FaultClass::kPermanent;
  }
  if (spec_.transient_rate > 0.0) {
    if (spec_.heal_at_attempt > 0 && attempt >= spec_.heal_at_attempt) {
      return FaultClass::kNone;
    }
    // Per-(pair, attempt) coin: folding the attempt into the stream keeps
    // draws independent across retries.
    const uint64_t stream =
        pair_u * 1000003u + static_cast<uint64_t>(attempt);
    if (HashUniform(seed_, stream) < spec_.transient_rate) {
      return FaultClass::kTransient;
    }
  }
  return FaultClass::kNone;
}

Status PairFaultSchedule::MakeStatus(FaultClass c, int64_t pair_index,
                                     int attempt) {
  const std::string where = "injected " + std::string(FaultClassName(c)) +
                            " fault (pair " + std::to_string(pair_index) +
                            ", attempt " + std::to_string(attempt) + ")";
  if (c == FaultClass::kTransient) return Status::Unavailable(where);
  return Status::Internal(where);
}

double FaultInjector::Score(const Window& w) {
  double score = inner_->Score(w);
  ++scores_served_;
  if (plan_.cancel_context != nullptr && scores_served_ == plan_.cancel_at) {
    plan_.cancel_context->RequestCancel();
    ++faults_injected_;
  }
  if (plan_.degenerate_from >= 0 && scores_served_ >= plan_.degenerate_from) {
    ++faults_injected_;
    return 0.0;
  }
  if (plan_.corrupt_every > 0 && scores_served_ % plan_.corrupt_every == 0) {
    ++faults_injected_;
    return plan_.corrupt_value;
  }
  return score;
}

}  // namespace tycos
