#include "search/noise.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tycos {

namespace {

// Delay candidates for placing an initial block: τ = 0 plus a grid of
// params.initial_delay_step out to ±td_max (only when scanning is
// requested).
std::vector<int64_t> DelayGrid(const TycosParams& params, bool scan_delays) {
  std::vector<int64_t> delays = {0};
  if (!scan_delays) return delays;
  // Default to exhaustive τ probing: on serially-uncorrelated data a lagged
  // correlation only lights up at its exact delay, so any coarser grid can
  // miss it outright. Autocorrelated data has wider basins; callers can
  // coarsen via initial_delay_step to trade recall for scan speed.
  const int64_t step =
      params.initial_delay_step > 0 ? params.initial_delay_step : 1;
  for (int64_t d = step; d <= params.td_max; d += step) {
    delays.push_back(d);
    delays.push_back(-d);
  }
  if (params.td_max > 0 && params.td_max % step != 0) {
    delays.push_back(params.td_max);
    delays.push_back(-params.td_max);
  }
  return delays;
}

bool FitsSeries(const Window& w, int64_t n) {
  return w.start >= 0 && w.end < n && w.y_start() >= 0 && w.y_end() < n;
}

// Best-scoring placement of the block [s, e] over the delay grid. Returns
// false when no delay keeps the block inside the series.
bool BestPlacement(const SeriesPair& pair, WindowEvaluator& evaluator,
                   const std::vector<int64_t>& delays, int64_t s, int64_t e,
                   Window* best) {
  bool found = false;
  for (int64_t tau : delays) {
    Window w(s, e, tau);
    if (!FitsSeries(w, pair.size())) continue;
    w.mi = evaluator.Score(w);
    if (!found || w.mi > best->mi) {
      *best = w;
      found = true;
    }
  }
  return found;
}

}  // namespace

std::optional<Window> InitialNoisePruning(const SeriesPair& pair,
                                          WindowEvaluator& evaluator,
                                          const TycosParams& params,
                                          int64_t from, bool scan_delays) {
  TYCOS_SPAN("noise_initial");
  static obs::Counter* scans = obs::GetCounter("noise.initial_scans");
  scans->Add(1);
  const double eps = params.epsilon();
  const int64_t n = pair.size();
  const int64_t block = params.s_min;
  // The accumulator is a bootstrap for finding a *starting point*, not the
  // final window: cap its growth independently of s_max, otherwise a long
  // noise prefix can dilute a genuine event below ε forever.
  const int64_t acc_cap =
      std::min(params.s_max, std::max<int64_t>(8 * block, 64));
  const std::vector<int64_t> delays = DelayGrid(params, scan_delays);

  std::optional<Window> acc;
  int64_t pos = std::max<int64_t>(from, 0);
  while (pos + block <= n) {
    Window b;
    if (!BestPlacement(pair, evaluator, delays, pos, pos + block - 1, &b)) {
      pos += block;
      continue;
    }
    if (b.mi >= eps) return b;  // a good start on its own

    if (!acc.has_value()) {
      acc = b;
      pos += block;
      continue;
    }

    // Concatenate the accumulated window with the new block at the
    // accumulator's delay (Definition 6.3 requires equal delays).
    Window concat(acc->start, pos + block - 1, acc->delay);
    const bool concat_ok = concat.size() <= acc_cap && FitsSeries(concat, n);
    if (!concat_ok) {
      acc = b;  // accumulator saturated; restart from the fresh block
      pos += block;
      continue;
    }
    concat.mi = evaluator.Score(concat);
    if (concat.mi >= eps) return concat;

    // Noise test (Definition 6.4): the block, aligned to the accumulator's
    // delay, is noise when it scores below ε and drags the concatenation
    // below the accumulator.
    Window b_aligned(pos, pos + block - 1, acc->delay);
    double b_aligned_score = b.mi;
    if (b.delay != acc->delay) {
      b_aligned_score =
          FitsSeries(b_aligned, n) ? evaluator.Score(b_aligned) : 0.0;
    }
    if (b_aligned_score < eps && concat.mi < acc->mi) {
      // Discard both the accumulator and the noisy block (Fig. 7 step 3.3):
      // the block seeds a fresh accumulation.
      acc = b;
    } else {
      // Fig. 7 step 2: keep the best of the three candidate windows.
      if (concat.mi >= acc->mi && concat.mi >= b.mi) {
        acc = concat;
      } else if (b.mi >= acc->mi) {
        acc = b;
      }
      // else: keep acc as is.
    }
    pos += block;
  }
  return std::nullopt;
}

int DetectSubsequentNoise(const SeriesPair& pair, WindowEvaluator& evaluator,
                          const TycosParams& params, const Window& w,
                          double current_score, DirectionMask* mask) {
  TYCOS_SPAN("noise_subsequent");
  static obs::Counter* tests = obs::GetCounter("noise.subsequent_tests");
  tests->Add(1);
  const double eps = params.epsilon();
  const int64_t n = pair.size();
  const int64_t chunk_len = std::max(params.delta, params.s_min);
  int blocked = 0;

  if (!mask->extend_end_blocked) {
    Window chunk(w.end + 1, w.end + chunk_len, w.delay);
    Window concat(w.start, w.end + chunk_len, w.delay);
    if (FitsSeries(chunk, n) && FitsSeries(concat, n) &&
        concat.size() <= params.s_max) {
      if (evaluator.Score(chunk) < eps &&
          evaluator.Score(concat) < current_score) {
        mask->extend_end_blocked = true;
        ++blocked;
      }
    }
  }
  if (!mask->extend_start_blocked) {
    Window chunk(w.start - chunk_len, w.start - 1, w.delay);
    Window concat(w.start - chunk_len, w.end, w.delay);
    if (FitsSeries(chunk, n) && FitsSeries(concat, n) &&
        concat.size() <= params.s_max) {
      if (evaluator.Score(chunk) < eps &&
          evaluator.Score(concat) < current_score) {
        mask->extend_start_blocked = true;
        ++blocked;
      }
    }
  }
  return blocked;
}

}  // namespace tycos
