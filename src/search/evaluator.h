// Window evaluators: map a time-delay window to its [0, 1] correlation score
// (normalized MI). Two implementations share one interface so every search
// variant can run with or without the Section 7 incremental computation:
//
//  * BatchEvaluator      — stateless KsgMi per window (TYCOS_L / TYCOS_LN).
//  * IncrementalEvaluator — IncrementalKsg with IR/IMR reuse
//                           (TYCOS_LM / TYCOS_LMN).
//
// CachingEvaluator wraps either with an exact memo table, since overlapping
// neighbourhood shells re-generate the same windows across iterations.

#ifndef TYCOS_SEARCH_EVALUATOR_H_
#define TYCOS_SEARCH_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/time_series.h"
#include "core/window.h"
#include "mi/incremental_ksg.h"
#include "search/params.h"

namespace tycos {

class WindowEvaluator {
 public:
  virtual ~WindowEvaluator() = default;

  // Correlation score of w in [0, 1] (normalized MI per the params'
  // normalization mode). Windows smaller than k + 2 score 0, as do
  // degenerate windows (constant marginal, non-finite samples).
  virtual double Score(const Window& w) = 0;

  // Number of MI estimations performed (cache hits excluded).
  virtual int64_t evaluations() const = 0;

  // Number of degenerate windows scored 0 by the estimator guard.
  virtual int64_t degenerate_windows() const { return 0; }

  // Publishes this evaluator's locally accumulated work counters to the
  // obs registry (mi.evaluations, mi.cache_hits, mi.degenerate_windows,
  // incremental.*) as deltas since the previous flush. Searches call it at
  // run / climb boundaries; Score() itself never touches an atomic, which
  // is what keeps the always-on metrics inside the ≤1% overhead budget.
  // Wrappers must forward to their inner evaluator.
  virtual void FlushObsCounters() {}
};

// Scores each window independently with the batch KSG estimator.
class BatchEvaluator : public WindowEvaluator {
 public:
  // `pair` must outlive the evaluator.
  BatchEvaluator(const SeriesPair& pair, const TycosParams& params);

  double Score(const Window& w) override;
  int64_t evaluations() const override { return evaluations_; }
  int64_t degenerate_windows() const override {
    return diagnostics_.degenerate_windows;
  }
  void FlushObsCounters() override;

 private:
  const SeriesPair& pair_;
  const TycosParams params_;
  KsgDiagnostics diagnostics_;
  int64_t evaluations_ = 0;
  int64_t flushed_evaluations_ = 0;
  int64_t flushed_degenerate_ = 0;
};

// Scores windows through a persistent IncrementalKsg, reusing kNN and
// marginal state across overlapping windows. Windows below
// `small_window_threshold` bypass the incremental state and are scored
// statelessly: for tiny windows a fresh O(m²) estimate is cheaper than
// maintaining IR/IMR state, and skipping them preserves the locality of the
// large-window state across interleaved small probes.
class IncrementalEvaluator : public WindowEvaluator {
 public:
  IncrementalEvaluator(const SeriesPair& pair, const TycosParams& params,
                       int64_t small_window_threshold = 96);

  double Score(const Window& w) override;
  int64_t evaluations() const override { return evaluations_; }
  int64_t degenerate_windows() const override {
    return diagnostics_.degenerate_windows + ksg_.stats().degenerate_windows;
  }
  void FlushObsCounters() override;

  const IncrementalKsgStats& incremental_stats() const {
    return ksg_.stats();
  }

 private:
  const SeriesPair& pair_;
  const TycosParams params_;
  IncrementalKsg ksg_;
  KsgDiagnostics diagnostics_;  // small-window (stateless) path counters
  int64_t small_window_threshold_;
  int64_t evaluations_ = 0;
  int64_t flushed_evaluations_ = 0;
  int64_t flushed_degenerate_ = 0;
};

// Exact memoization layer over another evaluator.
class CachingEvaluator : public WindowEvaluator {
 public:
  explicit CachingEvaluator(std::unique_ptr<WindowEvaluator> inner,
                            size_t max_entries = 1u << 20);

  double Score(const Window& w) override;
  int64_t evaluations() const override { return inner_->evaluations(); }
  int64_t degenerate_windows() const override {
    return inner_->degenerate_windows();
  }
  void FlushObsCounters() override;

  int64_t cache_hits() const { return hits_; }

 private:
  std::unique_ptr<WindowEvaluator> inner_;
  std::unordered_map<uint64_t, double> cache_;
  size_t max_entries_;
  int64_t hits_ = 0;
  int64_t flushed_hits_ = 0;
};

// Builds the evaluator stack for a search: incremental or batch core,
// optionally wrapped in a cache, honoring params.cache_evaluations.
std::unique_ptr<WindowEvaluator> MakeEvaluator(const SeriesPair& pair,
                                               const TycosParams& params,
                                               bool incremental);

}  // namespace tycos

#endif  // TYCOS_SEARCH_EVALUATOR_H_
