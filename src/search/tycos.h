// TYCOS: the LAHC-based multi-scale time-delay correlation search
// (Algorithms 1 and 2). The four paper variants are selected by TycosVariant:
//
//   kL    — plain LAHC search (Algorithm 1)
//   kLN   — + noise theory (initial noise pruning & subsequent detection)
//   kLM   — + incremental MI computation (Section 7)
//   kLMN  — both optimizations (the flagship configuration)

#ifndef TYCOS_SEARCH_TYCOS_H_
#define TYCOS_SEARCH_TYCOS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/time_series.h"
#include "core/window_set.h"
#include "search/evaluator.h"
#include "search/lahc.h"
#include "search/noise.h"
#include "search/params.h"

namespace tycos {

enum class TycosVariant { kL, kLN, kLM, kLMN };

const char* TycosVariantName(TycosVariant v);

struct TycosStats {
  int64_t climbs = 0;            // local searches (restarts included)
  int64_t accepted_moves = 0;
  int64_t rejected_moves = 0;
  int64_t noise_blocked = 0;     // directions masked by the noise test
  int64_t mi_evaluations = 0;    // estimator invocations (cache misses)
  int64_t cache_hits = 0;
  int64_t windows_found = 0;
};

class Tycos {
 public:
  // `pair` is copied (and jittered when params.tie_jitter > 0), so the
  // engine is self-contained. Params must pass Validate(pair.size()) — this
  // is CHECKed.
  Tycos(const SeriesPair& pair, const TycosParams& params,
        TycosVariant variant, uint64_t seed = 42);

  Tycos(const Tycos&) = delete;
  Tycos& operator=(const Tycos&) = delete;

  // Runs the search over the whole pair and returns the result set S of
  // non-nested windows scoring >= σ (or the top-K list when params.top_k is
  // set). Run() can be called repeatedly; each call restarts from scratch
  // with the same seed-derived RNG state continuing.
  WindowSet Run();

  const TycosStats& stats() const { return stats_; }
  const TycosParams& params() const { return params_; }
  TycosVariant variant() const { return variant_; }

 private:
  // One LAHC climb from w0; returns the best window seen.
  Window Climb(const Window& w0);

  // Feasible neighbours of w on the level-ℓ shell (offsets in
  // {-ℓδ, 0, +ℓδ} per axis, excluding the identity), honoring the noise
  // direction mask. Sorted by (delay, start, end) so the incremental
  // estimator sees maximal overlap between consecutive evaluations.
  std::vector<Window> GenerateNeighbors(const Window& w, int level,
                                        const DirectionMask& mask) const;

  bool use_noise() const {
    return variant_ == TycosVariant::kLN || variant_ == TycosVariant::kLMN;
  }
  bool use_incremental() const {
    return variant_ == TycosVariant::kLM || variant_ == TycosVariant::kLMN;
  }

  SeriesPair pair_;  // local (possibly jittered) copy
  TycosParams params_;
  TycosVariant variant_;
  Rng rng_;

  std::unique_ptr<WindowEvaluator> evaluator_;
  CachingEvaluator* cache_ = nullptr;  // view into evaluator_ when caching

  TycosStats stats_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_TYCOS_H_
