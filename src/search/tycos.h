// TYCOS: the LAHC-based multi-scale time-delay correlation search
// (Algorithms 1 and 2). The four paper variants are selected by TycosVariant:
//
//   kL    — plain LAHC search (Algorithm 1)
//   kLN   — + noise theory (initial noise pruning & subsequent detection)
//   kLM   — + incremental MI computation (Section 7)
//   kLMN  — both optimizations (the flagship configuration)

#ifndef TYCOS_SEARCH_TYCOS_H_
#define TYCOS_SEARCH_TYCOS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "core/time_series.h"
#include "core/window_set.h"
#include "search/evaluator.h"
#include "search/lahc.h"
#include "search/noise.h"
#include "search/params.h"

namespace tycos {

enum class TycosVariant { kL, kLN, kLM, kLMN };

const char* TycosVariantName(TycosVariant v);

// Per-run work summary. The counter-like fields are no longer incremented
// directly: climbs and their evaluators tally work in plain locals, publish
// to the obs metrics registry (src/obs/metrics.h) at climb/run boundaries,
// and Run(ctx) folds the registry delta observed across the dispatch into
// these fields — the registry is the source of truth and this struct is a
// per-engine view of it. Concurrent runs in other threads can inflate a
// delta (as with the audit counters below); within one run the totals are
// sums of per-climb integers, so they stay bit-identical at any thread
// count.
struct TycosStats {
  int64_t climbs = 0;            // local searches (restarts included)
  int64_t accepted_moves = 0;
  int64_t rejected_moves = 0;
  int64_t noise_blocked = 0;     // directions masked by the noise test
  int64_t mi_evaluations = 0;    // estimator invocations (cache misses)
  int64_t cache_hits = 0;
  int64_t windows_found = 0;
  int64_t non_finite_scores = 0;   // evaluator outputs sanitized to 0
  int64_t degenerate_windows = 0;  // constant/hostile windows scored 0
  // Invariant-audit counters covering this run (builds with TYCOS_AUDIT=ON
  // only; both stay 0 otherwise). The counts are the process-wide registry
  // delta observed across Run(ctx) — estimator differentials, kNN backend
  // agreement, WindowSet and thread-pool invariants, RNG stream derivation.
  // audit_failures > 0 means a correctness invariant was violated; see
  // audit::Snapshot() for the per-auditor breakdown.
  int64_t audit_checks = 0;
  int64_t audit_failures = 0;
  StopReason stop_reason = StopReason::kCompleted;  // why the last Run ended
};

// The result of a limit-aware run. When a deadline, cancellation, or budget
// stops the search early, `windows` is the best-so-far result — still a
// valid non-nested, σ-respecting WindowSet — and `partial` is true.
struct SearchOutcome {
  WindowSet windows;
  bool partial = false;
  StopReason stop_reason = StopReason::kCompleted;
};

class Tycos {
 public:
  // Graceful construction: validates params against the pair and both
  // series for finiteness, returning InvalidArgument instead of crashing on
  // hostile input.
  static Result<std::unique_ptr<Tycos>> Create(const SeriesPair& pair,
                                               const TycosParams& params,
                                               TycosVariant variant,
                                               uint64_t seed = 42);

  // `pair` is copied (and jittered when params.tie_jitter > 0), so the
  // engine is self-contained. A thin CHECKed wrapper over the Create
  // validation: invalid params or non-finite series abort. Prefer Create()
  // anywhere input is not trusted.
  Tycos(const SeriesPair& pair, const TycosParams& params,
        TycosVariant variant, uint64_t seed = 42);

  Tycos(const Tycos&) = delete;
  Tycos& operator=(const Tycos&) = delete;

  // Runs the search over the whole pair and returns the result set S of
  // non-nested windows scoring >= σ (or the top-K list when params.top_k is
  // set). Run() can be called repeatedly; each call restarts from scratch
  // with the same seed-derived RNG state continuing.
  WindowSet Run();

  // Limit-aware variant: polls `ctx` at climb and neighbourhood boundaries.
  // An expired deadline / cancel / exhausted budget yields the best-so-far
  // window set flagged partial, with the stop reason recorded both in the
  // outcome and in stats().stop_reason.
  //
  // When params.num_restarts > 0 this dispatches to the multi-restart
  // engine: independent climbs from stratified start positions, fanned
  // across params.num_threads executors, each climb owning its evaluator
  // stack and a SplitMix-derived RNG stream. Candidate windows are merged
  // into the result set in climb-index order, and each climb publishes its
  // work tallies to the obs registry before finishing (integer sums
  // commute), so the outcome (windows *and* stats) is bit-identical at any
  // thread count. The evaluation budget then applies per climb;
  // deadline/cancel stop every climb.
  Result<SearchOutcome> Run(const RunContext& ctx);

  const TycosStats& stats() const { return stats_; }
  const TycosParams& params() const { return params_; }
  TycosVariant variant() const { return variant_; }

  // Test-only: replaces the evaluator stack with `wrap(current_stack)`,
  // letting tests splice in a FaultInjector between the search and the
  // estimators. See search/fault_injector.h.
  using EvaluatorWrapper = std::function<std::unique_ptr<WindowEvaluator>(
      std::unique_ptr<WindowEvaluator>)>;
  void WrapEvaluatorForTest(const EvaluatorWrapper& wrap);

 private:
  struct Validated {};  // tag: inputs already vetted by the caller

  Tycos(Validated, const SeriesPair& pair, const TycosParams& params,
        TycosVariant variant, uint64_t seed);

  // Plain-int tallies of one climb. Climb() only ever touches these locals;
  // FlushClimbCounters (tycos.cc) publishes them to the obs registry once
  // per climb, which is what keeps the LAHC loop atomic-free.
  struct ClimbCounters {
    int64_t accepted_moves = 0;
    int64_t rejected_moves = 0;
    int64_t noise_blocked = 0;
    int64_t non_finite_scores = 0;
  };

  // The per-climb execution state a climb reads and mutates. The sequential
  // scan binds a fresh counter block per climb to the member evaluator/rng;
  // each multi-restart climb owns a private set, which is what makes climbs
  // safe to run concurrently.
  struct ClimbContext {
    WindowEvaluator* evaluator;
    Rng* rng;
    ClimbCounters* counters;
  };

  // Publishes one finished climb to the obs registry: tycos.climbs, the
  // tycos.* move/noise/score counters, and the per-climb acceptance-ratio
  // histogram. The ratio is a pure function of the climb's local tallies,
  // so the histogram stays thread-count-invariant.
  static void FlushClimbCounters(const ClimbCounters& c);

  // An evaluator stack as the constructor builds it (incremental or batch
  // core, optional cache), plus a view on the cache for stats reads.
  struct EvaluatorStack {
    std::unique_ptr<WindowEvaluator> evaluator;
    CachingEvaluator* cache = nullptr;
  };
  EvaluatorStack BuildEvaluator() const;

  // The sequential restart-scan engine behind Run(ctx).
  Result<SearchOutcome> RunSequential(const RunContext& ctx);

  // The multi-restart engine behind Run(ctx) when params.num_restarts > 0.
  Result<SearchOutcome> RunMultiRestart(const RunContext& ctx);

  // One LAHC climb from w0; returns the best window seen. Sets `*stop` and
  // returns early (best-so-far) when `ctx` fires.
  Window Climb(const ClimbContext& cc, const Window& w0, const RunContext& ctx,
               std::optional<StopReason>* stop) const;

  // Evaluator score with the hostile-output guard: non-finite scores are
  // recorded and sanitized to 0 so they cannot poison LAHC comparisons or
  // the result set.
  double SafeScore(const ClimbContext& cc, const Window& w) const;

  // Feasible neighbours of w on the level-ℓ shell (offsets in
  // {-ℓδ, 0, +ℓδ} per axis, excluding the identity), honoring the noise
  // direction mask. Sorted by (delay, start, end) so the incremental
  // estimator sees maximal overlap between consecutive evaluations.
  std::vector<Window> GenerateNeighbors(const Window& w, int level,
                                        const DirectionMask& mask) const;

  bool use_noise() const {
    return variant_ == TycosVariant::kLN || variant_ == TycosVariant::kLMN;
  }
  bool use_incremental() const {
    return variant_ == TycosVariant::kLM || variant_ == TycosVariant::kLMN;
  }

  SeriesPair pair_;  // local (possibly jittered) copy
  TycosParams params_;
  TycosVariant variant_;
  uint64_t seed_;
  Rng rng_;

  std::unique_ptr<WindowEvaluator> evaluator_;
  CachingEvaluator* cache_ = nullptr;  // view into evaluator_ when caching

  // Test wrapper re-applied to each per-climb evaluator stack in
  // multi-restart mode (one wrapper instance per climb).
  EvaluatorWrapper test_wrapper_;

  TycosStats stats_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_TYCOS_H_
