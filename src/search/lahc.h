// Late Acceptance Hill Climbing history list (Burke & Bykov), the acceptance
// mechanism of Section 3.2 / Algorithm 1. TYCOS uses the *random* selection
// and update policy: each iteration samples one history slot to compare the
// candidate against, and the same slot is refreshed when the current
// solution beats it.

#ifndef TYCOS_SEARCH_LAHC_H_
#define TYCOS_SEARCH_LAHC_H_

#include <vector>

#include "common/rng.h"

namespace tycos {

class LahcHistory {
 public:
  // A history of `length` slots, each initialized to `initial_value`
  // (conventionally the score of the initial solution).
  LahcHistory(int length, double initial_value);

  // Samples a slot index uniformly at random.
  size_t SampleSlot(Rng& rng) const;

  double ValueAt(size_t slot) const;

  // Overwrites the slot with `value` (Algorithm 1 lines 16–18).
  void Update(size_t slot, double value);

  // Resets every slot to `value` (used on climb restarts).
  void Reset(double value);

  int length() const { return static_cast<int>(values_.size()); }

 private:
  std::vector<double> values_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_LAHC_H_
