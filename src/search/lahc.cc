#include "search/lahc.h"

#include "common/check.h"

namespace tycos {

LahcHistory::LahcHistory(int length, double initial_value) {
  TYCOS_CHECK_GE(length, 1);
  values_.assign(static_cast<size_t>(length), initial_value);
}

size_t LahcHistory::SampleSlot(Rng& rng) const {
  return static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(values_.size()) - 1));
}

double LahcHistory::ValueAt(size_t slot) const {
  TYCOS_CHECK_LT(slot, values_.size());
  return values_[slot];
}

void LahcHistory::Update(size_t slot, double value) {
  TYCOS_CHECK_LT(slot, values_.size());
  values_[slot] = value;
}

void LahcHistory::Reset(double value) {
  values_.assign(values_.size(), value);
}

}  // namespace tycos
