#include "search/top_k.h"

#include <algorithm>

#include "common/check.h"

namespace tycos {

TopKFilter::TopKFilter(int k) : k_(k) { TYCOS_CHECK_GE(k_, 1); }

bool TopKFilter::Offer(const Window& w) {
  // Replace a nested incumbent instead of keeping both scales of the same
  // correlation (the result set is non-nesting).
  for (size_t i = 0; i < windows_.size(); ++i) {
    const Window& in = windows_[i];
    if (Contains(in, w) || Contains(w, in)) {
      if (in.mi >= w.mi) return false;
      windows_.erase(windows_.begin() + static_cast<long>(i));
      break;
    }
  }
  if (full() && w.mi <= CurrentSigma()) return false;
  windows_.push_back(w);
  std::sort(windows_.begin(), windows_.end(),
            [](const Window& a, const Window& b) { return a.mi > b.mi; });
  if (static_cast<int>(windows_.size()) > k_) windows_.pop_back();
  return true;
}

double TopKFilter::CurrentSigma() const {
  if (!full()) return 0.0;
  return windows_.back().mi;
}

}  // namespace tycos
