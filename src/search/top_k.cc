#include "search/top_k.h"

#include <algorithm>

#include "common/check.h"

namespace tycos {

namespace {

// Selection order: best score first; ties broken by coordinates so the
// order (and hence the retained set) is a pure function of the offer *set*.
bool SelectionOrder(const Window& a, const Window& b) {
  if (a.mi != b.mi) return a.mi > b.mi;
  if (a.start != b.start) return a.start < b.start;
  if (a.end != b.end) return a.end < b.end;
  return a.delay < b.delay;
}

bool SameWindow(const Window& a, const Window& b) {
  return a.start == b.start && a.end == b.end && a.delay == b.delay;
}

}  // namespace

TopKFilter::TopKFilter(int k) : k_(k) { TYCOS_CHECK_GE(k_, 1); }

bool TopKFilter::Offer(const Window& w) {
  // Dedup by coordinates, keeping the best score seen for the window.
  auto it = std::find_if(offers_.begin(), offers_.end(),
                         [&](const Window& o) { return SameWindow(o, w); });
  if (it != offers_.end()) {
    if (it->mi >= w.mi) {
      return std::any_of(
          selection_.begin(), selection_.end(),
          [&](const Window& s) { return SameWindow(s, w); });
    }
    offers_.erase(it);
  }
  offers_.insert(
      std::upper_bound(offers_.begin(), offers_.end(), w, SelectionOrder), w);
  RebuildSelection();
  return std::any_of(selection_.begin(), selection_.end(),
                     [&](const Window& s) { return SameWindow(s, w); });
}

void TopKFilter::RebuildSelection() {
  selection_.clear();
  for (const Window& o : offers_) {
    if (static_cast<int>(selection_.size()) == k_) break;
    const bool nests = std::any_of(
        selection_.begin(), selection_.end(), [&](const Window& s) {
          return Contains(s, o) || Contains(o, s);
        });
    if (!nests) selection_.push_back(o);
  }
}

double TopKFilter::CurrentSigma() const {
  if (!full()) return 0.0;
  return selection_.back().mi;
}

}  // namespace tycos
