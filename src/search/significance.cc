#include "search/significance.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "core/window.h"

namespace tycos {

double WindowPValue(const SeriesPair& pair, const Window& w,
                    const SignificanceOptions& options) {
  TYCOS_CHECK_GE(options.permutations, 1);
  std::vector<double> xs, ys;
  ExtractSamples(pair, w, &xs, &ys);
  const int64_t m = static_cast<int64_t>(xs.size());
  if (m < options.ksg.k + 2) return 1.0;

  const double observed = KsgMi(xs, ys, options.ksg);
  const int64_t min_shift = std::max<int64_t>(
      1, static_cast<int64_t>(options.min_shift_fraction *
                              static_cast<double>(m)));
  // Degenerate windows where no shift range exists cannot be tested.
  if (min_shift >= m - min_shift) return 1.0;

  Rng rng(options.seed);
  std::vector<double> shifted(ys.size());
  int at_least_as_large = 0;
  for (int p = 0; p < options.permutations; ++p) {
    const int64_t shift = rng.UniformInt(min_shift, m - 1 - min_shift);
    for (int64_t i = 0; i < m; ++i) {
      shifted[static_cast<size_t>(i)] =
          ys[static_cast<size_t>((i + shift) % m)];
    }
    if (KsgMi(xs, shifted, options.ksg) >= observed) ++at_least_as_large;
  }
  return static_cast<double>(1 + at_least_as_large) /
         static_cast<double>(1 + options.permutations);
}

WindowSet FilterSignificant(const SeriesPair& pair, const WindowSet& windows,
                            double alpha,
                            const SignificanceOptions& options) {
  WindowSet kept;
  for (const Window& w : windows.windows()) {
    if (WindowPValue(pair, w, options) <= alpha) kept.Insert(w);
  }
  return kept;
}

}  // namespace tycos
