// Pairwise correlation discovery: runs TYCOS over every unordered pair of
// channels and ranks the pairs — the workflow of the paper's energy
// evaluation ("we create pairwise time series from 72 plugs, and apply
// TYCOS on each time series pair"). Delay signs cover directionality, so
// each unordered pair is searched once.

#ifndef TYCOS_SEARCH_PAIRWISE_H_
#define TYCOS_SEARCH_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/time_series.h"
#include "core/window_set.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {

struct PairwiseEntry {
  int a = 0;  // channel indices into the input vector
  int b = 0;
  WindowSet windows;
  double best_score = 0.0;  // strongest window, 0 when none found
  bool partial = false;     // this pair's search was cut short
  // Admission-gate shed level this pair ran at (src/jobs/admission.h);
  // 0 = full params. Non-zero marks a deliberately degraded search, so a
  // coarse answer produced under overload is never mistaken for a
  // full-fidelity one. Plain PairwiseSearch always runs at level 0.
  int shed_level = 0;

  int64_t window_count() const { return static_cast<int64_t>(windows.size()); }
};

// One pair's finished search as a self-contained unit: the entry plus how
// the inner search ended. This is the unit of work the durable-job layer
// (src/jobs/) supervises, retries, and checkpoints.
struct PairOutcome {
  PairwiseEntry entry;
  StopReason stop_reason = StopReason::kCompleted;
};

struct PairwiseResult {
  // One entry per unordered channel pair, sorted by best_score descending
  // (ties broken by window count, then by (a, b)). When the run was stopped
  // early, pairs never reached are absent and pairs in flight at the stop
  // are flagged partial; every listed window is genuinely confirmed.
  std::vector<PairwiseEntry> entries;
  int64_t pairs_searched = 0;   // entries actually run (== entries.size())
  int64_t pairs_skipped = 0;    // pairs never started due to an early stop
  bool partial = false;
  StopReason stop_reason = StopReason::kCompleted;

  // Indices into `entries` of the pairs that actually found windows.
  // Index-based on purpose: a PairwiseResult is freely copyable/movable, and
  // indices stay valid across copies where pointers into `entries` would
  // dangle.
  std::vector<size_t> Correlated() const;
};

// Runs Tycos(variant) on every pair of `channels` (all must share a
// length). Seeds are derived per pair for reproducibility. CHECKs on
// invalid input; prefer the RunContext overload where input is untrusted.
//
// When params.num_threads != 1 the pairs are fanned across a thread pool.
// Each pair owns its search (seed, evaluator, incremental-KSG state), pairs
// are claimed in (a, b) order, and entries are merged in pair order before
// the final sort — so the result is bit-identical to the sequential run at
// any thread count.
PairwiseResult PairwiseSearch(const std::vector<TimeSeries>& channels,
                              const TycosParams& params, TycosVariant variant,
                              uint64_t seed = 42);

// Graceful, limit-aware variant: validates the channels (>= 2, equal
// lengths, finite values) and params via Status instead of CHECKing, and
// threads `ctx` through every inner search. The deadline and cancellation
// flag are global across pairs (a stop halts every worker within one window
// evaluation and no further pairs are claimed); an evaluation budget
// applies per pair (each search keeps its own counter — see
// RunContext::SetEvaluationBudget).
Result<PairwiseResult> PairwiseSearch(const std::vector<TimeSeries>& channels,
                                      const TycosParams& params,
                                      TycosVariant variant, uint64_t seed,
                                      const RunContext& ctx);

// --- Building blocks shared with the durable-job layer (src/jobs/) ---
//
// PairwiseSearch is exactly: ValidatePairwiseChannels, SearchPair on every
// (a, b) with a < b, SortPairwiseEntries on the collected entries. The
// durable runner replays the identical recipe over the not-yet-checkpointed
// subset, which is what makes a resumed run bit-identical to an
// uninterrupted one.

// The channel-level validation PairwiseSearch performs (>= 2 channels,
// equal lengths, finite values).
Status ValidatePairwiseChannels(const std::vector<TimeSeries>& channels);

// The per-pair seed stream. Kept stable across releases so stored results
// (and checkpoints) stay reproducible.
uint64_t PairwiseSeed(uint64_t seed, int a, int b);

// Runs one pair's search: Tycos(variant) on (channels[a], channels[b]) with
// the pair's derived seed, threading `ctx` through the inner search. The
// caller must have validated channels and params; a/b must index into
// channels with a < b. Deterministic for a fixed (channels, params, variant,
// seed) — independent of which other pairs ran before it.
Result<PairOutcome> SearchPair(const std::vector<TimeSeries>& channels, int a,
                               int b, const TycosParams& params,
                               TycosVariant variant, uint64_t seed,
                               const RunContext& ctx);

// The result ordering PairwiseSearch applies: best_score descending, ties
// by window count, then (a, b).
void SortPairwiseEntries(std::vector<PairwiseEntry>* entries);

}  // namespace tycos

#endif  // TYCOS_SEARCH_PAIRWISE_H_
