// Pairwise correlation discovery: runs TYCOS over every unordered pair of
// channels and ranks the pairs — the workflow of the paper's energy
// evaluation ("we create pairwise time series from 72 plugs, and apply
// TYCOS on each time series pair"). Delay signs cover directionality, so
// each unordered pair is searched once.

#ifndef TYCOS_SEARCH_PAIRWISE_H_
#define TYCOS_SEARCH_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "core/time_series.h"
#include "core/window_set.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {

struct PairwiseEntry {
  int a = 0;  // channel indices into the input vector
  int b = 0;
  WindowSet windows;
  double best_score = 0.0;  // strongest window, 0 when none found

  int64_t window_count() const { return static_cast<int64_t>(windows.size()); }
};

struct PairwiseResult {
  // One entry per unordered channel pair, sorted by best_score descending
  // (ties broken by window count, then by (a, b)).
  std::vector<PairwiseEntry> entries;

  // Entries that actually found windows.
  std::vector<const PairwiseEntry*> Correlated() const;
};

// Runs Tycos(variant) on every pair of `channels` (all must share a
// length). Seeds are derived per pair for reproducibility.
PairwiseResult PairwiseSearch(const std::vector<TimeSeries>& channels,
                              const TycosParams& params, TycosVariant variant,
                              uint64_t seed = 42);

}  // namespace tycos

#endif  // TYCOS_SEARCH_PAIRWISE_H_
