// FaultInjector: a test-only WindowEvaluator wrapper that injects faults
// into a running search — expiring a RunContext mid-climb, corrupting
// scores with non-finite values, or forcing estimator degeneracy (score 0).
//
// It powers tests/resilience_test.cc, which proves that partial results are
// still valid non-nested window sets and that the incremental and
// non-incremental variants degrade identically. Production code never
// constructs one; searches expose WrapEvaluatorForTest() to splice it in.

#ifndef TYCOS_SEARCH_FAULT_INJECTOR_H_
#define TYCOS_SEARCH_FAULT_INJECTOR_H_

#include <cstdint>
#include <limits>
#include <memory>

#include "common/run_context.h"
#include "search/evaluator.h"

namespace tycos {

// Faults are keyed on the injector's own 1-based count of Score() calls,
// so a plan is deterministic regardless of wall-clock speed.
struct FaultPlan {
  // Cancels `cancel_context` at the Nth Score() call (-1 disables) — the
  // deterministic stand-in for a deadline expiring mid-climb.
  RunContext* cancel_context = nullptr;
  int64_t cancel_at = -1;

  // Replaces every `corrupt_every`-th score with `corrupt_value`
  // (0 disables). Defaults to NaN: the worst value an estimator could leak.
  int64_t corrupt_every = 0;
  double corrupt_value = std::numeric_limits<double>::quiet_NaN();

  // From the Nth Score() call on, forces 0.0 (-1 disables) — models an
  // estimator gone degenerate (e.g. a sensor flatlining mid-stream).
  int64_t degenerate_from = -1;
};

class FaultInjector : public WindowEvaluator {
 public:
  FaultInjector(std::unique_ptr<WindowEvaluator> inner, const FaultPlan& plan)
      : inner_(std::move(inner)), plan_(plan) {}

  double Score(const Window& w) override;
  int64_t evaluations() const override { return inner_->evaluations(); }
  int64_t degenerate_windows() const override {
    return inner_->degenerate_windows();
  }
  void FlushObsCounters() override { inner_->FlushObsCounters(); }

  int64_t scores_served() const { return scores_served_; }
  int64_t faults_injected() const { return faults_injected_; }

 private:
  std::unique_ptr<WindowEvaluator> inner_;
  FaultPlan plan_;
  int64_t scores_served_ = 0;
  int64_t faults_injected_ = 0;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_FAULT_INJECTOR_H_
