// FaultInjector: a test-only WindowEvaluator wrapper that injects faults
// into a running search — expiring a RunContext mid-climb, corrupting
// scores with non-finite values, or forcing estimator degeneracy (score 0).
//
// It powers tests/resilience_test.cc, which proves that partial results are
// still valid non-nested window sets and that the incremental and
// non-incremental variants degrade identically. Production code never
// constructs one; searches expose WrapEvaluatorForTest() to splice it in.
//
// PairFaultSchedule is the pair-level counterpart: a seeded, deterministic
// transient/permanent failure schedule that the durable-job layer
// (src/jobs/) accepts in its test hooks, so retry-with-backoff and
// failure-isolation paths are reproducibly exercisable.

#ifndef TYCOS_SEARCH_FAULT_INJECTOR_H_
#define TYCOS_SEARCH_FAULT_INJECTOR_H_

#include <cstdint>
#include <limits>
#include <memory>

#include "common/run_context.h"
#include "common/status.h"
#include "search/evaluator.h"

namespace tycos {

// How an injected failure should be classified by a supervisor: transient
// faults are expected to heal under retry, permanent faults fail every
// attempt. kNone means the (pair, attempt) succeeds.
enum class FaultClass { kNone = 0, kTransient, kPermanent };

// "none", "transient", "permanent".
const char* FaultClassName(FaultClass c);

// A deterministic per-(pair, attempt) failure schedule for testing the
// retry/backoff supervision paths (src/jobs/supervisor.h). The schedule is
// a pure function of (seed, pair, attempt) via SplitMix64 hashing, so it is
// identical at any thread count and across resumed runs — which is exactly
// what lets a test assert "transient faults recover within the retry bound
// while permanent faults isolate to their pair" without flaking.
class PairFaultSchedule {
 public:
  struct Spec {
    // Probability that a given (pair, attempt) fails transiently.
    double transient_rate = 0.0;
    // Probability that a pair fails permanently; a permanently faulted pair
    // fails on every attempt (the per-pair decision ignores `attempt`).
    double permanent_rate = 0.0;
    // A transiently faulted (pair, attempt) stops faulting once `attempt`
    // reaches this value, guaranteeing convergence within the retry bound.
    // 0 disables the heal (every attempt draws independently).
    int heal_at_attempt = 0;
  };

  PairFaultSchedule(uint64_t seed, const Spec& spec)
      : seed_(seed), spec_(spec) {}

  // The fault planned for attempt `attempt` (1-based) of pair `pair_index`.
  FaultClass At(int64_t pair_index, int attempt) const;

  // The error a scheduled fault surfaces as: Unavailable for transient
  // (retryable by classification), Internal for permanent.
  static Status MakeStatus(FaultClass c, int64_t pair_index, int attempt);

 private:
  uint64_t seed_;
  Spec spec_;
};

// Faults are keyed on the injector's own 1-based count of Score() calls,
// so a plan is deterministic regardless of wall-clock speed.
struct FaultPlan {
  // Cancels `cancel_context` at the Nth Score() call (-1 disables) — the
  // deterministic stand-in for a deadline expiring mid-climb.
  RunContext* cancel_context = nullptr;
  int64_t cancel_at = -1;

  // Replaces every `corrupt_every`-th score with `corrupt_value`
  // (0 disables). Defaults to NaN: the worst value an estimator could leak.
  int64_t corrupt_every = 0;
  double corrupt_value = std::numeric_limits<double>::quiet_NaN();

  // From the Nth Score() call on, forces 0.0 (-1 disables) — models an
  // estimator gone degenerate (e.g. a sensor flatlining mid-stream).
  int64_t degenerate_from = -1;
};

class FaultInjector : public WindowEvaluator {
 public:
  FaultInjector(std::unique_ptr<WindowEvaluator> inner, const FaultPlan& plan)
      : inner_(std::move(inner)), plan_(plan) {}

  double Score(const Window& w) override;
  int64_t evaluations() const override { return inner_->evaluations(); }
  int64_t degenerate_windows() const override {
    return inner_->degenerate_windows();
  }
  void FlushObsCounters() override { inner_->FlushObsCounters(); }

  int64_t scores_served() const { return scores_served_; }
  int64_t faults_injected() const { return faults_injected_; }

 private:
  std::unique_ptr<WindowEvaluator> inner_;
  FaultPlan plan_;
  int64_t scores_served_ = 0;
  int64_t faults_injected_ = 0;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_FAULT_INJECTOR_H_
