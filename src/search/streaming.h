// StreamingTycos: online correlation search over an unbounded pair stream.
//
// The paper positions TYCOS as "memory efficient and suitable for big
// datasets" thanks to its bottom-up scan; this driver makes that concrete:
// samples are appended in chunks, each search pass covers only the
// not-yet-searched region plus a rescan margin of s_max + td_max samples
// (the farthest any window can straddle a chunk boundary), and older
// samples are discarded. Memory is O(s_max + td_max + chunk), independent
// of the stream length.
//
// Resilience: Append() validates its input and applies a DataPolicy to
// non-finite samples (sensors flatline, packets drop) instead of poisoning
// the estimators, and an optional RunContext bounds each search pass so one
// expensive pass cannot stall the ingest path.

#ifndef TYCOS_SEARCH_STREAMING_H_
#define TYCOS_SEARCH_STREAMING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/run_context.h"
#include "common/status.h"
#include "core/data_policy.h"
#include "core/time_series.h"
#include "core/window_set.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {

class StreamingTycos {
 public:
  // Graceful construction: validates the length-independent parameter shape
  // and the trigger, returning InvalidArgument instead of crashing.
  static Result<std::unique_ptr<StreamingTycos>> Create(
      const TycosParams& params, TycosVariant variant, uint64_t seed = 42,
      int64_t search_trigger = 0, DataPolicy policy = DataPolicy::kReject);

  // A search pass runs whenever at least `search_trigger` unsearched
  // samples have accumulated (0 = auto: 2 × s_max). Flush() forces a final
  // pass over whatever remains. CHECKs on invalid parameters; prefer
  // Create() where input is untrusted.
  StreamingTycos(const TycosParams& params, TycosVariant variant,
                 uint64_t seed = 42, int64_t search_trigger = 0,
                 DataPolicy policy = DataPolicy::kReject);

  // Appends paired samples and searches when triggered. Mismatched lengths
  // are an InvalidArgument (the stream is desynchronized; nothing is
  // buffered). Non-finite samples follow the ingest policy:
  //   kReject       — InvalidArgument naming the offending stream position;
  //                   the chunk is not buffered.
  //   kDropRow      — pairs with a non-finite side are dropped (and do not
  //                   advance stream coordinates).
  //   kInterpolate  — non-finite samples are repaired linearly from the
  //                   nearest finite neighbours, using the last buffered
  //                   sample as left context; a trailing non-finite run is
  //                   clamped to the last finite value (the stream cannot
  //                   wait for a future right neighbour).
  Status Append(const std::vector<double>& xs, const std::vector<double>& ys);

  // Searches the remaining unsearched tail (call at end of stream).
  Status Flush();

  // Optional execution limits applied to every subsequent search pass. The
  // pointed-to context must outlive its use; pass nullptr to clear. On a
  // partial pass the searched region still advances (the stream moves on),
  // and the pass is reported through last_pass_partial().
  void set_run_context(const RunContext* ctx) { run_context_ = ctx; }

  // Windows found so far, in *global* stream coordinates.
  const WindowSet& results() const { return results_; }

  int64_t samples_seen() const { return samples_seen_; }
  int64_t retained_samples() const {
    return static_cast<int64_t>(buffer_x_.size());
  }
  int64_t search_passes() const { return search_passes_; }

  // Resilience telemetry: how ingest repaired hostile input, and whether
  // the most recent search pass was cut short (and why).
  const SanitizeStats& ingest_stats() const { return ingest_stats_; }
  DataPolicy policy() const { return policy_; }
  bool last_pass_partial() const { return last_pass_partial_; }
  StopReason last_stop_reason() const { return last_stop_reason_; }

 private:
  struct Validated {};  // tag: inputs already vetted by the caller

  StreamingTycos(Validated, const TycosParams& params, TycosVariant variant,
                 uint64_t seed, int64_t search_trigger, DataPolicy policy);

  Status MaybeSearch(bool force);

  TycosParams params_;
  TycosVariant variant_;
  uint64_t seed_;
  int64_t search_trigger_;
  DataPolicy policy_;
  const RunContext* run_context_ = nullptr;

  // Retained tail of the stream; buffer index 0 is global index offset_.
  std::vector<double> buffer_x_;
  std::vector<double> buffer_y_;
  int64_t offset_ = 0;
  int64_t samples_seen_ = 0;
  int64_t searched_until_ = 0;  // global index; everything before is done
  int64_t search_passes_ = 0;

  SanitizeStats ingest_stats_;
  bool last_pass_partial_ = false;
  StopReason last_stop_reason_ = StopReason::kCompleted;

  WindowSet results_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_STREAMING_H_
