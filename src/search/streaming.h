// StreamingTycos: online correlation search over an unbounded pair stream.
//
// The paper positions TYCOS as "memory efficient and suitable for big
// datasets" thanks to its bottom-up scan; this driver makes that concrete:
// samples are appended in chunks, each search pass covers only the
// not-yet-searched region plus a rescan margin of s_max + td_max samples
// (the farthest any window can straddle a chunk boundary), and older
// samples are discarded. Memory is O(s_max + td_max + chunk), independent
// of the stream length.

#ifndef TYCOS_SEARCH_STREAMING_H_
#define TYCOS_SEARCH_STREAMING_H_

#include <cstdint>
#include <vector>

#include "core/time_series.h"
#include "core/window_set.h"
#include "search/params.h"
#include "search/tycos.h"

namespace tycos {

class StreamingTycos {
 public:
  // A search pass runs whenever at least `search_trigger` unsearched
  // samples have accumulated (0 = auto: 2 × s_max). Flush() forces a final
  // pass over whatever remains.
  StreamingTycos(const TycosParams& params, TycosVariant variant,
                 uint64_t seed = 42, int64_t search_trigger = 0);

  // Appends paired samples (equal lengths) and searches when triggered.
  void Append(const std::vector<double>& xs, const std::vector<double>& ys);

  // Searches the remaining unsearched tail (call at end of stream).
  void Flush();

  // Windows found so far, in *global* stream coordinates.
  const WindowSet& results() const { return results_; }

  int64_t samples_seen() const { return samples_seen_; }
  int64_t retained_samples() const {
    return static_cast<int64_t>(buffer_x_.size());
  }
  int64_t search_passes() const { return search_passes_; }

 private:
  void MaybeSearch(bool force);

  TycosParams params_;
  TycosVariant variant_;
  uint64_t seed_;
  int64_t search_trigger_;

  // Retained tail of the stream; buffer index 0 is global index offset_.
  std::vector<double> buffer_x_;
  std::vector<double> buffer_y_;
  int64_t offset_ = 0;
  int64_t samples_seen_ = 0;
  int64_t searched_until_ = 0;  // global index; everything before is done
  int64_t search_passes_ = 0;

  WindowSet results_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_STREAMING_H_
