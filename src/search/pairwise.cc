#include "search/pairwise.h"

#include <algorithm>

#include "common/check.h"

namespace tycos {

std::vector<const PairwiseEntry*> PairwiseResult::Correlated() const {
  std::vector<const PairwiseEntry*> out;
  for (const PairwiseEntry& e : entries) {
    if (!e.windows.empty()) out.push_back(&e);
  }
  return out;
}

PairwiseResult PairwiseSearch(const std::vector<TimeSeries>& channels,
                              const TycosParams& params, TycosVariant variant,
                              uint64_t seed) {
  TYCOS_CHECK_GE(channels.size(), 2u);
  for (const TimeSeries& c : channels) {
    TYCOS_CHECK_EQ(c.size(), channels[0].size());
  }

  PairwiseResult result;
  const int n = static_cast<int>(channels.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      PairwiseEntry entry;
      entry.a = a;
      entry.b = b;
      const SeriesPair pair(channels[static_cast<size_t>(a)],
                            channels[static_cast<size_t>(b)]);
      Tycos search(pair, params, variant,
                   seed + static_cast<uint64_t>(a) * 1000003u +
                       static_cast<uint64_t>(b));
      entry.windows = search.Run();
      for (const Window& w : entry.windows.windows()) {
        entry.best_score = std::max(entry.best_score, w.mi);
      }
      result.entries.push_back(std::move(entry));
    }
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const PairwiseEntry& x, const PairwiseEntry& y) {
              if (x.best_score != y.best_score) {
                return x.best_score > y.best_score;
              }
              if (x.window_count() != y.window_count()) {
                return x.window_count() > y.window_count();
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return result;
}

}  // namespace tycos
