#include "search/pairwise.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tycos {

Status ValidatePairwiseChannels(const std::vector<TimeSeries>& channels) {
  if (channels.size() < 2) {
    return Status::InvalidArgument(
        "pairwise search needs at least 2 channels, got " +
        std::to_string(channels.size()));
  }
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i].size() != channels[0].size()) {
      return Status::InvalidArgument(
          "channel " + std::to_string(i) + " ('" + channels[i].name() +
          "') has length " + std::to_string(channels[i].size()) +
          " but channel 0 has " + std::to_string(channels[0].size()));
    }
    const Status st = channels[i].Validate();
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

uint64_t PairwiseSeed(uint64_t seed, int a, int b) {
  return seed + static_cast<uint64_t>(a) * 1000003u + static_cast<uint64_t>(b);
}

void SortPairwiseEntries(std::vector<PairwiseEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const PairwiseEntry& x, const PairwiseEntry& y) {
              if (x.best_score != y.best_score) {
                return x.best_score > y.best_score;
              }
              if (x.window_count() != y.window_count()) {
                return x.window_count() > y.window_count();
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

Result<PairOutcome> SearchPair(const std::vector<TimeSeries>& channels, int a,
                               int b, const TycosParams& params,
                               TycosVariant variant, uint64_t seed,
                               const RunContext& ctx) {
  TYCOS_SPAN("pairwise_pair");
  PairOutcome out;
  out.entry.a = a;
  out.entry.b = b;
  const SeriesPair pair(channels[static_cast<size_t>(a)],
                        channels[static_cast<size_t>(b)]);
  Result<std::unique_ptr<Tycos>> search =
      Tycos::Create(pair, params, variant, PairwiseSeed(seed, a, b));
  if (!search.ok()) return search.status();
  Result<SearchOutcome> outcome = search.value()->Run(ctx);
  if (!outcome.ok()) return outcome.status();
  out.entry.windows = std::move(outcome.value().windows);
  out.entry.partial = outcome.value().partial;
  for (const Window& w : out.entry.windows.windows()) {
    out.entry.best_score = std::max(out.entry.best_score, w.mi);
  }
  out.stop_reason = outcome.value().stop_reason;
  return out;
}

std::vector<size_t> PairwiseResult::Correlated() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (!entries[i].windows.empty()) out.push_back(i);
  }
  return out;
}

PairwiseResult PairwiseSearch(const std::vector<TimeSeries>& channels,
                              const TycosParams& params, TycosVariant variant,
                              uint64_t seed) {
  TYCOS_CHECK_GE(channels.size(), 2u);
  for (const TimeSeries& c : channels) {
    TYCOS_CHECK_EQ(c.size(), channels[0].size());
  }
  // The no-limit context never stops or rejects, so the Result is always ok
  // once the CHECKs above have passed.
  Result<PairwiseResult> result =
      PairwiseSearch(channels, params, variant, seed, RunContext::None());
  TYCOS_CHECK(result.ok());
  return std::move(result.value());
}

Result<PairwiseResult> PairwiseSearch(const std::vector<TimeSeries>& channels,
                                      const TycosParams& params,
                                      TycosVariant variant, uint64_t seed,
                                      const RunContext& ctx) {
  Status st = ValidatePairwiseChannels(channels);
  if (!st.ok()) return st;
  // Params are identical for every pair; validating once up front keeps the
  // fan-out free of per-pair construction failures.
  st = params.Validate(channels[0].size());
  if (!st.ok()) return st;

  const int n = static_cast<int>(channels.size());
  const int64_t total_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(total_pairs));
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) pairs.emplace_back(a, b);
  }

  // Each slot is written only by the executor that claimed its pair and read
  // only after the join; claimed slots are always fully written (a stop
  // never leaves one torn).
  struct Slot {
    PairwiseEntry entry;
    Status status = Status::Ok();
  };
  std::vector<Slot> slots(static_cast<size_t>(total_pairs));

  // Inner searches stay sequential: the pair level is where the parallelism
  // lives, and nested pools would oversubscribe (results are thread-count
  // invariant either way).
  TycosParams inner = params;
  inner.num_threads = 1;

  // Counted here, once per distinct pair, not in SearchPair: the durable
  // runner calls SearchPair once per retry attempt, which would inflate a
  // pairs metric (it has its own jobs.pairs_run / jobs.pair_attempts).
  static obs::Counter* pairs_searched =
      obs::GetCounter("pairwise.pairs_searched");

  const int threads = static_cast<int>(std::min<int64_t>(
      ThreadPool::ResolveThreadCount(params.num_threads), total_pairs));
  ThreadPool pool(threads - 1);
  const ThreadPool::ForStatus fs = pool.ParallelFor(
      total_pairs, ctx, [&](int64_t p) -> std::optional<StopReason> {
        pairs_searched->Add(1);
        Slot& slot = slots[static_cast<size_t>(p)];
        const auto [a, b] = pairs[static_cast<size_t>(p)];
        Result<PairOutcome> outcome =
            SearchPair(channels, a, b, inner, variant, seed, ctx);
        if (!outcome.ok()) {
          // Halt further claims; the recorded status (not this reason) is
          // what the caller sees.
          slot.status = outcome.status();
          return StopReason::kCancelled;
        }
        slot.entry = std::move(outcome.value().entry);
        // A per-pair budget exhausting is expected on every pair; only
        // global limits (deadline, cancellation) end the whole sweep.
        const StopReason reason = outcome.value().stop_reason;
        if (slot.entry.partial && (reason == StopReason::kDeadlineExceeded ||
                                   reason == StopReason::kCancelled)) {
          return reason;
        }
        return std::nullopt;
      });

  // First error in pair order wins (deterministic at any thread count once
  // the error itself is deterministic).
  for (int64_t p = 0; p < fs.claimed; ++p) {
    if (!slots[static_cast<size_t>(p)].status.ok()) {
      return slots[static_cast<size_t>(p)].status;
    }
  }

  PairwiseResult result;
  result.entries.reserve(static_cast<size_t>(fs.claimed));
  for (int64_t p = 0; p < fs.claimed; ++p) {
    result.entries.push_back(std::move(slots[static_cast<size_t>(p)].entry));
  }
  SortPairwiseEntries(&result.entries);
  result.pairs_searched = static_cast<int64_t>(result.entries.size());
  result.pairs_skipped = total_pairs - result.pairs_searched;
  result.partial = fs.stop.has_value() || result.pairs_skipped > 0;
  result.stop_reason = fs.stop.value_or(StopReason::kCompleted);
  return result;
}

}  // namespace tycos
