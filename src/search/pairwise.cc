#include "search/pairwise.h"

#include <algorithm>

#include "common/check.h"

namespace tycos {

namespace {

Status ValidateChannels(const std::vector<TimeSeries>& channels) {
  if (channels.size() < 2) {
    return Status::InvalidArgument(
        "pairwise search needs at least 2 channels, got " +
        std::to_string(channels.size()));
  }
  for (size_t i = 0; i < channels.size(); ++i) {
    if (channels[i].size() != channels[0].size()) {
      return Status::InvalidArgument(
          "channel " + std::to_string(i) + " ('" + channels[i].name() +
          "') has length " + std::to_string(channels[i].size()) +
          " but channel 0 has " + std::to_string(channels[0].size()));
    }
    const Status st = channels[i].Validate();
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

void SortEntries(std::vector<PairwiseEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const PairwiseEntry& x, const PairwiseEntry& y) {
              if (x.best_score != y.best_score) {
                return x.best_score > y.best_score;
              }
              if (x.window_count() != y.window_count()) {
                return x.window_count() > y.window_count();
              }
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

}  // namespace

std::vector<const PairwiseEntry*> PairwiseResult::Correlated() const {
  std::vector<const PairwiseEntry*> out;
  for (const PairwiseEntry& e : entries) {
    if (!e.windows.empty()) out.push_back(&e);
  }
  return out;
}

PairwiseResult PairwiseSearch(const std::vector<TimeSeries>& channels,
                              const TycosParams& params, TycosVariant variant,
                              uint64_t seed) {
  TYCOS_CHECK_GE(channels.size(), 2u);
  for (const TimeSeries& c : channels) {
    TYCOS_CHECK_EQ(c.size(), channels[0].size());
  }
  // The no-limit context never stops or rejects, so the Result is always ok
  // once the CHECKs above have passed.
  Result<PairwiseResult> result =
      PairwiseSearch(channels, params, variant, seed, RunContext::None());
  TYCOS_CHECK(result.ok());
  return std::move(result.value());
}

Result<PairwiseResult> PairwiseSearch(const std::vector<TimeSeries>& channels,
                                      const TycosParams& params,
                                      TycosVariant variant, uint64_t seed,
                                      const RunContext& ctx) {
  Status st = ValidateChannels(channels);
  if (!st.ok()) return st;

  PairwiseResult result;
  const int n = static_cast<int>(channels.size());
  const int64_t total_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  std::optional<StopReason> stop;
  for (int a = 0; a < n && !stop; ++a) {
    for (int b = a + 1; b < n; ++b) {
      // Pair-boundary poll (evaluation budgets are per pair, so only the
      // deadline/cancel limits matter here).
      if ((stop = ctx.ShouldStop())) break;
      PairwiseEntry entry;
      entry.a = a;
      entry.b = b;
      const SeriesPair pair(channels[static_cast<size_t>(a)],
                            channels[static_cast<size_t>(b)]);
      Result<std::unique_ptr<Tycos>> search =
          Tycos::Create(pair, params, variant,
                        seed + static_cast<uint64_t>(a) * 1000003u +
                            static_cast<uint64_t>(b));
      if (!search.ok()) return search.status();
      Result<SearchOutcome> outcome = search.value()->Run(ctx);
      if (!outcome.ok()) return outcome.status();
      entry.windows = std::move(outcome.value().windows);
      entry.partial = outcome.value().partial;
      for (const Window& w : entry.windows.windows()) {
        entry.best_score = std::max(entry.best_score, w.mi);
      }
      const bool cut_short = entry.partial;
      const StopReason reason = outcome.value().stop_reason;
      result.entries.push_back(std::move(entry));
      // A per-pair budget exhausting is expected on every pair; only global
      // limits (deadline, cancellation) end the whole sweep.
      if (cut_short && (reason == StopReason::kDeadlineExceeded ||
                        reason == StopReason::kCancelled)) {
        stop = reason;
        break;
      }
    }
  }
  SortEntries(&result.entries);
  result.pairs_searched = static_cast<int64_t>(result.entries.size());
  result.pairs_skipped = total_pairs - result.pairs_searched;
  result.partial = stop.has_value() || result.pairs_skipped > 0;
  result.stop_reason = stop.value_or(StopReason::kCompleted);
  return result;
}

}  // namespace tycos
