// Exact brute-force TYCOS (Section 5.1): enumerates every feasible window
// (start × size × delay) and reports all whose score clears σ. Worst-case
// O(n³m²) with batch MI; the incremental mode (default) rides the Section 7
// estimator along each (start, delay) scanline, giving the expected-case
// cost the paper attributes to efficient kNN structures.

#ifndef TYCOS_SEARCH_BRUTE_FORCE_SEARCH_H_
#define TYCOS_SEARCH_BRUTE_FORCE_SEARCH_H_

#include <cstdint>

#include "core/time_series.h"
#include "core/window_set.h"
#include "search/params.h"

namespace tycos {

struct BruteForceResult {
  // Every feasible window scoring >= σ, merged per delay into maximal
  // covering windows (the aggregation of Section 8.4B).
  std::vector<Window> merged;
  // The same windows before merging.
  std::vector<Window> raw;
  int64_t windows_evaluated = 0;
};

class BruteForceSearch {
 public:
  // `pair` is copied (and jittered per params.tie_jitter). Params must
  // validate.
  BruteForceSearch(const SeriesPair& pair, const TycosParams& params,
                   bool use_incremental_mi = true);

  BruteForceResult Run();

  // Number of feasible windows for the configured parameters (Lemma 1's
  // (n - s_min + 1)(s_max - s_min + 1)(2 td_max + 1) bound, exactly counted).
  int64_t CountFeasibleWindows() const;

 private:
  SeriesPair pair_;
  TycosParams params_;
  bool use_incremental_mi_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_BRUTE_FORCE_SEARCH_H_
