// Exact brute-force TYCOS (Section 5.1): enumerates every feasible window
// (start × size × delay) and reports all whose score clears σ. Worst-case
// O(n³m²) with batch MI; the incremental mode (default) rides the Section 7
// estimator along each (start, delay) scanline, giving the expected-case
// cost the paper attributes to efficient kNN structures.

#ifndef TYCOS_SEARCH_BRUTE_FORCE_SEARCH_H_
#define TYCOS_SEARCH_BRUTE_FORCE_SEARCH_H_

#include <cstdint>
#include <memory>

#include "common/run_context.h"
#include "common/status.h"
#include "core/time_series.h"
#include "core/window_set.h"
#include "search/params.h"

namespace tycos {

struct BruteForceResult {
  // Every feasible window scoring >= σ, merged per delay into maximal
  // covering windows (the aggregation of Section 8.4B).
  std::vector<Window> merged;
  // The same windows before merging.
  std::vector<Window> raw;
  int64_t windows_evaluated = 0;
  int64_t non_finite_scores = 0;  // estimator outputs sanitized to 0
  // True when a deadline/cancel/budget stopped the enumeration before it
  // covered every feasible window; `raw`/`merged` hold everything confirmed
  // up to that point.
  bool partial = false;
  StopReason stop_reason = StopReason::kCompleted;
};

class BruteForceSearch {
 public:
  // Graceful construction: validates params and both series, returning
  // InvalidArgument instead of crashing on hostile input.
  static Result<std::unique_ptr<BruteForceSearch>> Create(
      const SeriesPair& pair, const TycosParams& params,
      bool use_incremental_mi = true);

  // `pair` is copied (and jittered per params.tie_jitter). Params must
  // validate; this is a CHECKed wrapper over the Create validation.
  BruteForceSearch(const SeriesPair& pair, const TycosParams& params,
                   bool use_incremental_mi = true);

  BruteForceResult Run();

  // Limit-aware variant: polls `ctx` at every (delay, start) scanline
  // boundary, so a fired limit costs at most one scanline of extra work.
  Result<BruteForceResult> Run(const RunContext& ctx);

  // Number of feasible windows for the configured parameters (Lemma 1's
  // (n - s_min + 1)(s_max - s_min + 1)(2 td_max + 1) bound, exactly counted).
  int64_t CountFeasibleWindows() const;

 private:
  struct Validated {};  // tag: inputs already vetted by the caller

  BruteForceSearch(Validated, const SeriesPair& pair,
                   const TycosParams& params, bool use_incremental_mi);

  SeriesPair pair_;
  TycosParams params_;
  bool use_incremental_mi_;
};

}  // namespace tycos

#endif  // TYCOS_SEARCH_BRUTE_FORCE_SEARCH_H_
