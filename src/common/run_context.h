// RunContext: cooperative execution limits for a search run — a monotonic
// deadline, an externally triggered cancellation flag, and an estimator
// evaluation budget.
//
// Searches poll ShouldStop() at climb / neighbourhood / scanline
// boundaries, so a stop request is honored within one window evaluation of
// the trigger and the search can return its best-so-far result instead of
// being killed mid-flight. A default-constructed context imposes no limits
// and its polls are branch-cheap, so drivers thread one unconditionally.

#ifndef TYCOS_COMMON_RUN_CONTEXT_H_
#define TYCOS_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

namespace tycos {

// Why a search run ended.
enum class StopReason {
  kCompleted = 0,     // ran to natural completion
  kDeadlineExceeded,  // the RunContext deadline expired
  kCancelled,         // RequestCancel() was called
  kBudgetExhausted,   // the evaluation budget was used up
  kPaused,            // a durable job reached its per-invocation pair cap;
                      // state is checkpointed and the run can be resumed
};

// Human-readable name ("completed", "deadline_exceeded", ...).
const char* StopReasonName(StopReason reason);

class RunContext {
 public:
  RunContext() = default;

  // The cancellation flag is shared state between the controlling thread
  // and the search; pass contexts by reference, never by copy.
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;
  RunContext(RunContext&& other) noexcept
      : cancelled_(other.cancelled_.load(std::memory_order_relaxed)),
        deadline_(other.deadline_),
        evaluation_budget_(other.evaluation_budget_),
        parent_(other.parent_) {}

  // A shared no-limit context for callers that don't care.
  static const RunContext& None();

  static RunContext WithDeadline(double seconds) {
    RunContext ctx;
    ctx.SetDeadlineAfter(seconds);
    return ctx;
  }

  static RunContext WithEvaluationBudget(int64_t max_evaluations) {
    RunContext ctx;
    ctx.SetEvaluationBudget(max_evaluations);
    return ctx;
  }

  // Sets the deadline `seconds` from now on the monotonic clock.
  void SetDeadlineAfter(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
  }
  void ClearDeadline() { deadline_.reset(); }

  // Caps the number of estimator evaluations; <= 0 means unlimited. The
  // count is the poller's own (per-search) evaluation counter, so drivers
  // that run several searches apply the budget per search unit.
  void SetEvaluationBudget(int64_t max_evaluations) {
    evaluation_budget_ = max_evaluations > 0 ? max_evaluations : 0;
  }
  // 0 when unlimited. Drivers that run each search unit under a child
  // context read this to fold the caller's budget into the child's.
  int64_t evaluation_budget() const { return evaluation_budget_; }

  // Thread-safe: may be called from another thread while a search runs;
  // every subsequent ShouldStop() poll reports kCancelled.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Links this context under `parent`: every ShouldStop() poll also honors
  // the parent's cancellation and deadline (recursively up the chain), so a
  // global stop reaches a search that is running under a narrower child
  // context. The parent's evaluation *budget* is deliberately not
  // inherited — budgets are counted against the poller's own evaluation
  // counter and would double-apply across levels. The parent must outlive
  // this context; the durable-job supervisor uses this to carve a per-pair
  // watchdog time slice out of the global run deadline.
  void SetParent(const RunContext* parent) { parent_ = parent; }
  const RunContext* parent() const { return parent_; }

  bool HasLimits() const {
    return deadline_.has_value() || evaluation_budget_ > 0 ||
           cancel_requested() || (parent_ != nullptr && parent_->HasLimits());
  }

  // nullopt while the run may continue, otherwise the reason to stop.
  // `evaluations_used` is compared against the evaluation budget.
  std::optional<StopReason> ShouldStop(int64_t evaluations_used = 0) const {
    if (parent_ != nullptr) {
      // Budget-free poll: the parent's budget applies to searches polling
      // the parent directly, not to grandchildren with their own counters.
      if (const std::optional<StopReason> s = parent_->ShouldStop(0)) {
        if (*s != StopReason::kBudgetExhausted) return s;
      }
    }
    if (cancel_requested()) return StopReason::kCancelled;
    if (evaluation_budget_ > 0 && evaluations_used >= evaluation_budget_) {
      return StopReason::kBudgetExhausted;
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      return StopReason::kDeadlineExceeded;
    }
    return std::nullopt;
  }

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> cancelled_{false};
  std::optional<Clock::time_point> deadline_;
  int64_t evaluation_budget_ = 0;  // 0 = unlimited
  const RunContext* parent_ = nullptr;
};

}  // namespace tycos

#endif  // TYCOS_COMMON_RUN_CONTEXT_H_
