#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "audit/audit.h"
#include "common/check.h"

namespace tycos {

ThreadPool::ThreadPool(int num_workers) {
  TYCOS_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  TYCOS_CHECK_GT(num_workers(), 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ForStatus ThreadPool::ParallelFor(
    int64_t n, const RunContext& ctx,
    const std::function<std::optional<StopReason>(int64_t)>& body) {
  struct LoopState {
    std::atomic<int64_t> next{0};
    std::atomic<bool> stopped{false};
    std::atomic<int> reason{-1};  // first StopReason recorded, -1 = none
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;  // helper tasks still running
  } state;

  auto record_stop = [&state](StopReason r) {
    int expected = -1;
    state.reason.compare_exchange_strong(expected, static_cast<int>(r),
                                         std::memory_order_relaxed);
    state.stopped.store(true, std::memory_order_release);
  };

#if TYCOS_AUDIT_ENABLED
  // Prefix-claim audit: every executed index is marked by the executor that
  // claimed it; after the join the marks must form exactly [0, claimed).
  // std::atomic value-initializes in C++20, so the vector starts all-zero.
  std::vector<std::atomic<char>> executed(static_cast<size_t>(n));
#endif

  // Every executor claims indices in order from the shared counter. A claim
  // below n is always executed, so the executed set stays a prefix even when
  // a stop lands mid-loop.
  auto drain = [&] {
    while (!state.stopped.load(std::memory_order_acquire)) {
      if (const std::optional<StopReason> s = ctx.ShouldStop()) {
        record_stop(*s);
        break;
      }
      const int64_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
#if TYCOS_AUDIT_ENABLED
      executed[static_cast<size_t>(i)].store(1, std::memory_order_relaxed);
#endif
      if (const std::optional<StopReason> s = body(i)) record_stop(*s);
    }
  };

  // No point waking more helpers than there are indices beyond the caller's
  // own share.
  const int helpers = static_cast<int>(
      std::min<int64_t>(num_workers(), std::max<int64_t>(n - 1, 0)));
  state.pending = helpers;
  for (int h = 0; h < helpers; ++h) {
    Submit([&state, &drain] {
      drain();
      // Notify under the lock: `state` lives on the caller's stack and is
      // destroyed as soon as the waiter observes pending == 0, so the signal
      // must complete before this task releases the mutex.
      std::lock_guard<std::mutex> lock(state.mu);
      --state.pending;
      state.cv.notify_one();
    });
  }

  drain();

  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.cv.wait(lock, [&state] { return state.pending == 0; });
  }

  ForStatus status;
  status.claimed = std::min<int64_t>(n, state.next.load());
  const int reason = state.reason.load();
  if (reason >= 0) status.stop = static_cast<StopReason>(reason);

#if TYCOS_AUDIT_ENABLED
  {
    // The determinism contract of the parallel engine: the executed index
    // set is exactly the prefix [0, claimed), regardless of thread count
    // and stop timing. Holes or overshoot here mean torn result slots.
    static audit::Auditor* prefix_audit =
        audit::Get("thread_pool_prefix_claim");
    int64_t first_bad = -1;
    for (int64_t i = 0; i < n; ++i) {
      const bool ran = executed[static_cast<size_t>(i)].load(
                           std::memory_order_relaxed) != 0;
      if (ran != (i < status.claimed)) {
        first_bad = i;
        break;
      }
    }
    TYCOS_AUDIT_CHECK(
        prefix_audit, first_bad < 0,
        "ParallelFor executed set is not the prefix [0, " +
            std::to_string(status.claimed) + "): index " +
            std::to_string(first_bad) + " of n=" + std::to_string(n) +
            (first_bad < status.claimed ? " was skipped" : " was executed"));
  }
#endif
  return status;
}

}  // namespace tycos
