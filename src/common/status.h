// Status / Result<T>: exception-free recoverable error handling, in the
// style of absl::Status / arrow::Result.

#ifndef TYCOS_COMMON_STATUS_H_
#define TYCOS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace tycos {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kInternal,
  // Transiently refused or failed work that is safe to retry later: an
  // admission gate shedding load, a watchdog slice expiring, a flaky
  // dependency. The supervisor (src/jobs/supervisor.h) classifies this
  // code — like kIoError — as transient and retries with backoff.
  kUnavailable,
};

// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    TYCOS_CHECK(!status_.ok());  // A Result error must carry a real error.
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TYCOS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    TYCOS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    TYCOS_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

}  // namespace tycos

#endif  // TYCOS_COMMON_STATUS_H_
