#include "common/strings.h"

#include <cctype>
#include <cstdlib>

namespace tycos {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(begin));
      return parts;
    }
    parts.emplace_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, long long* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace tycos
