// Small string helpers shared by the CSV reader and report printers.

#ifndef TYCOS_COMMON_STRINGS_H_
#define TYCOS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tycos {

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Parses a double; returns false on malformed or trailing-garbage input.
bool ParseDouble(std::string_view s, double* out);

// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, long long* out);

}  // namespace tycos

#endif  // TYCOS_COMMON_STRINGS_H_
