#include "common/run_context.h"

namespace tycos {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted:
      return "completed";
    case StopReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kBudgetExhausted:
      return "budget_exhausted";
    case StopReason::kPaused:
      return "paused";
  }
  return "unknown";
}

const RunContext& RunContext::None() {
  static const RunContext ctx;
  return ctx;
}

}  // namespace tycos
