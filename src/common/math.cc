#include "common/math.h"

#include <cmath>

#include "common/check.h"

namespace tycos {

double Digamma(double x) {
  TYCOS_CHECK_GT(x, 0.0);
  double result = 0.0;
  // Recurrence: ψ(x) = ψ(x+1) − 1/x.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion in 1/x²; truncation error < 1e-13 for x >= 12.
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

DigammaTable::DigammaTable(size_t initial_capacity) {
  table_.reserve(initial_capacity);
  table_.push_back(-kEulerGamma);  // ψ(1)
}

double DigammaTable::operator()(size_t n) {
  TYCOS_CHECK_GE(n, 1u);
  while (table_.size() < n) {
    // ψ(n+1) = ψ(n) + 1/n.
    table_.push_back(table_.back() + 1.0 / static_cast<double>(table_.size()));
  }
  return table_[n - 1];
}

double LogFactorial(unsigned n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0, c = 0.0;
  for (double x : v) {
    double y = x - c;
    double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(v.size());
}

}  // namespace tycos
