#include "common/stopwatch.h"

namespace tycos {

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace tycos
