// Special functions and small numeric helpers used by the MI estimators.

#ifndef TYCOS_COMMON_MATH_H_
#define TYCOS_COMMON_MATH_H_

#include <cstddef>
#include <vector>

namespace tycos {

// Euler–Mascheroni constant (ψ(1) = -kEulerGamma).
inline constexpr double kEulerGamma = 0.57721566490153286060651209008240243;

// Digamma function ψ(x) for x > 0.
//
// Uses the recurrence ψ(x) = ψ(x+1) − 1/x to push the argument above 6 and
// then the asymptotic expansion
//   ψ(x) ≈ ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶).
// Absolute error is below 1e-12 for all x ≥ 1, which is far tighter than the
// statistical error of the KSG estimator itself.
double Digamma(double x);

// Cached ψ(1), ψ(2), ..., ψ(n) lookups for the integer arguments the KSG
// estimator hammers on. Grows on demand; not thread-safe by design (the
// search is single-threaded; estimators own private tables).
class DigammaTable {
 public:
  explicit DigammaTable(size_t initial_capacity = 1024);

  // ψ(n) for integer n ≥ 1.
  double operator()(size_t n);

 private:
  std::vector<double> table_;  // table_[i] = ψ(i+1)
};

// Natural log of n! via lgamma; used by histogram estimators.
double LogFactorial(unsigned n);

// Numerically stable mean of a vector (Kahan summation). Returns 0 for empty
// input.
double Mean(const std::vector<double>& v);

// Population variance (divides by n). Returns 0 for fewer than 2 elements.
double Variance(const std::vector<double>& v);

// True when |a - b| <= tol (absolute tolerance).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  double d = a - b;
  return (d < 0 ? -d : d) <= tol;
}

}  // namespace tycos

#endif  // TYCOS_COMMON_MATH_H_
