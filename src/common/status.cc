#include "common/status.h"

namespace tycos {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace tycos
