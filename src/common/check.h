// Lightweight invariant-checking macros.
//
// TYCOS_CHECK is always on (including release builds) and aborts with a
// source-located message when the condition fails. It is intended for
// programming errors (broken invariants, precondition violations), not for
// recoverable errors — those return Status/Result instead.

#ifndef TYCOS_COMMON_CHECK_H_
#define TYCOS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define TYCOS_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "TYCOS_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define TYCOS_CHECK_OP(a, op, b)                                            \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      std::fprintf(stderr, "TYCOS_CHECK failed at %s:%d: %s %s %s\n",       \
                   __FILE__, __LINE__, #a, #op, #b);                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TYCOS_CHECK_EQ(a, b) TYCOS_CHECK_OP(a, ==, b)
#define TYCOS_CHECK_NE(a, b) TYCOS_CHECK_OP(a, !=, b)
#define TYCOS_CHECK_LT(a, b) TYCOS_CHECK_OP(a, <, b)
#define TYCOS_CHECK_LE(a, b) TYCOS_CHECK_OP(a, <=, b)
#define TYCOS_CHECK_GT(a, b) TYCOS_CHECK_OP(a, >, b)
#define TYCOS_CHECK_GE(a, b) TYCOS_CHECK_OP(a, >=, b)

#endif  // TYCOS_COMMON_CHECK_H_
