// Deterministic random number generation.
//
// All randomness in the library (LAHC history sampling, synthetic data,
// jitter) flows through Rng so experiments are reproducible from a seed.

#ifndef TYCOS_COMMON_RNG_H_
#define TYCOS_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace tycos {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Normal with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Poisson with the given rate (rate <= 0 yields 0).
  int64_t Poisson(double rate) {
    if (rate <= 0.0) return 0;
    return std::poisson_distribution<int64_t>(rate)(engine_);
  }

  // Bernoulli with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tycos

#endif  // TYCOS_COMMON_RNG_H_
