// Deterministic random number generation.
//
// All randomness in the library (LAHC history sampling, synthetic data,
// jitter) flows through Rng so experiments are reproducible from a seed.

#ifndef TYCOS_COMMON_RNG_H_
#define TYCOS_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace tycos {

// SplitMix64 (Steele, Lea & Flood): one full mixing round. Used to derive
// statistically independent seed streams from a (seed, stream) pair so
// concurrent climbs/searches can each own an Rng whose sequence depends only
// on its logical index, never on scheduling.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Seed for logical stream `stream` of a generator rooted at `seed`.
inline uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  return SplitMix64(SplitMix64(seed) ^ SplitMix64(stream + 1));
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Normal with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Poisson with the given rate (rate <= 0 yields 0).
  int64_t Poisson(double rate) {
    if (rate <= 0.0) return 0;
    return std::poisson_distribution<int64_t>(rate)(engine_);
  }

  // Bernoulli with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tycos

#endif  // TYCOS_COMMON_RNG_H_
