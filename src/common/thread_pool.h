// ThreadPool: a fixed-size task-queue thread pool plus a RunContext-aware
// ParallelFor helper — the execution substrate of the parallel search
// engine (pairwise fan-out, multi-restart climbs, bench drivers).
//
// Determinism contract: ParallelFor claims indices in order from a shared
// counter, so the set of executed indices is always a prefix [0, claimed).
// Callers that store per-index results into pre-sized slots and merge them
// in index order after the loop get results that are bit-identical at any
// thread count. Deadline / cancellation stops propagate to every worker:
// once the RunContext fires (or a body reports a stop), no new indices are
// claimed; indices already claimed always run to completion, so a slot is
// never left torn.

#ifndef TYCOS_COMMON_THREAD_POOL_H_
#define TYCOS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/run_context.h"

namespace tycos {

class ThreadPool {
 public:
  // Spawns `num_workers` background threads. 0 is valid: the pool then has
  // no threads and ParallelFor runs entirely inline on the calling thread —
  // the exact sequential reference path.
  explicit ThreadPool(int num_workers);

  // Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task for the workers; CHECKs when the pool has none (a task
  // submitted to an empty pool would never run).
  void Submit(std::function<void()> task);

  // Maps a user-facing thread-count request to an executor count:
  // >= 1 is taken as given, <= 0 means one executor per hardware thread.
  static int ResolveThreadCount(int requested);

  struct ForStatus {
    int64_t claimed = 0;  // indices executed — always the prefix [0, claimed)
    std::optional<StopReason> stop;  // first stop observed, if any
  };

  // Runs body(i) for i in [0, n), fanning across the workers with the
  // calling thread participating (so a pool with W workers gives W + 1
  // executors). Before claiming each index, every executor polls `ctx`;
  // a deadline / cancellation there — or a StopReason returned by a body —
  // halts all further claims. The first stop observed is reported back.
  // Bodies for distinct indices run concurrently and must not share mutable
  // state; all body effects are visible to the caller on return.
  //
  // Must not be called from inside a task of the same pool.
  ForStatus ParallelFor(
      int64_t n, const RunContext& ctx,
      const std::function<std::optional<StopReason>(int64_t)>& body);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tycos

#endif  // TYCOS_COMMON_THREAD_POOL_H_
