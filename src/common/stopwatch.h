// Wall-clock stopwatch used by the benchmark drivers.

#ifndef TYCOS_COMMON_STOPWATCH_H_
#define TYCOS_COMMON_STOPWATCH_H_

#include <chrono>

namespace tycos {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  // Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tycos

#endif  // TYCOS_COMMON_STOPWATCH_H_
