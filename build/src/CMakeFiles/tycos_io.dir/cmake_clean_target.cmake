file(REMOVE_RECURSE
  "libtycos_io.a"
)
