
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/tycos_io.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/tycos_io.dir/io/csv.cc.o.d"
  "/root/repo/src/io/report.cc" "src/CMakeFiles/tycos_io.dir/io/report.cc.o" "gcc" "src/CMakeFiles/tycos_io.dir/io/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_mi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
