file(REMOVE_RECURSE
  "CMakeFiles/tycos_io.dir/io/csv.cc.o"
  "CMakeFiles/tycos_io.dir/io/csv.cc.o.d"
  "CMakeFiles/tycos_io.dir/io/report.cc.o"
  "CMakeFiles/tycos_io.dir/io/report.cc.o.d"
  "libtycos_io.a"
  "libtycos_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
