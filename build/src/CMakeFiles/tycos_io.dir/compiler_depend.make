# Empty compiler generated dependencies file for tycos_io.
# This may be replaced when dependencies are built.
