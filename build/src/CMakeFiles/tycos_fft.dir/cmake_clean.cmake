file(REMOVE_RECURSE
  "CMakeFiles/tycos_fft.dir/fft/fft.cc.o"
  "CMakeFiles/tycos_fft.dir/fft/fft.cc.o.d"
  "CMakeFiles/tycos_fft.dir/fft/sliding_dot.cc.o"
  "CMakeFiles/tycos_fft.dir/fft/sliding_dot.cc.o.d"
  "libtycos_fft.a"
  "libtycos_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
