file(REMOVE_RECURSE
  "libtycos_fft.a"
)
