# Empty compiler generated dependencies file for tycos_fft.
# This may be replaced when dependencies are built.
