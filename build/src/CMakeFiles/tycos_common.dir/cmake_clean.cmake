file(REMOVE_RECURSE
  "CMakeFiles/tycos_common.dir/common/math.cc.o"
  "CMakeFiles/tycos_common.dir/common/math.cc.o.d"
  "CMakeFiles/tycos_common.dir/common/status.cc.o"
  "CMakeFiles/tycos_common.dir/common/status.cc.o.d"
  "CMakeFiles/tycos_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/tycos_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/tycos_common.dir/common/strings.cc.o"
  "CMakeFiles/tycos_common.dir/common/strings.cc.o.d"
  "libtycos_common.a"
  "libtycos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
