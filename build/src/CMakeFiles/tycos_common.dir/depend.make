# Empty dependencies file for tycos_common.
# This may be replaced when dependencies are built.
