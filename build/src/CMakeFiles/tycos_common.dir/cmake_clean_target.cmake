file(REMOVE_RECURSE
  "libtycos_common.a"
)
