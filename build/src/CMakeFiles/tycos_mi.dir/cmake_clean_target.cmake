file(REMOVE_RECURSE
  "libtycos_mi.a"
)
