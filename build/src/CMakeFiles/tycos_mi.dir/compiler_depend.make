# Empty compiler generated dependencies file for tycos_mi.
# This may be replaced when dependencies are built.
