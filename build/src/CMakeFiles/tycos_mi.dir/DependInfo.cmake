
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mi/cmi.cc" "src/CMakeFiles/tycos_mi.dir/mi/cmi.cc.o" "gcc" "src/CMakeFiles/tycos_mi.dir/mi/cmi.cc.o.d"
  "/root/repo/src/mi/entropy.cc" "src/CMakeFiles/tycos_mi.dir/mi/entropy.cc.o" "gcc" "src/CMakeFiles/tycos_mi.dir/mi/entropy.cc.o.d"
  "/root/repo/src/mi/histogram_mi.cc" "src/CMakeFiles/tycos_mi.dir/mi/histogram_mi.cc.o" "gcc" "src/CMakeFiles/tycos_mi.dir/mi/histogram_mi.cc.o.d"
  "/root/repo/src/mi/incremental_ksg.cc" "src/CMakeFiles/tycos_mi.dir/mi/incremental_ksg.cc.o" "gcc" "src/CMakeFiles/tycos_mi.dir/mi/incremental_ksg.cc.o.d"
  "/root/repo/src/mi/ksg.cc" "src/CMakeFiles/tycos_mi.dir/mi/ksg.cc.o" "gcc" "src/CMakeFiles/tycos_mi.dir/mi/ksg.cc.o.d"
  "/root/repo/src/mi/pearson.cc" "src/CMakeFiles/tycos_mi.dir/mi/pearson.cc.o" "gcc" "src/CMakeFiles/tycos_mi.dir/mi/pearson.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
