file(REMOVE_RECURSE
  "CMakeFiles/tycos_mi.dir/mi/cmi.cc.o"
  "CMakeFiles/tycos_mi.dir/mi/cmi.cc.o.d"
  "CMakeFiles/tycos_mi.dir/mi/entropy.cc.o"
  "CMakeFiles/tycos_mi.dir/mi/entropy.cc.o.d"
  "CMakeFiles/tycos_mi.dir/mi/histogram_mi.cc.o"
  "CMakeFiles/tycos_mi.dir/mi/histogram_mi.cc.o.d"
  "CMakeFiles/tycos_mi.dir/mi/incremental_ksg.cc.o"
  "CMakeFiles/tycos_mi.dir/mi/incremental_ksg.cc.o.d"
  "CMakeFiles/tycos_mi.dir/mi/ksg.cc.o"
  "CMakeFiles/tycos_mi.dir/mi/ksg.cc.o.d"
  "CMakeFiles/tycos_mi.dir/mi/pearson.cc.o"
  "CMakeFiles/tycos_mi.dir/mi/pearson.cc.o.d"
  "libtycos_mi.a"
  "libtycos_mi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_mi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
