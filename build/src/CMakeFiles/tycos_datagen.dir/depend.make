# Empty dependencies file for tycos_datagen.
# This may be replaced when dependencies are built.
