file(REMOVE_RECURSE
  "libtycos_datagen.a"
)
