file(REMOVE_RECURSE
  "CMakeFiles/tycos_datagen.dir/datagen/energy_sim.cc.o"
  "CMakeFiles/tycos_datagen.dir/datagen/energy_sim.cc.o.d"
  "CMakeFiles/tycos_datagen.dir/datagen/relations.cc.o"
  "CMakeFiles/tycos_datagen.dir/datagen/relations.cc.o.d"
  "CMakeFiles/tycos_datagen.dir/datagen/smart_city_sim.cc.o"
  "CMakeFiles/tycos_datagen.dir/datagen/smart_city_sim.cc.o.d"
  "libtycos_datagen.a"
  "libtycos_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
