
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/energy_sim.cc" "src/CMakeFiles/tycos_datagen.dir/datagen/energy_sim.cc.o" "gcc" "src/CMakeFiles/tycos_datagen.dir/datagen/energy_sim.cc.o.d"
  "/root/repo/src/datagen/relations.cc" "src/CMakeFiles/tycos_datagen.dir/datagen/relations.cc.o" "gcc" "src/CMakeFiles/tycos_datagen.dir/datagen/relations.cc.o.d"
  "/root/repo/src/datagen/smart_city_sim.cc" "src/CMakeFiles/tycos_datagen.dir/datagen/smart_city_sim.cc.o" "gcc" "src/CMakeFiles/tycos_datagen.dir/datagen/smart_city_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
