# Empty compiler generated dependencies file for tycos_knn.
# This may be replaced when dependencies are built.
