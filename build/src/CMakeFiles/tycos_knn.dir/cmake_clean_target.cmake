file(REMOVE_RECURSE
  "libtycos_knn.a"
)
