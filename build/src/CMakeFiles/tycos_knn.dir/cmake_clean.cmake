file(REMOVE_RECURSE
  "CMakeFiles/tycos_knn.dir/knn/brute_knn.cc.o"
  "CMakeFiles/tycos_knn.dir/knn/brute_knn.cc.o.d"
  "CMakeFiles/tycos_knn.dir/knn/grid_index.cc.o"
  "CMakeFiles/tycos_knn.dir/knn/grid_index.cc.o.d"
  "CMakeFiles/tycos_knn.dir/knn/kd_tree.cc.o"
  "CMakeFiles/tycos_knn.dir/knn/kd_tree.cc.o.d"
  "CMakeFiles/tycos_knn.dir/knn/rank_index.cc.o"
  "CMakeFiles/tycos_knn.dir/knn/rank_index.cc.o.d"
  "libtycos_knn.a"
  "libtycos_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
