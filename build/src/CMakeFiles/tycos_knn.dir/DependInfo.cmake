
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knn/brute_knn.cc" "src/CMakeFiles/tycos_knn.dir/knn/brute_knn.cc.o" "gcc" "src/CMakeFiles/tycos_knn.dir/knn/brute_knn.cc.o.d"
  "/root/repo/src/knn/grid_index.cc" "src/CMakeFiles/tycos_knn.dir/knn/grid_index.cc.o" "gcc" "src/CMakeFiles/tycos_knn.dir/knn/grid_index.cc.o.d"
  "/root/repo/src/knn/kd_tree.cc" "src/CMakeFiles/tycos_knn.dir/knn/kd_tree.cc.o" "gcc" "src/CMakeFiles/tycos_knn.dir/knn/kd_tree.cc.o.d"
  "/root/repo/src/knn/rank_index.cc" "src/CMakeFiles/tycos_knn.dir/knn/rank_index.cc.o" "gcc" "src/CMakeFiles/tycos_knn.dir/knn/rank_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
