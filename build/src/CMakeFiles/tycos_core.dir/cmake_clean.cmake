file(REMOVE_RECURSE
  "CMakeFiles/tycos_core.dir/core/time_series.cc.o"
  "CMakeFiles/tycos_core.dir/core/time_series.cc.o.d"
  "CMakeFiles/tycos_core.dir/core/window.cc.o"
  "CMakeFiles/tycos_core.dir/core/window.cc.o.d"
  "CMakeFiles/tycos_core.dir/core/window_set.cc.o"
  "CMakeFiles/tycos_core.dir/core/window_set.cc.o.d"
  "CMakeFiles/tycos_core.dir/core/window_similarity.cc.o"
  "CMakeFiles/tycos_core.dir/core/window_similarity.cc.o.d"
  "libtycos_core.a"
  "libtycos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
