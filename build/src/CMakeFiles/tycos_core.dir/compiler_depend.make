# Empty compiler generated dependencies file for tycos_core.
# This may be replaced when dependencies are built.
