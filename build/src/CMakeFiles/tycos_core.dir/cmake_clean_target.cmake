file(REMOVE_RECURSE
  "libtycos_core.a"
)
