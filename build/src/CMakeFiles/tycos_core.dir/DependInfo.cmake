
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/time_series.cc" "src/CMakeFiles/tycos_core.dir/core/time_series.cc.o" "gcc" "src/CMakeFiles/tycos_core.dir/core/time_series.cc.o.d"
  "/root/repo/src/core/window.cc" "src/CMakeFiles/tycos_core.dir/core/window.cc.o" "gcc" "src/CMakeFiles/tycos_core.dir/core/window.cc.o.d"
  "/root/repo/src/core/window_set.cc" "src/CMakeFiles/tycos_core.dir/core/window_set.cc.o" "gcc" "src/CMakeFiles/tycos_core.dir/core/window_set.cc.o.d"
  "/root/repo/src/core/window_similarity.cc" "src/CMakeFiles/tycos_core.dir/core/window_similarity.cc.o" "gcc" "src/CMakeFiles/tycos_core.dir/core/window_similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
