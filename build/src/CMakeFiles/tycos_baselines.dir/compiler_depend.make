# Empty compiler generated dependencies file for tycos_baselines.
# This may be replaced when dependencies are built.
