file(REMOVE_RECURSE
  "CMakeFiles/tycos_baselines.dir/baselines/amic.cc.o"
  "CMakeFiles/tycos_baselines.dir/baselines/amic.cc.o.d"
  "CMakeFiles/tycos_baselines.dir/baselines/mass.cc.o"
  "CMakeFiles/tycos_baselines.dir/baselines/mass.cc.o.d"
  "CMakeFiles/tycos_baselines.dir/baselines/matrix_profile.cc.o"
  "CMakeFiles/tycos_baselines.dir/baselines/matrix_profile.cc.o.d"
  "CMakeFiles/tycos_baselines.dir/baselines/pcc_search.cc.o"
  "CMakeFiles/tycos_baselines.dir/baselines/pcc_search.cc.o.d"
  "libtycos_baselines.a"
  "libtycos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
