file(REMOVE_RECURSE
  "libtycos_baselines.a"
)
