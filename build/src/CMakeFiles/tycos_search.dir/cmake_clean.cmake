file(REMOVE_RECURSE
  "CMakeFiles/tycos_search.dir/search/brute_force_search.cc.o"
  "CMakeFiles/tycos_search.dir/search/brute_force_search.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/evaluator.cc.o"
  "CMakeFiles/tycos_search.dir/search/evaluator.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/lahc.cc.o"
  "CMakeFiles/tycos_search.dir/search/lahc.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/noise.cc.o"
  "CMakeFiles/tycos_search.dir/search/noise.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/pairwise.cc.o"
  "CMakeFiles/tycos_search.dir/search/pairwise.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/params.cc.o"
  "CMakeFiles/tycos_search.dir/search/params.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/significance.cc.o"
  "CMakeFiles/tycos_search.dir/search/significance.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/streaming.cc.o"
  "CMakeFiles/tycos_search.dir/search/streaming.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/top_k.cc.o"
  "CMakeFiles/tycos_search.dir/search/top_k.cc.o.d"
  "CMakeFiles/tycos_search.dir/search/tycos.cc.o"
  "CMakeFiles/tycos_search.dir/search/tycos.cc.o.d"
  "libtycos_search.a"
  "libtycos_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycos_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
