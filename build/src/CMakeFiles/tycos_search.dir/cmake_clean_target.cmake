file(REMOVE_RECURSE
  "libtycos_search.a"
)
