# Empty dependencies file for tycos_search.
# This may be replaced when dependencies are built.
