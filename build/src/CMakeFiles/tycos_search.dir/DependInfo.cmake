
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/brute_force_search.cc" "src/CMakeFiles/tycos_search.dir/search/brute_force_search.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/brute_force_search.cc.o.d"
  "/root/repo/src/search/evaluator.cc" "src/CMakeFiles/tycos_search.dir/search/evaluator.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/evaluator.cc.o.d"
  "/root/repo/src/search/lahc.cc" "src/CMakeFiles/tycos_search.dir/search/lahc.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/lahc.cc.o.d"
  "/root/repo/src/search/noise.cc" "src/CMakeFiles/tycos_search.dir/search/noise.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/noise.cc.o.d"
  "/root/repo/src/search/pairwise.cc" "src/CMakeFiles/tycos_search.dir/search/pairwise.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/pairwise.cc.o.d"
  "/root/repo/src/search/params.cc" "src/CMakeFiles/tycos_search.dir/search/params.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/params.cc.o.d"
  "/root/repo/src/search/significance.cc" "src/CMakeFiles/tycos_search.dir/search/significance.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/significance.cc.o.d"
  "/root/repo/src/search/streaming.cc" "src/CMakeFiles/tycos_search.dir/search/streaming.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/streaming.cc.o.d"
  "/root/repo/src/search/top_k.cc" "src/CMakeFiles/tycos_search.dir/search/top_k.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/top_k.cc.o.d"
  "/root/repo/src/search/tycos.cc" "src/CMakeFiles/tycos_search.dir/search/tycos.cc.o" "gcc" "src/CMakeFiles/tycos_search.dir/search/tycos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_mi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
