# Empty compiler generated dependencies file for fig10_baselines.
# This may be replaced when dependencies are built.
