file(REMOVE_RECURSE
  "CMakeFiles/fig10_baselines.dir/fig10_baselines.cc.o"
  "CMakeFiles/fig10_baselines.dir/fig10_baselines.cc.o.d"
  "fig10_baselines"
  "fig10_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
