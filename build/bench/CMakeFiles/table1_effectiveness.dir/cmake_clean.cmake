file(REMOVE_RECURSE
  "CMakeFiles/table1_effectiveness.dir/table1_effectiveness.cc.o"
  "CMakeFiles/table1_effectiveness.dir/table1_effectiveness.cc.o.d"
  "table1_effectiveness"
  "table1_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
