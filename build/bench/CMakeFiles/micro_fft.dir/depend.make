# Empty dependencies file for micro_fft.
# This may be replaced when dependencies are built.
