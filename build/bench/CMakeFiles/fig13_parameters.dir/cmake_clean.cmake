file(REMOVE_RECURSE
  "CMakeFiles/fig13_parameters.dir/fig13_parameters.cc.o"
  "CMakeFiles/fig13_parameters.dir/fig13_parameters.cc.o.d"
  "fig13_parameters"
  "fig13_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
