# Empty compiler generated dependencies file for fig13_parameters.
# This may be replaced when dependencies are built.
