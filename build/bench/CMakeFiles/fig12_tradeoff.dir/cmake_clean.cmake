file(REMOVE_RECURSE
  "CMakeFiles/fig12_tradeoff.dir/fig12_tradeoff.cc.o"
  "CMakeFiles/fig12_tradeoff.dir/fig12_tradeoff.cc.o.d"
  "fig12_tradeoff"
  "fig12_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
