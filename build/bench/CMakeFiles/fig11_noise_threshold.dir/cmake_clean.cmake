file(REMOVE_RECURSE
  "CMakeFiles/fig11_noise_threshold.dir/fig11_noise_threshold.cc.o"
  "CMakeFiles/fig11_noise_threshold.dir/fig11_noise_threshold.cc.o.d"
  "fig11_noise_threshold"
  "fig11_noise_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_noise_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
