# Empty compiler generated dependencies file for fig11_noise_threshold.
# This may be replaced when dependencies are built.
