# Empty compiler generated dependencies file for micro_ksg.
# This may be replaced when dependencies are built.
