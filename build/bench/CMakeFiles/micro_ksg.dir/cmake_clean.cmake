file(REMOVE_RECURSE
  "CMakeFiles/micro_ksg.dir/micro_ksg.cc.o"
  "CMakeFiles/micro_ksg.dir/micro_ksg.cc.o.d"
  "micro_ksg"
  "micro_ksg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ksg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
