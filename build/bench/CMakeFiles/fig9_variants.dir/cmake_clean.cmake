file(REMOVE_RECURSE
  "CMakeFiles/fig9_variants.dir/fig9_variants.cc.o"
  "CMakeFiles/fig9_variants.dir/fig9_variants.cc.o.d"
  "fig9_variants"
  "fig9_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
