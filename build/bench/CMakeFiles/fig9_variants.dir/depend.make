# Empty dependencies file for fig9_variants.
# This may be replaced when dependencies are built.
