# Empty compiler generated dependencies file for energy_analysis.
# This may be replaced when dependencies are built.
