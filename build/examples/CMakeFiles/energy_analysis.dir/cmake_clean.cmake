file(REMOVE_RECURSE
  "CMakeFiles/energy_analysis.dir/energy_analysis.cpp.o"
  "CMakeFiles/energy_analysis.dir/energy_analysis.cpp.o.d"
  "energy_analysis"
  "energy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
