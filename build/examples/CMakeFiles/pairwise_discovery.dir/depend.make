# Empty dependencies file for pairwise_discovery.
# This may be replaced when dependencies are built.
