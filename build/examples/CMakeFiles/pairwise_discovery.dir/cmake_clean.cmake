file(REMOVE_RECURSE
  "CMakeFiles/pairwise_discovery.dir/pairwise_discovery.cpp.o"
  "CMakeFiles/pairwise_discovery.dir/pairwise_discovery.cpp.o.d"
  "pairwise_discovery"
  "pairwise_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
