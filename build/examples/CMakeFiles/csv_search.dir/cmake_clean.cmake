file(REMOVE_RECURSE
  "CMakeFiles/csv_search.dir/csv_search.cpp.o"
  "CMakeFiles/csv_search.dir/csv_search.cpp.o.d"
  "csv_search"
  "csv_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
