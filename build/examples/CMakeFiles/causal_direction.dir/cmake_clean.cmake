file(REMOVE_RECURSE
  "CMakeFiles/causal_direction.dir/causal_direction.cpp.o"
  "CMakeFiles/causal_direction.dir/causal_direction.cpp.o.d"
  "causal_direction"
  "causal_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
