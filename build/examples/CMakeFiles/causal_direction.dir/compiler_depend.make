# Empty compiler generated dependencies file for causal_direction.
# This may be replaced when dependencies are built.
