# Empty dependencies file for stock_correlation.
# This may be replaced when dependencies are built.
