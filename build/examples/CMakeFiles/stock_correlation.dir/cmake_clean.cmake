file(REMOVE_RECURSE
  "CMakeFiles/stock_correlation.dir/stock_correlation.cpp.o"
  "CMakeFiles/stock_correlation.dir/stock_correlation.cpp.o.d"
  "stock_correlation"
  "stock_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
