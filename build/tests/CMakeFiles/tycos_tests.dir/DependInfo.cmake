
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/amic_test.cc" "tests/CMakeFiles/tycos_tests.dir/amic_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/amic_test.cc.o.d"
  "/root/repo/tests/brute_force_test.cc" "tests/CMakeFiles/tycos_tests.dir/brute_force_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/brute_force_test.cc.o.d"
  "/root/repo/tests/cmi_test.cc" "tests/CMakeFiles/tycos_tests.dir/cmi_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/cmi_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/tycos_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/tycos_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/entropy_test.cc" "tests/CMakeFiles/tycos_tests.dir/entropy_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/entropy_test.cc.o.d"
  "/root/repo/tests/evaluator_test.cc" "tests/CMakeFiles/tycos_tests.dir/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/evaluator_test.cc.o.d"
  "/root/repo/tests/fft_test.cc" "tests/CMakeFiles/tycos_tests.dir/fft_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/fft_test.cc.o.d"
  "/root/repo/tests/incremental_ksg_test.cc" "tests/CMakeFiles/tycos_tests.dir/incremental_ksg_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/incremental_ksg_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tycos_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/knn_test.cc" "tests/CMakeFiles/tycos_tests.dir/knn_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/knn_test.cc.o.d"
  "/root/repo/tests/ksg_test.cc" "tests/CMakeFiles/tycos_tests.dir/ksg_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/ksg_test.cc.o.d"
  "/root/repo/tests/lahc_test.cc" "tests/CMakeFiles/tycos_tests.dir/lahc_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/lahc_test.cc.o.d"
  "/root/repo/tests/mass_test.cc" "tests/CMakeFiles/tycos_tests.dir/mass_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/mass_test.cc.o.d"
  "/root/repo/tests/math_test.cc" "tests/CMakeFiles/tycos_tests.dir/math_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/math_test.cc.o.d"
  "/root/repo/tests/matrix_profile_test.cc" "tests/CMakeFiles/tycos_tests.dir/matrix_profile_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/matrix_profile_test.cc.o.d"
  "/root/repo/tests/noise_test.cc" "tests/CMakeFiles/tycos_tests.dir/noise_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/noise_test.cc.o.d"
  "/root/repo/tests/pairwise_test.cc" "tests/CMakeFiles/tycos_tests.dir/pairwise_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/pairwise_test.cc.o.d"
  "/root/repo/tests/pearson_test.cc" "tests/CMakeFiles/tycos_tests.dir/pearson_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/pearson_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tycos_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/tycos_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/significance_test.cc" "tests/CMakeFiles/tycos_tests.dir/significance_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/significance_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/tycos_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/streaming_test.cc" "tests/CMakeFiles/tycos_tests.dir/streaming_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/streaming_test.cc.o.d"
  "/root/repo/tests/strings_test.cc" "tests/CMakeFiles/tycos_tests.dir/strings_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/strings_test.cc.o.d"
  "/root/repo/tests/theiler_test.cc" "tests/CMakeFiles/tycos_tests.dir/theiler_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/theiler_test.cc.o.d"
  "/root/repo/tests/time_series_test.cc" "tests/CMakeFiles/tycos_tests.dir/time_series_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/time_series_test.cc.o.d"
  "/root/repo/tests/top_k_test.cc" "tests/CMakeFiles/tycos_tests.dir/top_k_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/top_k_test.cc.o.d"
  "/root/repo/tests/tycos_test.cc" "tests/CMakeFiles/tycos_tests.dir/tycos_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/tycos_test.cc.o.d"
  "/root/repo/tests/window_set_test.cc" "tests/CMakeFiles/tycos_tests.dir/window_set_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/window_set_test.cc.o.d"
  "/root/repo/tests/window_similarity_test.cc" "tests/CMakeFiles/tycos_tests.dir/window_similarity_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/window_similarity_test.cc.o.d"
  "/root/repo/tests/window_test.cc" "tests/CMakeFiles/tycos_tests.dir/window_test.cc.o" "gcc" "tests/CMakeFiles/tycos_tests.dir/window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tycos_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_mi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tycos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
