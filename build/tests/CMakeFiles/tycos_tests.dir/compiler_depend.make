# Empty compiler generated dependencies file for tycos_tests.
# This may be replaced when dependencies are built.
