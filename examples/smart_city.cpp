// Smart-city example: how does weather drive traffic incidents, and with
// what delay? Reproduces the paper's C7–C10 analyses on the simulated
// NYC-style dataset, including the asymmetry the paper highlights: rain
// impacts pedestrians more than motorists, wind the other way around.
//
//   $ ./build/examples/smart_city [days]

#include <cstdio>
#include <cstdlib>

#include "datagen/smart_city_sim.h"
#include "search/tycos.h"

namespace {

using tycos::datagen::CityChannel;

struct Analysis {
  const char* label;
  CityChannel weather;
  CityChannel incident;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tycos;

  datagen::SmartCitySimOptions sim_options;
  sim_options.days = argc > 1 ? std::atoi(argv[1]) : 14;
  sim_options.samples_per_hour = 4;  // 15-minute resolution
  const datagen::SmartCitySimulator sim(sim_options);
  std::printf("simulated %d days of city data (%lld samples/channel)\n\n",
              sim_options.days, static_cast<long long>(sim.length()));

  const Analysis analyses[] = {
      {"C7  Precipitation vs Collisions", CityChannel::kPrecipitation,
       CityChannel::kCollisions},
      {"C8  WindSpeed vs Collisions", CityChannel::kWindSpeed,
       CityChannel::kCollisions},
      {"C9  Precipitation vs PedestrianInjured", CityChannel::kPrecipitation,
       CityChannel::kPedestrianInjured},
      {"C10 WindSpeed vs MotoristKilled", CityChannel::kWindSpeed,
       CityChannel::kMotoristKilled},
  };

  TycosParams params;
  params.sigma = 0.35;
  params.s_min = 8;           // at least 2 hours
  params.s_max = 4 * 24 * 2;  // at most 2 days
  params.td_max = 4 * 3;      // lags up to 3 hours
  params.tie_jitter = 1e-6;   // incident counts are small integers
  const double hours_per_sample = 1.0 / sim_options.samples_per_hour;

  std::printf("%-42s %8s %16s %8s\n", "analysis", "windows", "lag range (h)",
              "best");
  for (const Analysis& a : analyses) {
    const SeriesPair data = sim.Pair(a.weather, a.incident);
    Tycos search(data, params, TycosVariant::kLMN);
    const WindowSet result = search.Run();
    double best = 0.0;
    for (const Window& w : result.windows()) {
      if (w.mi > best) best = w.mi;
    }
    std::printf("%-42s %8zu %7.2f-%7.2f %8.3f\n", a.label, result.size(),
                static_cast<double>(result.MinDelay()) * hours_per_sample,
                static_cast<double>(result.MaxDelay()) * hours_per_sample,
                best);
  }

  std::printf(
      "\nInterpretation: positive lags mean incidents follow the weather\n"
      "event; compare C9 vs C10 to see which road users each weather type\n"
      "affects most.\n");
  return 0;
}
