// Command-line search over your own data: read two columns from a CSV,
// run TYCOS, write the discovered windows to another CSV.
//
//   $ ./build/examples/csv_search input.csv colX colY out.csv
//         [sigma] [s_min] [s_max] [td_max]   (optional trailing args)
//
// With no arguments it demonstrates itself end-to-end: generates a dataset,
// writes it to a temporary CSV, and searches that file.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/relations.h"
#include "io/csv.h"
#include "search/tycos.h"

namespace {

using namespace tycos;

int RunSearch(const std::string& input, const std::string& col_x,
              const std::string& col_y, const std::string& output,
              const TycosParams& params) {
  const auto table = ReadCsv(input);
  if (!table.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  const auto x = ColumnAsSeries(*table, col_x);
  const auto y = ColumnAsSeries(*table, col_y);
  if (!x.ok() || !y.ok()) {
    std::fprintf(stderr, "error selecting columns: %s / %s\n",
                 x.status().ToString().c_str(),
                 y.status().ToString().c_str());
    return 1;
  }
  const SeriesPair pair(*x, *y);
  const Status valid = params.Validate(pair.size());
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid parameters: %s\n",
                 valid.ToString().c_str());
    return 1;
  }

  Tycos search(pair, params, TycosVariant::kLMN);
  const WindowSet result = search.Run();
  std::printf("%zu window(s) found in %s (%s vs %s, n=%lld)\n", result.size(),
              input.c_str(), col_x.c_str(), col_y.c_str(),
              static_cast<long long>(pair.size()));
  for (const Window& w : result.Sorted()) {
    std::printf("  %s\n", w.ToString().c_str());
  }
  const Status st = WriteWindowsCsv(output, result.Sorted());
  if (!st.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("windows written to %s\n", output.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 24;
  params.s_max = 400;
  params.td_max = 32;

  if (argc >= 5) {
    if (argc > 5) params.sigma = std::atof(argv[5]);
    if (argc > 6) params.s_min = std::atoll(argv[6]);
    if (argc > 7) params.s_max = std::atoll(argv[7]);
    if (argc > 8) params.td_max = std::atoll(argv[8]);
    return RunSearch(argv[1], argv[2], argv[3], argv[4], params);
  }

  // Self-demo: synthesize, persist, search the file.
  std::printf("no arguments - running the self-contained demo\n");
  const datagen::SyntheticDataset ds = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kCross, 250, 12}},
      /*gap=*/300, /*seed=*/7);
  const std::string input = "csv_search_demo_input.csv";
  const Status st = WriteCsv(input, {ds.pair.x(), ds.pair.y()});
  if (!st.ok()) {
    std::fprintf(stderr, "demo setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote demo data to %s (cross relation at X=[%lld, %lld], "
              "delay %lld)\n",
              input.c_str(), static_cast<long long>(ds.planted[0].x_start),
              static_cast<long long>(ds.planted[0].x_start +
                                     ds.planted[0].length - 1),
              static_cast<long long>(ds.planted[0].delay));
  return RunSearch(input, "X", "Y", "csv_search_demo_windows.csv", params);
}
