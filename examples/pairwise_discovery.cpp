// Cross-channel discovery: scan *all* channel pairs of a dataset and rank
// them by the strongest correlation found — the paper's workflow of running
// TYCOS over every pair of 72 smart plugs, here on the simulated household.
//
//   $ ./build/examples/pairwise_discovery [days]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "datagen/energy_sim.h"
#include "search/pairwise.h"

int main(int argc, char** argv) {
  using namespace tycos;

  datagen::EnergySimOptions options;
  options.days = argc > 1 ? std::atoi(argv[1]) : 7;
  options.samples_per_hour = 12;
  const datagen::EnergySimulator sim(options);

  std::vector<TimeSeries> channels;
  std::vector<const char*> names;
  for (int c = 0; c < datagen::kNumEnergyChannels; ++c) {
    const auto channel = static_cast<datagen::EnergyChannel>(c);
    channels.push_back(sim.Channel(channel));
    names.push_back(datagen::EnergyChannelName(channel));
  }
  std::printf("scanning all %d x %d channel pairs over %d days...\n\n",
              datagen::kNumEnergyChannels, datagen::kNumEnergyChannels,
              options.days);

  TycosParams params;
  params.sigma = 0.4;
  params.s_min = 12;           // one hour
  params.s_max = 12 * 24;      // one day
  params.td_max = 12 * 4;      // lags up to four hours
  params.initial_delay_step = 5;
  params.tie_jitter = 1e-9;
  params.num_threads = 0;  // one worker per core; results are identical

  const PairwiseResult result =
      PairwiseSearch(channels, params, TycosVariant::kLMN);

  std::printf("%-20s %-20s %8s %8s %14s\n", "channel A", "channel B",
              "windows", "best", "lag range (m)");
  const double minutes_per_sample = 60.0 / options.samples_per_hour;
  int shown = 0;
  for (const size_t i : result.Correlated()) {
    const PairwiseEntry& e = result.entries[i];
    std::printf("%-20s %-20s %8lld %8.3f %6.0f - %-6.0f\n",
                names[static_cast<size_t>(e.a)],
                names[static_cast<size_t>(e.b)],
                static_cast<long long>(e.window_count()), e.best_score,
                static_cast<double>(e.windows.MinDelay()) *
                    minutes_per_sample,
                static_cast<double>(e.windows.MaxDelay()) *
                    minutes_per_sample);
    if (++shown >= 12) break;  // top correlations only
  }
  if (shown == 0) std::printf("(no correlated pairs found)\n");
  return 0;
}
