// Energy-domain example: mine lagged correlations between household
// plug-load channels (the paper's Table 3 scenario, on the simulated
// NIST-style dataset).
//
//   $ ./build/examples/energy_analysis [days]
//
// For each leader→follower pair the search reports how many correlated
// windows exist and over what delay range, e.g. "ClothesWasher -> Dryer:
// N windows, lag 10–30 min". Windows are also exported to CSV.

#include <cstdio>
#include <cstdlib>

#include "datagen/energy_sim.h"
#include "io/csv.h"
#include "search/tycos.h"

namespace {

using tycos::datagen::EnergyChannel;

struct ChannelPair {
  EnergyChannel leader;
  EnergyChannel follower;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tycos;

  datagen::EnergySimOptions sim_options;
  sim_options.days = argc > 1 ? std::atoi(argv[1]) : 7;
  sim_options.samples_per_hour = 12;  // 5-minute samples
  const datagen::EnergySimulator sim(sim_options);
  std::printf("simulated %d days of plug-load data (%lld samples/channel)\n\n",
              sim_options.days, static_cast<long long>(sim.length()));

  const ChannelPair pairs[] = {
      {EnergyChannel::kKitchen, EnergyChannel::kDishWasher},
      {EnergyChannel::kClothesWasher, EnergyChannel::kDryer},
      {EnergyChannel::kBathroomLight, EnergyChannel::kKitchenLight},
      {EnergyChannel::kChildrenRoomLight, EnergyChannel::kLivingRoomLight},
  };

  TycosParams params;
  params.sigma = 0.4;
  params.s_min = 12;                            // >= 1 hour of activity
  params.s_max = 12 * 24;                       // at most a day
  params.td_max = 12 * 4;                       // lags up to 4 hours
  params.tie_jitter = 1e-9;                     // idle plugs repeat values
  const double minutes_per_sample = 60.0 / sim_options.samples_per_hour;

  for (const ChannelPair& cp : pairs) {
    const SeriesPair data = sim.Pair(cp.leader, cp.follower);
    Tycos search(data, params, TycosVariant::kLMN);
    const WindowSet result = search.Run();

    std::printf("%-18s -> %-16s : %3zu windows",
                datagen::EnergyChannelName(cp.leader),
                datagen::EnergyChannelName(cp.follower), result.size());
    if (!result.empty()) {
      std::printf(", lag %.0f-%.0f min",
                  static_cast<double>(result.MinDelay()) * minutes_per_sample,
                  static_cast<double>(result.MaxDelay()) * minutes_per_sample);
      const std::string path =
          std::string("energy_") + datagen::EnergyChannelName(cp.leader) +
          "_" + datagen::EnergyChannelName(cp.follower) + ".csv";
      const Status st = WriteWindowsCsv(path, result.Sorted());
      if (st.ok()) std::printf("  -> %s", path.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
