// Online monitoring: watch a live feed of two sensors and report coupled
// episodes as they are discovered, with bounded memory — TYCOS as it would
// run inside an IoT gateway rather than over an archived dataset.
//
//   $ ./build/examples/streaming_monitor

#include <cstdio>
#include <vector>

#include "datagen/relations.h"
#include "search/streaming.h"

int main() {
  using namespace tycos;

  // A "day" of data arrives in 250-sample batches; two coupled episodes are
  // buried in the stream.
  const datagen::SyntheticDataset ds = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kSine, 250, 8},
       datagen::SegmentSpec{datagen::RelationType::kLinear, 250, 20}},
      /*gap=*/600, /*seed=*/99);

  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 24;
  params.s_max = 400;
  params.td_max = 32;

  StreamingTycos monitor(params, TycosVariant::kLMN);
  const auto& xs = ds.pair.x().values();
  const auto& ys = ds.pair.y().values();
  const size_t kBatch = 250;

  size_t reported = 0;
  for (size_t at = 0; at < xs.size(); at += kBatch) {
    const size_t end = std::min(xs.size(), at + kBatch);
    monitor.Append({xs.begin() + at, xs.begin() + end},
                   {ys.begin() + at, ys.begin() + end});
    for (const Window& w : monitor.results().Sorted()) {
      // Report each window once, as soon as it appears.
      if (static_cast<size_t>(w.start) < reported) continue;
      std::printf("[t=%6zu] ALERT: coupled X=[%lld, %lld] lag=%lld "
                  "score=%.3f (buffer: %lld samples)\n",
                  end, static_cast<long long>(w.start),
                  static_cast<long long>(w.end),
                  static_cast<long long>(w.delay), w.mi,
                  static_cast<long long>(monitor.retained_samples()));
      reported = static_cast<size_t>(w.start) + 1;
    }
  }
  monitor.Flush();

  std::printf("\nstream ended: %lld samples seen, %lld retained, "
              "%lld search passes, %zu windows\n",
              static_cast<long long>(monitor.samples_seen()),
              static_cast<long long>(monitor.retained_samples()),
              static_cast<long long>(monitor.search_passes()),
              monitor.results().size());
  std::printf("ground truth: sine at [%lld, %lld] lag 8; linear at "
              "[%lld, %lld] lag 20\n",
              static_cast<long long>(ds.planted[0].x_start),
              static_cast<long long>(ds.planted[0].x_start + 249),
              static_cast<long long>(ds.planted[1].x_start),
              static_cast<long long>(ds.planted[1].x_start + 249));
  return 0;
}
