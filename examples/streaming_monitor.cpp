// Online monitoring: watch a live feed of two sensors and report coupled
// episodes as they are discovered, with bounded memory — TYCOS as it would
// run inside an IoT gateway rather than over an archived dataset.
//
// The gateway twist: each search pass runs under a RunContext deadline so a
// slow pass can never stall ingestion, and the feed is ingested under
// DataPolicy::kInterpolate so the occasional dropped sensor reading (NaN)
// does not kill the monitor.
//
//   $ ./build/examples/streaming_monitor

#include <cstdio>
#include <limits>
#include <vector>

#include "common/run_context.h"
#include "core/data_policy.h"
#include "datagen/relations.h"
#include "search/streaming.h"

int main() {
  using namespace tycos;

  // A "day" of data arrives in 250-sample batches; two coupled episodes are
  // buried in the stream.
  const datagen::SyntheticDataset ds = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kSine, 250, 8},
       datagen::SegmentSpec{datagen::RelationType::kLinear, 250, 20}},
      /*gap=*/600, /*seed=*/99);

  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 24;
  params.s_max = 400;
  params.td_max = 32;

  auto created = StreamingTycos::Create(params, TycosVariant::kLMN,
                                        /*seed=*/42, /*search_trigger=*/0,
                                        DataPolicy::kInterpolate);
  if (!created.ok()) {
    std::fprintf(stderr, "config rejected: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  StreamingTycos& monitor = **created;

  std::vector<double> xs = ds.pair.x().values();
  std::vector<double> ys = ds.pair.y().values();
  // Simulate a flaky sensor: a reading goes missing mid-stream. The
  // interpolate policy repairs it on ingest instead of erroring out.
  xs[700] = std::numeric_limits<double>::quiet_NaN();
  const size_t kBatch = 250;

  size_t reported = 0;
  for (size_t at = 0; at < xs.size(); at += kBatch) {
    const size_t end = std::min(xs.size(), at + kBatch);

    // Each pass gets a fresh 200 ms budget; an expired pass still yields its
    // best-so-far windows (flagged partial) and the stream keeps moving.
    RunContext ctx = RunContext::WithDeadline(/*seconds=*/0.2);
    monitor.set_run_context(&ctx);

    const Status s = monitor.Append({xs.begin() + at, xs.begin() + end},
                                    {ys.begin() + at, ys.begin() + end});
    if (!s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (monitor.last_pass_partial()) {
      std::printf("[t=%6zu] search pass hit its deadline (%s); "
                  "results are best-so-far\n",
                  end, StopReasonName(monitor.last_stop_reason()));
    }
    for (const Window& w : monitor.results().Sorted()) {
      // Report each window once, as soon as it appears.
      if (static_cast<size_t>(w.start) < reported) continue;
      std::printf("[t=%6zu] ALERT: coupled X=[%lld, %lld] lag=%lld "
                  "score=%.3f (buffer: %lld samples)\n",
                  end, static_cast<long long>(w.start),
                  static_cast<long long>(w.end),
                  static_cast<long long>(w.delay), w.mi,
                  static_cast<long long>(monitor.retained_samples()));
      reported = static_cast<size_t>(w.start) + 1;
    }
    monitor.set_run_context(nullptr);
  }
  if (const Status s = monitor.Flush(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\nstream ended: %lld samples seen, %lld retained, "
              "%lld search passes, %zu windows, %lld samples interpolated\n",
              static_cast<long long>(monitor.samples_seen()),
              static_cast<long long>(monitor.retained_samples()),
              static_cast<long long>(monitor.search_passes()),
              monitor.results().size(),
              static_cast<long long>(monitor.ingest_stats().interpolated));
  std::printf("ground truth: sine at [%lld, %lld] lag 8; linear at "
              "[%lld, %lld] lag 20\n",
              static_cast<long long>(ds.planted[0].x_start),
              static_cast<long long>(ds.planted[0].x_start + 249),
              static_cast<long long>(ds.planted[1].x_start),
              static_cast<long long>(ds.planted[1].x_start + 249));
  return 0;
}
