// From correlation to causation: the paper's conclusion positions TYCOS as
// "a basis for ... infer[ring] causal effects from the extracted
// correlations". This example closes that loop: TYCOS locates *when* two
// signals are coupled and at what lag; transfer entropy over the extracted
// window then orients the edge (who drives whom).
//
//   $ ./build/examples/causal_direction

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "mi/cmi.h"
#include "search/tycos.h"

int main() {
  using namespace tycos;

  // Two sensors; the coupling x → y (lag 2) is only active in the middle
  // third of the recording.
  Rng rng(11);
  const int64_t n = 1800;
  const int64_t couple_from = 600, couple_to = 1200;
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  x[0] = rng.Normal();
  y[0] = y[1] = rng.Normal();
  for (int64_t t = 1; t < n; ++t) {
    x[static_cast<size_t>(t)] =
        0.4 * x[static_cast<size_t>(t - 1)] + rng.Normal();
    double drive = 0.0;
    if (t >= couple_from && t < couple_to && t >= 2) {
      drive = 1.2 * x[static_cast<size_t>(t - 2)];
    }
    y[static_cast<size_t>(t)] = 0.3 * y[static_cast<size_t>(t - 1)] + drive +
                                0.6 * rng.Normal();
  }
  const SeriesPair pair{TimeSeries(x, "sensor_x"), TimeSeries(y, "sensor_y")};

  // Step 1: where and at what lag are they correlated?
  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 64;
  params.s_max = 800;
  params.td_max = 8;
  Tycos search(pair, params, TycosVariant::kLMN);
  const WindowSet windows = search.Run();
  std::printf("TYCOS found %zu coupled window(s):\n", windows.size());
  Window best;
  for (const Window& w : windows.Sorted()) {
    std::printf("  %s\n", w.ToString().c_str());
    if (w.mi > best.mi) best = w;
  }
  if (windows.empty()) return 0;

  // Step 2: orient the edge inside the strongest window. Keep both series
  // on the raw common time span (NOT the delay-aligned extraction, which
  // would shift the coupling to lag 0 where transfer entropy cannot see
  // it): transfer entropy conditions on the target's own past, so the lag
  // must stay in the data.
  const int64_t lo = std::min(best.start, best.y_start());
  const int64_t hi = std::max(best.end, best.y_end());
  std::vector<double> wx(x.begin() + lo, x.begin() + hi + 1);
  std::vector<double> wy(y.begin() + lo, y.begin() + hi + 1);
  TransferEntropyOptions te;
  te.lag = std::max<int64_t>(1, std::llabs(best.delay));
  const CausalDirection dir = EstimateDirection(wx, wy, te);
  std::printf("\nwithin window %s:\n", best.ToString().c_str());
  std::printf("  TE(x -> y) = %.3f nats\n", dir.te_forward);
  std::printf("  TE(y -> x) = %.3f nats\n", dir.te_backward);
  std::printf("  verdict: %s\n",
              dir.margin() > 0.05  ? "x drives y"
              : dir.margin() < -0.05 ? "y drives x"
                                     : "direction unresolved");
  std::printf("\nground truth: x drives y at lag 2 during [%lld, %lld)\n",
              static_cast<long long>(couple_from),
              static_cast<long long>(couple_to));
  return 0;
}
