// Quickstart: plant a non-linear, time-delayed relation in noisy data and
// let TYCOS find it.
//
//   $ ./build/examples/quickstart
//
// Walks through the three steps of the public API: build a SeriesPair,
// configure TycosParams, run Tycos and read the WindowSet.

#include <cstdio>

#include "datagen/relations.h"
#include "search/tycos.h"

int main() {
  using namespace tycos;

  // 1. Data: a sine relation y = 2 sin(x) + noise, active for 300 samples,
  //    with Y lagging X by 20 samples. Everything else is independent noise.
  const datagen::SyntheticDataset dataset = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kSine, /*length=*/300,
                            /*delay=*/20}},
      /*gap=*/400, /*seed=*/42);
  const SeriesPair& pair = dataset.pair;
  std::printf("series length: %lld samples\n",
              static_cast<long long>(pair.size()));
  std::printf("planted: sine relation at X=[%lld, %lld], delay %lld\n\n",
              static_cast<long long>(dataset.planted[0].x_start),
              static_cast<long long>(dataset.planted[0].x_start +
                                     dataset.planted[0].length - 1),
              static_cast<long long>(dataset.planted[0].delay));

  // 2. Parameters: window sizes, maximum delay, and the correlation
  //    threshold sigma on the normalized MI score in [0, 1].
  // The noise floor of an MI-maximizing search scales with the smallest
  // window it may report, so sigma and s_min move together: tiny s_min
  // needs a higher sigma.
  TycosParams params;
  params.sigma = 0.55;
  params.s_min = 32;
  params.s_max = 400;
  params.td_max = 32;

  // 3. Search with the flagship variant (LAHC + noise pruning + incremental
  //    MI) and print what it found.
  Tycos search(pair, params, TycosVariant::kLMN);
  const WindowSet result = search.Run();

  std::printf("found %zu correlated window(s):\n", result.size());
  for (const Window& w : result.Sorted()) {
    std::printf("  X=[%lld, %lld]  delay=%lld  score=%.3f\n",
                static_cast<long long>(w.start),
                static_cast<long long>(w.end),
                static_cast<long long>(w.delay), w.mi);
  }

  const TycosStats& stats = search.stats();
  std::printf("\n%lld MI evaluations across %lld climbs (%lld cache hits)\n",
              static_cast<long long>(stats.mi_evaluations),
              static_cast<long long>(stats.climbs),
              static_cast<long long>(stats.cache_hits));
  return 0;
}
