// Finance example from the paper's introduction: "the impact of one rising
// stock on other stocks is visible only a few hours later." Simulates two
// stocks whose *returns* are coupled with a lead-lag, then uses TYCOS to
// recover when the coupling was active and at what lag — something a price
// chart won't show directly.
//
//   $ ./build/examples/stock_correlation

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "mi/pearson.h"
#include "search/tycos.h"

namespace {

// Geometric-random-walk prices; stock B's returns follow stock A's with
// `lag` ticks, but only inside [couple_from, couple_to).
void SimulateStocks(int64_t n, int64_t lag, int64_t couple_from,
                    int64_t couple_to, std::vector<double>* returns_a,
                    std::vector<double>* returns_b) {
  tycos::Rng rng(2024);
  returns_a->resize(static_cast<size_t>(n));
  returns_b->resize(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    (*returns_a)[static_cast<size_t>(t)] = rng.Normal(0.0, 0.01);
    (*returns_b)[static_cast<size_t>(t)] = rng.Normal(0.0, 0.01);
  }
  for (int64_t t = couple_from; t < couple_to; ++t) {
    if (t + lag >= n) break;
    // Non-linear coupling: B overreacts to large moves of A.
    const double ra = (*returns_a)[static_cast<size_t>(t)];
    (*returns_b)[static_cast<size_t>(t + lag)] =
        0.8 * ra * (1.0 + 40.0 * std::fabs(ra)) + rng.Normal(0.0, 0.004);
  }
}

}  // namespace

int main() {
  using namespace tycos;

  const int64_t kTicks = 1500;   // e.g. minute bars over ~4 trading days
  const int64_t kLag = 25;       // B reacts ~25 minutes after A
  const int64_t kFrom = 500, kTo = 900;

  std::vector<double> ra, rb;
  SimulateStocks(kTicks, kLag, kFrom, kTo, &ra, &rb);
  const SeriesPair pair{TimeSeries(ra, "stock_A_returns"),
                        TimeSeries(rb, "stock_B_returns")};

  // Whole-series Pearson at lag 0 sees essentially nothing:
  std::printf("whole-series PCC(A, B) = %.3f  (looks uncorrelated)\n\n",
              PearsonCorrelation(pair.x().values(), pair.y().values()));

  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 30;
  params.s_max = 600;
  params.td_max = 60;
  params.initial_delay_step = 5;

  Tycos search(pair, params, TycosVariant::kLMN);
  const WindowSet result = search.Run();

  std::printf("TYCOS found %zu coupled episode(s):\n", result.size());
  for (const Window& w : result.Sorted()) {
    std::printf("  A ticks [%lld, %lld] drive B %lld ticks later  "
                "(score %.3f)\n",
                static_cast<long long>(w.start),
                static_cast<long long>(w.end),
                static_cast<long long>(w.delay), w.mi);
  }
  std::printf("\nground truth: coupling over A ticks [%lld, %lld) at lag "
              "%lld\n",
              static_cast<long long>(kFrom), static_cast<long long>(kTo),
              static_cast<long long>(kLag));
  return 0;
}
