// Fig. 12 reproduction: the accuracy / runtime-gain trade-off per dataset
// across ε/σ, used to justify the paper's default ε = σ/4. For each tested
// dataset the two curves (accuracy of TYCOS_LN vs TYCOS_L, and runtime gain)
// are printed side by side.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/energy_sim.h"
#include "datagen/smart_city_sim.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using tycos::bench::TimeIt;

void Sweep(const char* name, const SeriesPair& pair, TycosParams params) {
  WindowSet l_result;
  double l_seconds = 0.0;
  {
    Tycos search(pair, params, TycosVariant::kL);
    l_seconds = TimeIt([&] { l_result = search.Run(); });
  }

  std::printf("\n%s (n=%lld, TYCOS_L: %zu windows, %.3f s)\n", name,
              static_cast<long long>(pair.size()), l_result.size(),
              l_seconds);
  std::printf("%10s %14s %14s\n", "eps/sigma", "accuracy %", "gain %");
  tycos::bench::PrintRule(42);
  for (double ratio :
       {0.05, 0.10, 0.20, 0.25, 0.30, 0.40, 0.50, 0.70, 0.90}) {
    TycosParams p = params;
    p.epsilon_ratio = ratio;
    Tycos search(pair, p, TycosVariant::kLN);
    WindowSet ln_result;
    const double ln_seconds = TimeIt([&] { ln_result = search.Run(); });
    const double accuracy = l_result.empty()
                                ? (ln_result.empty() ? 100.0 : 0.0)
                                : CoverageRecallPercent(l_result.windows(),
                                                        ln_result.windows());
    const double gain = 100.0 * (l_seconds - ln_seconds) / l_seconds;
    std::printf("%10.2f %14.1f %14.1f\n", ratio, accuracy, gain);
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 12: accuracy vs runtime-gain trade-off ===\n");

  {
    datagen::EnergySimOptions opt;
    opt.days = 14;
    opt.samples_per_hour = 12;
    const datagen::EnergySimulator sim(opt);
    TycosParams p;
    p.sigma = 0.4;
    p.s_min = 12;
    p.s_max = 12 * 24;
    p.td_max = 12 * 4;
    p.tie_jitter = 1e-9;
    Sweep("Energy dataset", sim.Pair(datagen::EnergyChannel::kKitchen,
                                     datagen::EnergyChannel::kDishWasher),
          p);
  }
  {
    datagen::SmartCitySimOptions opt;
    opt.days = 28;
    opt.samples_per_hour = 4;
    const datagen::SmartCitySimulator sim(opt);
    TycosParams p;
    p.sigma = 0.45;  // above the count-data noise band so both variants
    p.s_min = 8;     // compare stable window sets
    p.s_max = 4 * 24 * 2;
    p.td_max = 4 * 3;
    p.tie_jitter = 1e-6;
    Sweep("Smart-city dataset",
          sim.Pair(datagen::CityChannel::kPrecipitation,
                   datagen::CityChannel::kCollisions),
          p);
  }
  return 0;
}
