// Fig. 9 reproduction: runtime of the four TYCOS variants (L, LN, LM, LMN)
// on three synthetic composites and the two (simulated) real datasets.
// The paper's claim: LMN always wins; noise theory (N) and incremental MI
// (M) each help, and combining them helps most.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/energy_sim.h"
#include "datagen/smart_city_sim.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using tycos::bench::TimeIt;

void Report(const char* name, const SeriesPair& pair,
            const TycosParams& params) {
  double seconds[4];
  size_t found[4];
  const TycosVariant variants[] = {TycosVariant::kL, TycosVariant::kLN,
                                   TycosVariant::kLM, TycosVariant::kLMN};
  for (int v = 0; v < 4; ++v) {
    Tycos search(pair, params, variants[v]);
    WindowSet result;
    seconds[v] = TimeIt([&] { result = search.Run(); });
    found[v] = result.size();
  }
  std::printf("%-14s %6lld %9.3f %9.3f %9.3f %9.3f %10.1fx %6zu/%zu\n", name,
              static_cast<long long>(pair.size()), seconds[0], seconds[1],
              seconds[2], seconds[3],
              seconds[3] > 0 ? seconds[0] / seconds[3] : 0.0, found[3],
              found[0]);
}

}  // namespace

int main() {
  std::printf("=== Fig. 9: runtime of TYCOS variants (seconds) ===\n");
  std::printf("%-14s %6s %9s %9s %9s %9s %11s %8s\n", "dataset", "n", "L",
              "LN", "LM", "LMN", "L/LMN", "wnd");
  tycos::bench::PrintRule(80);

  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 48;
  params.s_max = 640;
  params.td_max = 32;

  for (int variant = 1; variant <= 3; ++variant) {
    const datagen::SyntheticDataset ds =
        datagen::SyntheticWorkload(variant, 6000, /*seed=*/variant);
    char name[32];
    std::snprintf(name, sizeof(name), "Synthetic %d", variant);
    Report(name, ds.pair, params);
  }

  {
    datagen::EnergySimOptions opt;
    opt.days = 14;
    opt.samples_per_hour = 12;
    const datagen::EnergySimulator sim(opt);
    TycosParams p = params;
    p.sigma = 0.4;
    p.s_min = 12;
    p.s_max = 12 * 24;
    p.td_max = 12 * 4;
    p.tie_jitter = 1e-9;
    Report("Energy", sim.Pair(datagen::EnergyChannel::kKitchen,
                              datagen::EnergyChannel::kDishWasher),
           p);
  }
  {
    datagen::SmartCitySimOptions opt;
    opt.days = 28;
    opt.samples_per_hour = 4;
    const datagen::SmartCitySimulator sim(opt);
    TycosParams p = params;
    p.sigma = 0.35;
    p.s_min = 8;
    p.s_max = 4 * 24 * 2;
    p.td_max = 4 * 3;
    p.tie_jitter = 1e-6;
    Report("Smart city", sim.Pair(datagen::CityChannel::kPrecipitation,
                                  datagen::CityChannel::kCollisions),
           p);
  }
  return 0;
}
