// Micro-benchmark: KSG MI estimation cost per window size and backend, plus
// the alternative estimators — the ablation behind choosing KSG (Section
// 3.1) and the auto backend switch.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "mi/histogram_mi.h"
#include "mi/ksg.h"
#include "mi/pearson.h"

namespace {

using namespace tycos;

void MakeData(int64_t m, std::vector<double>* xs, std::vector<double>* ys) {
  Rng rng(42);
  xs->resize(static_cast<size_t>(m));
  ys->resize(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    (*xs)[static_cast<size_t>(i)] = rng.Normal();
    (*ys)[static_cast<size_t>(i)] =
        0.7 * (*xs)[static_cast<size_t>(i)] + rng.Normal();
  }
}

void BM_KsgBrute(benchmark::State& state) {
  std::vector<double> xs, ys;
  MakeData(state.range(0), &xs, &ys);
  KsgOptions o;
  o.backend = KnnBackend::kBrute;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsgMi(xs, ys, o));
  }
}
BENCHMARK(BM_KsgBrute)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_KsgKdTree(benchmark::State& state) {
  std::vector<double> xs, ys;
  MakeData(state.range(0), &xs, &ys);
  KsgOptions o;
  o.backend = KnnBackend::kKdTree;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KsgMi(xs, ys, o));
  }
}
BENCHMARK(BM_KsgKdTree)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_HistogramMi(benchmark::State& state) {
  std::vector<double> xs, ys;
  MakeData(state.range(0), &xs, &ys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistogramMi(xs, ys));
  }
}
BENCHMARK(BM_HistogramMi)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_Pearson(benchmark::State& state) {
  std::vector<double> xs, ys;
  MakeData(state.range(0), &xs, &ys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonCorrelation(xs, ys));
  }
}
BENCHMARK(BM_Pearson)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_NormalizedMi(benchmark::State& state) {
  std::vector<double> xs, ys;
  MakeData(state.range(0), &xs, &ys);
  const auto mode = static_cast<MiNormalization>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizedMi(xs, ys, {}, mode));
  }
}
BENCHMARK(BM_NormalizedMi)
    ->Args({512, 0})   // entropy ratio
    ->Args({512, 1})   // correlation coefficient
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
