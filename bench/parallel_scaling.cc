// Parallel scaling of the pairwise fan-out: runs the full 9-channel energy
// simulation sweep (fig. 10-scale params, ~2000 samples/channel, 36 pairs)
// at 1/2/4/8 threads, verifies every run is bit-identical to the sequential
// reference, and writes a machine-readable BENCH_parallel.json.
//
// Speedup is bounded by the host's core count; on a single-core container
// all thread counts report ~1x. The determinism check is meaningful
// regardless of the hardware.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/energy_sim.h"
#include "jobs/durable_pairwise.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "search/pairwise.h"

namespace {

using namespace tycos;
using tycos::bench::TimeIt;

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 16;
  p.s_max = 96;
  p.td_max = 6;
  p.delta = 2;
  return p;
}

bool SameResults(const PairwiseResult& a, const PairwiseResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const PairwiseEntry& x = a.entries[i];
    const PairwiseEntry& y = b.entries[i];
    if (x.a != y.a || x.b != y.b || x.best_score != y.best_score ||
        x.windows.size() != y.windows.size()) {
      return false;
    }
    for (size_t j = 0; j < x.windows.size(); ++j) {
      const Window& u = x.windows.windows()[j];
      const Window& v = y.windows.windows()[j];
      if (u.start != v.start || u.end != v.end || u.delay != v.delay ||
          u.mi != v.mi) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";

  datagen::EnergySimOptions opts;
  opts.days = 7;  // ~2016 samples per channel at 5-minute resolution
  const datagen::EnergySimulator sim(opts);
  std::vector<TimeSeries> channels;
  for (int c = 0; c < datagen::kNumEnergyChannels; ++c) {
    channels.push_back(sim.Channel(static_cast<datagen::EnergyChannel>(c)));
  }
  const int64_t n = sim.length();
  const int64_t total_pairs =
      static_cast<int64_t>(channels.size() * (channels.size() - 1) / 2);

  std::printf("=== Parallel pairwise scaling: %zu channels x %lld samples, "
              "%lld pairs ===\n",
              channels.size(), static_cast<long long>(n),
              static_cast<long long>(total_pairs));
  std::printf("%8s %10s %10s %10s %10s\n", "threads", "wall_s", "speedup",
              "pairs/s", "identical");
  tycos::bench::PrintRule(54);

  struct Row {
    int threads;
    double wall_s;
    double speedup;
    double pairs_per_s;
    bool identical;
  };
  std::vector<Row> rows;
  PairwiseResult reference;
  double base_s = 0.0;

  for (int threads : {1, 2, 4, 8}) {
    TycosParams p = Params();
    p.num_threads = threads;
    PairwiseResult result;
    const double wall_s = TimeIt(
        [&] { result = PairwiseSearch(channels, p, TycosVariant::kLMN, 7); });
    if (threads == 1) {
      reference = result;
      base_s = wall_s;
    }
    Row row;
    row.threads = threads;
    row.wall_s = wall_s;
    row.speedup = wall_s > 0 ? base_s / wall_s : 0.0;
    row.pairs_per_s = wall_s > 0 ? total_pairs / wall_s : 0.0;
    row.identical = SameResults(reference, result);
    rows.push_back(row);
    std::printf("%8d %10.3f %9.2fx %10.1f %10s\n", row.threads, row.wall_s,
                row.speedup, row.pairs_per_s, row.identical ? "yes" : "NO");
  }

  bool all_identical = true;
  for (const Row& r : rows) all_identical = all_identical && r.identical;

  // Durable-job overhead: the same sweep through ResumePairwiseSearch with a
  // fresh checkpoint, vs the plain engine at the same thread count. Best of
  // three reps each so a single scheduler hiccup does not dominate; the
  // target is < 2% overhead (one small fwrite per pair, no fsync).
  const int ckpt_threads = 4;
  const std::string ckpt_path = out_path + ".ckpt";
  double plain_s = 1e100;
  double durable_s = 1e100;
  bool ckpt_identical = true;
  {
    TycosParams p = Params();
    p.num_threads = ckpt_threads;
    for (int rep = 0; rep < 3; ++rep) {
      PairwiseResult plain;
      plain_s = std::min(plain_s, TimeIt([&] {
        plain = PairwiseSearch(channels, p, TycosVariant::kLMN, 7);
      }));
      std::remove(ckpt_path.c_str());
      jobs::DurableJobOptions dopts;
      dopts.checkpoint_path = ckpt_path;
      Result<jobs::DurableOutcome> durable = Status::Internal("unrun");
      durable_s = std::min(durable_s, TimeIt([&] {
        durable = jobs::ResumePairwiseSearch(channels, p, TycosVariant::kLMN,
                                             7, RunContext::None(), dopts);
      }));
      std::remove(ckpt_path.c_str());
      ckpt_identical = ckpt_identical && durable.ok() &&
                       SameResults(reference, durable.value().result);
    }
  }
  const double ckpt_overhead =
      plain_s > 0 ? durable_s / plain_s - 1.0 : 0.0;
  std::printf("\ncheckpointed run (%d threads): plain %.3fs, durable %.3fs, "
              "overhead %+.2f%%, identical %s\n",
              ckpt_threads, plain_s, durable_s, ckpt_overhead * 100.0,
              ckpt_identical ? "yes" : "NO");
  all_identical = all_identical && ckpt_identical;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": {\n");
  std::fprintf(f, "    \"generator\": \"energy_sim\",\n");
  std::fprintf(f, "    \"channels\": %zu,\n", channels.size());
  std::fprintf(f, "    \"samples_per_channel\": %lld,\n",
               static_cast<long long>(n));
  std::fprintf(f, "    \"pairs\": %lld,\n",
               static_cast<long long>(total_pairs));
  std::fprintf(f, "    \"variant\": \"LMN\",\n");
  std::fprintf(f, "    \"sigma\": %.2f, \"s_min\": 16, \"s_max\": 96, "
               "\"td_max\": 6, \"delta\": 2\n",
               Params().sigma);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"identical_results\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"checkpoint\": {\n");
  std::fprintf(f, "    \"threads\": %d,\n", ckpt_threads);
  std::fprintf(f, "    \"plain_ms\": %.1f,\n", plain_s * 1000.0);
  std::fprintf(f, "    \"durable_ms\": %.1f,\n", durable_s * 1000.0);
  std::fprintf(f, "    \"checkpoint_overhead\": %.4f,\n", ckpt_overhead);
  std::fprintf(f, "    \"identical\": %s\n",
               ckpt_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"wall_ms\": %.1f, "
                 "\"speedup\": %.3f, \"pairs_per_s\": %.2f}%s\n",
                 r.threads, r.wall_s * 1000.0, r.speedup, r.pairs_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Metrics sidecar: the obs-registry snapshot accumulated over all four
  // sweeps (see bench/README.md). Counter totals are thread-count-invariant,
  // so the sidecar doubles as a coarse determinism record for the run.
  std::string metrics_path = out_path;
  const std::string suffix = ".json";
  if (metrics_path.size() >= suffix.size() &&
      metrics_path.compare(metrics_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
    metrics_path.resize(metrics_path.size() - suffix.size());
  }
  metrics_path += ".metrics.json";
  const Status metrics_ok = obs::WriteJson(metrics_path, obs::Snapshot());
  if (metrics_ok.ok()) {
    std::printf("wrote %s\n", metrics_path.c_str());
  } else {
    std::fprintf(stderr, "metrics sidecar failed: %s\n",
                 metrics_ok.message().c_str());
  }
  return all_identical ? 0 : 1;
}
