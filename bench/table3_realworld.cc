// Table 3 reproduction: correlations extracted from the (simulated) energy
// and smart-city datasets — TYCOS vs AMIC. Each row prints the number of
// extracted windows and the delay range; AMIC, having no delay axis, misses
// every correlation whose lag the simulator plants away from zero.

#include <cstdio>
#include <string>

#include "baselines/amic.h"
#include "bench/bench_util.h"
#include "datagen/energy_sim.h"
#include "datagen/smart_city_sim.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using datagen::CityChannel;
using datagen::EnergyChannel;

struct Row {
  const char* id;
  std::string name;
  SeriesPair pair;
  double samples_per_minute;
};

void PrintRow(const Row& row, const TycosParams& params) {
  Tycos search(row.pair, params, TycosVariant::kLMN);
  const WindowSet ty = search.Run();

  AmicOptions amic_opt;
  amic_opt.sigma = params.sigma;
  amic_opt.s_min = params.s_min;
  const AmicResult amic = AmicSearch(row.pair, amic_opt);

  char tycos_cell[64];
  if (ty.empty()) {
    std::snprintf(tycos_cell, sizeof(tycos_cell), "x");
  } else {
    std::snprintf(tycos_cell, sizeof(tycos_cell), "%zu, [%.0f-%.0fm]",
                  ty.size(),
                  static_cast<double>(ty.MinDelay()) / row.samples_per_minute,
                  static_cast<double>(ty.MaxDelay()) / row.samples_per_minute);
  }
  char amic_cell[64];
  if (amic.windows.empty()) {
    std::snprintf(amic_cell, sizeof(amic_cell), "x");
  } else {
    std::snprintf(amic_cell, sizeof(amic_cell), "%zu, 0m",
                  amic.windows.size());
  }
  std::printf("%-5s %-46s %-18s %-10s\n", row.id, row.name.c_str(),
              tycos_cell, amic_cell);
}

}  // namespace

int main() {
  std::printf("=== Table 3: extracted correlations (TYCOS vs AMIC) ===\n");
  std::printf("%-5s %-46s %-18s %-10s\n", "id", "correlation",
              "TYCOS (n, delays)", "AMIC");
  tycos::bench::PrintRule(84);

  // Energy rows (C1–C6): 5 days of minute-resolution plug data (the NIST
  // data is minute-level; C4/C5's 1–5 minute lags need that resolution).
  datagen::EnergySimOptions eopt;
  eopt.days = 5;
  eopt.samples_per_hour = 60;
  const datagen::EnergySimulator energy(eopt);
  const double e_spm = eopt.samples_per_hour / 60.0;

  auto energy_row = [&](const char* id, EnergyChannel a, EnergyChannel b) {
    return Row{id,
               std::string(datagen::EnergyChannelName(a)) + " vs " +
                   datagen::EnergyChannelName(b),
               energy.Pair(a, b), e_spm};
  };

  TycosParams energy_params;
  energy_params.sigma = 0.4;
  energy_params.s_min = 30;             // half an hour
  energy_params.s_max = 60 * 12;        // half a day
  energy_params.td_max = 60 * 4;        // lags up to four hours
  energy_params.initial_delay_step = 5; // plug events are minutes wide
  energy_params.tie_jitter = 1e-9;

  PrintRow(energy_row("C1", EnergyChannel::kKitchen,
                      EnergyChannel::kDishWasher),
           energy_params);
  PrintRow(energy_row("C2", EnergyChannel::kKitchen,
                      EnergyChannel::kMicrowave),
           energy_params);
  PrintRow(energy_row("C3", EnergyChannel::kClothesWasher,
                      EnergyChannel::kDryer),
           energy_params);
  PrintRow(energy_row("C4", EnergyChannel::kBathroomLight,
                      EnergyChannel::kKitchenLight),
           energy_params);
  PrintRow(energy_row("C5", EnergyChannel::kKitchenLight,
                      EnergyChannel::kMicrowave),
           energy_params);
  PrintRow(energy_row("C6", EnergyChannel::kChildrenRoomLight,
                      EnergyChannel::kLivingRoomLight),
           energy_params);

  // Smart-city rows (C7–C10): 14 days of 15-minute weather/incident data.
  datagen::SmartCitySimOptions copt;
  copt.days = 14;
  copt.samples_per_hour = 4;
  const datagen::SmartCitySimulator city(copt);
  const double c_spm = copt.samples_per_hour / 60.0;

  auto city_row = [&](const char* id, CityChannel a, CityChannel b) {
    return Row{id,
               std::string(datagen::CityChannelName(a)) + " vs " +
                   datagen::CityChannelName(b),
               city.Pair(a, b), c_spm};
  };

  TycosParams city_params;
  city_params.sigma = 0.35;
  city_params.s_min = 8;          // two hours
  city_params.s_max = 4 * 24 * 2; // two days
  city_params.td_max = 4 * 3;     // lags up to three hours
  city_params.tie_jitter = 1e-6;

  PrintRow(city_row("C7", CityChannel::kPrecipitation,
                    CityChannel::kCollisions),
           city_params);
  PrintRow(city_row("C8", CityChannel::kWindSpeed,
                    CityChannel::kCollisions),
           city_params);
  PrintRow(city_row("C9", CityChannel::kPrecipitation,
                    CityChannel::kPedestrianInjured),
           city_params);
  PrintRow(city_row("C10", CityChannel::kWindSpeed,
                    CityChannel::kMotoristKilled),
           city_params);
  return 0;
}
