// Table 4 reproduction: accuracy of the heuristic searches.
//
//   column 1: TYCOS_L vs Brute Force  — how much of the exact result the
//             LAHC search recovers (brute-force windows aggregated by
//             merging overlaps, as in Section 8.4B);
//   column 2: TYCOS_LN vs TYCOS_L     — what the noise theory loses.
//
// Scaling note (EXPERIMENTS.md): the paper sweeps 1K–100K with a 12-hour
// brute-force budget; this driver sweeps 1K–8K with proportionally reduced
// s_max/td_max so the exact search finishes in seconds per size.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/brute_force_search.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using namespace tycos::datagen;

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 16;
  p.s_max = 64;
  p.td_max = 4;
  p.delta = 2;
  return p;
}

// Synthetic data: one planted relation per ~1000 samples, delays within
// td_max so every variant can reach them.
SyntheticDataset MakeSynthetic(int64_t n, uint64_t seed) {
  const RelationType cycle[] = {RelationType::kLinear, RelationType::kSine,
                                RelationType::kQuadratic,
                                RelationType::kCross};
  std::vector<SegmentSpec> specs;
  const int64_t relations = std::max<int64_t>(1, n / 1000);
  for (int64_t i = 0; i < relations; ++i) {
    specs.push_back(SegmentSpec{cycle[i % 4], 250, 2 * (i % 3)});
  }
  const int64_t gap =
      std::max<int64_t>(64, (n - relations * 250) / (relations + 1));
  return ComposeDataset(specs, gap, seed);
}

// Sensor-like data: the same composition but with autocorrelated
// (random-walk) x traversal — the statistical signature of the paper's real
// sensor datasets. (The event simulators' natural window scales are far
// larger than the scaled-down s_max this brute-force regime affords; see
// EXPERIMENTS.md.)
SeriesPair MakeSensorLike(int64_t n, uint64_t seed) {
  const RelationType cycle[] = {RelationType::kQuartic,
                                RelationType::kExponential,
                                RelationType::kSquareRoot,
                                RelationType::kSine};
  std::vector<SegmentSpec> specs;
  const int64_t relations = std::max<int64_t>(1, n / 1000);
  for (int64_t i = 0; i < relations; ++i) {
    specs.push_back(SegmentSpec{cycle[i % 4], 250, 2 * (i % 3)});
  }
  const int64_t gap =
      std::max<int64_t>(64, (n - relations * 250) / (relations + 1));
  return ComposeDataset(specs, gap, seed, XSampling::kRandomWalk).pair;
}

// Similarity follows Section 8.4B: brute-force output is aggregated by
// merging overlaps, and a window "covers a similar range of indices" when
// its overlap coefficient with a reference window clears 0.5 — a heuristic
// fragment inside an exact merged window counts as recovered.
double AccuracyL_vs_BF(const SeriesPair& pair) {
  TycosParams p = Params();
  const BruteForceResult bf = BruteForceSearch(pair, p).Run();
  const WindowSet l = Tycos(pair, p, TycosVariant::kL).Run();
  if (bf.merged.empty()) return l.empty() ? 100.0 : 0.0;
  return CoverageRecallPercent(bf.merged, l.windows());
}

double AccuracyLN_vs_L(const SeriesPair& pair) {
  TycosParams p = Params();
  const WindowSet l = Tycos(pair, p, TycosVariant::kL).Run();
  const WindowSet ln = Tycos(pair, p, TycosVariant::kLN).Run();
  if (l.empty()) return ln.empty() ? 100.0 : 0.0;
  return CoverageRecallPercent(l.windows(), ln.windows());
}

}  // namespace

int main() {
  std::printf("=== Table 4: accuracy evaluation (percent) ===\n");
  std::printf("%-10s | %-14s %-14s | %-14s %-14s\n", "", "TYCOS_L vs",
              "Brute Force", "TYCOS_LN vs", "TYCOS_L");
  std::printf("%-10s | %-14s %-14s | %-14s %-14s\n", "Data Size",
              "Synthetic", "Sensor-like", "Synthetic", "Sensor-like");
  tycos::bench::PrintRule(72);

  for (int64_t n : {1000, 2000, 4000, 8000}) {
    const SyntheticDataset synth = MakeSynthetic(n, /*seed=*/n);
    const SeriesPair real = MakeSensorLike(n, /*seed=*/n + 1);

    const double l_bf_synth = AccuracyL_vs_BF(synth.pair);
    const double l_bf_real = AccuracyL_vs_BF(real);
    const double ln_l_synth = AccuracyLN_vs_L(synth.pair);
    const double ln_l_real = AccuracyLN_vs_L(real);

    std::printf("%-10lld | %-14.1f %-14.1f | %-14.1f %-14.1f\n",
                static_cast<long long>(n), l_bf_synth, l_bf_real, ln_l_synth,
                ln_l_real);
  }
  return 0;
}
