// Micro-benchmark: FFT substrate (radix-2 vs Bluestein sizes) and the
// sliding-dot-product kernel that powers MASS / MatrixProfile.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fft/fft.h"
#include "fft/sliding_dot.h"

namespace {

using namespace tycos;

void BM_FftPowerOfTwo(benchmark::State& state) {
  Rng rng(1);
  std::vector<Complex> data(static_cast<size_t>(state.range(0)));
  for (auto& c : data) c = Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    std::vector<Complex> copy = data;
    Fft(&copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_FftPowerOfTwo)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_FftBluestein(benchmark::State& state) {
  Rng rng(2);
  std::vector<Complex> data(static_cast<size_t>(state.range(0)));
  for (auto& c : data) c = Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(FftAnySize(data, false));
  }
}
BENCHMARK(BM_FftBluestein)
    ->Arg(1000)
    ->Arg(12289)
    ->Unit(benchmark::kMicrosecond);

void BM_MassDistanceProfile(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> series(static_cast<size_t>(state.range(0)));
  for (auto& v : series) v = rng.Normal();
  std::vector<double> query(series.begin(), series.begin() + 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MassDistanceProfile(query, series));
  }
}
BENCHMARK(BM_MassDistanceProfile)
    ->Arg(4096)
    ->Arg(32768)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
