// Fig. 13 reproduction: effect of the user parameters on TYCOS.
//   (a) correlation threshold σ — fewer windows as σ grows;
//   (b) maximum window size s_max — extracted set converges past the true
//       correlation scale while runtime keeps growing;
//   (c) maximum time delay td_max — converges past the true lag with a
//       roughly flat runtime.
// (b) and (c) use the (Snow, Collisions) smart-city pair like the paper.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/smart_city_sim.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using tycos::bench::TimeIt;

SeriesPair SnowCollisions() {
  datagen::SmartCitySimOptions opt;
  opt.days = 28;
  opt.samples_per_hour = 4;
  static const datagen::SmartCitySimulator sim(opt);
  return sim.Pair(datagen::CityChannel::kSnow,
                  datagen::CityChannel::kCollisions);
}

TycosParams CityParams() {
  TycosParams p;
  p.sigma = 0.35;
  p.s_min = 8;
  p.s_max = 4 * 24;  // one day
  p.td_max = 4 * 4;  // four hours
  p.tie_jitter = 1e-6;
  return p;
}

}  // namespace

int main() {
  const SeriesPair pair = SnowCollisions();
  std::printf("=== Fig. 13: effect of sigma, s_max and td_max "
              "((Snow, Collisions), n=%lld) ===\n",
              static_cast<long long>(pair.size()));

  std::printf("\n(a) correlation threshold sigma\n");
  std::printf("%8s %10s %12s\n", "sigma", "windows", "seconds");
  tycos::bench::PrintRule(34);
  for (double sigma : {0.25, 0.35, 0.45, 0.55, 0.65, 0.75}) {
    TycosParams p = CityParams();
    p.sigma = sigma;
    Tycos search(pair, p, TycosVariant::kLMN);
    WindowSet result;
    const double secs = TimeIt([&] { result = search.Run(); });
    std::printf("%8.2f %10zu %12.3f\n", sigma, result.size(), secs);
  }

  std::printf("\n(b) maximum window size s_max\n");
  std::printf("%8s %10s %12s\n", "s_max", "windows", "seconds");
  tycos::bench::PrintRule(34);
  for (int64_t s_max : {24, 48, 96, 192, 288, 384}) {
    TycosParams p = CityParams();
    p.s_max = s_max;
    Tycos search(pair, p, TycosVariant::kLMN);
    WindowSet result;
    const double secs = TimeIt([&] { result = search.Run(); });
    std::printf("%8lld %10zu %12.3f\n", static_cast<long long>(s_max),
                result.size(), secs);
  }

  std::printf("\n(c) maximum time delay td_max\n");
  std::printf("%8s %10s %12s\n", "td_max", "windows", "seconds");
  tycos::bench::PrintRule(34);
  for (int64_t td_max : {2, 4, 8, 16, 32, 64}) {
    TycosParams p = CityParams();
    p.td_max = td_max;
    Tycos search(pair, p, TycosVariant::kLMN);
    WindowSet result;
    const double secs = TimeIt([&] { result = search.Run(); });
    std::printf("%8lld %10zu %12.3f\n", static_cast<long long>(td_max),
                result.size(), secs);
  }
  return 0;
}
