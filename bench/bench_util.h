// Shared helpers for the experiment drivers (bench/table*, bench/fig*):
// detection predicates, timing wrappers and table printing.

#ifndef TYCOS_BENCH_BENCH_UTIL_H_
#define TYCOS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/window.h"
#include "core/window_similarity.h"
#include "datagen/relations.h"

namespace tycos {
namespace bench {

// True when any reported window covers the planted relation's X range with
// at least `min_jaccard` overlap. When `delay_tolerance` >= 0, the window's
// delay must additionally land within that many samples of the planted lag
// (methods without a delay axis report τ = 0 and are judged accordingly);
// pass -1 to accept any delay.
inline bool Detects(const std::vector<Window>& reported,
                    const datagen::PlantedRelation& planted,
                    double min_jaccard = 0.25,
                    int64_t delay_tolerance = -1) {
  const Window truth = planted.AsWindow();
  for (const Window& w : reported) {
    if (IndexJaccard(w, truth) < min_jaccard) continue;
    if (delay_tolerance >= 0 &&
        std::llabs(w.delay - planted.delay) > delay_tolerance) {
      continue;
    }
    return true;
  }
  return false;
}

// Detection verdict for one relation: for kIndependent a method is correct
// when it reports *nothing* over the independent stretch (at any delay);
// for every other relation it must locate it at (close to) the right lag.
inline bool Correct(const std::vector<Window>& reported,
                    const datagen::PlantedRelation& planted,
                    int64_t delay_tolerance = 16) {
  if (planted.type == datagen::RelationType::kIndependent) {
    return !Detects(reported, planted, 0.25, /*delay_tolerance=*/-1);
  }
  return Detects(reported, planted, 0.25, delay_tolerance);
}

inline const char* Mark(bool ok) { return ok ? "yes" : " - "; }

// Runs fn and returns elapsed wall-clock seconds.
inline double TimeIt(const std::function<void()>& fn) {
  Stopwatch sw;
  fn();
  return sw.ElapsedSeconds();
}

inline void PrintRule(int width = 98) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace tycos

#endif  // TYCOS_BENCH_BENCH_UTIL_H_
