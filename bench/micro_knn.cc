// Micro-benchmark: kNN backends (brute scan vs k-d tree) and the Fenwick
// rank index — the data-structure ablation of Section 5.1's complexity
// discussion.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "knn/brute_knn.h"
#include "knn/grid_index.h"
#include "knn/kd_tree.h"
#include "knn/rank_index.h"

namespace {

using namespace tycos;

std::vector<Point2> MakePoints(int64_t m) {
  Rng rng(7);
  std::vector<Point2> pts(static_cast<size_t>(m));
  for (auto& p : pts) {
    p.x = rng.Normal();
    p.y = rng.Normal();
  }
  return pts;
}

void BM_BruteAllPoints(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0));
  for (auto _ : state) {
    for (size_t i = 0; i < pts.size(); ++i) {
      benchmark::DoNotOptimize(BruteKnnExtents(pts, i, 4));
    }
  }
}
BENCHMARK(BM_BruteAllPoints)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_KdTreeBuildAndQueryAll(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0));
  for (auto _ : state) {
    KdTree tree(pts);
    for (size_t i = 0; i < pts.size(); ++i) {
      benchmark::DoNotOptimize(tree.QueryExtents(i, 4));
    }
  }
}
BENCHMARK(BM_KdTreeBuildAndQueryAll)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_GridBuildAndQueryAll(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0));
  for (auto _ : state) {
    GridIndex grid(pts);
    for (size_t i = 0; i < pts.size(); ++i) {
      benchmark::DoNotOptimize(grid.QueryExtents(i, 4));
    }
  }
}
BENCHMARK(BM_GridBuildAndQueryAll)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_RankIndexOps(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> universe(static_cast<size_t>(state.range(0)));
  for (auto& v : universe) v = rng.Normal();
  RankIndex index(universe);
  size_t i = 0;
  for (auto _ : state) {
    index.Insert(universe[i % universe.size()]);
    benchmark::DoNotOptimize(index.CountInRange(-0.5, 0.5));
    index.Erase(universe[i % universe.size()]);
    ++i;
  }
}
BENCHMARK(BM_RankIndexOps)->Arg(1024)->Arg(65536)->Unit(benchmark::kNanosecond);

}  // namespace

BENCHMARK_MAIN();
