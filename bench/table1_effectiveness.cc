// Table 1 reproduction: which correlation relations can each method detect,
// with and without time delay?
//
// Nine relation types (linear, exp, quadratic, circle, sine, cross, quartic,
// sqrt, plus an independent control) are planted into one series pair,
// separated by independent noise, for td = 0 and td = 150 samples. Each
// method reports windows; a relation counts as identified when a reported
// window covers it (Jaccard >= 0.25 on the X index range). For the
// independent control, "yes" means the method correctly reports nothing.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/amic.h"
#include "baselines/mass.h"
#include "baselines/matrix_profile.h"
#include "baselines/pcc_search.h"
#include "bench/bench_util.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using namespace tycos::datagen;
using tycos::bench::Correct;
using tycos::bench::Mark;

constexpr int64_t kRelationLength = 260;
constexpr int64_t kGap = 420;
constexpr int64_t kMassWindow = 64;

SyntheticDataset MakeDataset(int64_t delay, uint64_t seed) {
  std::vector<SegmentSpec> specs;
  for (RelationType t : kAllRelations) {
    specs.push_back(SegmentSpec{t, kRelationLength, delay});
  }
  return ComposeDataset(specs, kGap, seed);
}

std::vector<Window> RunPcc(const SeriesPair& pair) {
  PccSearchOptions opt;
  opt.window = 128;  // long enough to span several swings of the x walk
  opt.stride = 16;
  opt.threshold = 0.7;
  return PccSearch(pair, opt);
}

std::vector<Window> RunMass(const SeriesPair& pair) {
  MassScanOptions opt;
  opt.window = kMassWindow;
  opt.stride = 16;
  opt.threshold = 0.30;
  opt.align_tolerance = 16;
  std::vector<Window> windows;
  for (const MassMatch& m : MassScan(pair, opt)) {
    windows.push_back(
        Window(m.query_start, m.query_start + kMassWindow - 1, 0));
  }
  return MergeOverlapping(std::move(windows));
}

std::vector<Window> RunMatrixProfile(const SeriesPair& pair) {
  const MatrixProfileResult mp =
      MatrixProfileAbJoin(pair.x().values(), pair.y().values(), kMassWindow);
  const double accept =
      0.15 * std::sqrt(2.0 * static_cast<double>(kMassWindow));
  std::vector<Window> windows;
  for (size_t i = 0; i < mp.profile.size(); ++i) {
    if (mp.profile[i] <= accept) {
      const int64_t s = static_cast<int64_t>(i);
      windows.push_back(Window(s, s + kMassWindow - 1,
                               mp.index[i] - s));  // any offset allowed
    }
  }
  return MergeOverlapping(std::move(windows));
}

std::vector<Window> RunAmic(const SeriesPair& pair) {
  AmicOptions opt;
  opt.sigma = 0.5;
  opt.s_min = 24;
  return AmicSearch(pair, opt).windows.windows();
}

std::vector<Window> RunTycos(const SeriesPair& pair, int64_t td_max) {
  TycosParams params;
  params.sigma = 0.5;
  params.s_min = 24;
  params.s_max = 400;
  params.td_max = td_max;
  params.delta = 4;
  Tycos search(pair, params, TycosVariant::kLMN);
  return search.Run().windows();
}

void RunForDelay(int64_t delay) {
  const SyntheticDataset ds = MakeDataset(delay, /*seed=*/2020 + delay);
  std::printf("\ntd = %lld (%s), series length %lld\n",
              static_cast<long long>(delay),
              delay == 0 ? "no time delay" : "with time delay",
              static_cast<long long>(ds.pair.size()));
  tycos::bench::PrintRule(76);
  std::printf("%-12s %8s %8s %14s %8s %8s\n", "Relation", "PCC", "MASS",
              "MatrixProfile", "AMIC", "TYCOS");
  tycos::bench::PrintRule(76);

  const auto pcc = RunPcc(ds.pair);
  const auto mass = RunMass(ds.pair);
  const auto mp = RunMatrixProfile(ds.pair);
  const auto amic = RunAmic(ds.pair);
  const auto ty = RunTycos(ds.pair, delay + 40);

  for (const PlantedRelation& planted : ds.planted) {
    std::printf("%-12s %8s %8s %14s %8s %8s\n",
                RelationTypeName(planted.type), Mark(Correct(pcc, planted)),
                Mark(Correct(mass, planted)), Mark(Correct(mp, planted)),
                Mark(Correct(amic, planted)), Mark(Correct(ty, planted)));
  }
}

}  // namespace

int main() {
  std::printf("=== Table 1: identifying different types of correlation "
              "relations ===\n");
  RunForDelay(0);
  RunForDelay(150);
  return 0;
}
