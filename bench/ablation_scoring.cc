// Ablation of the scoring design choices DESIGN.md calls out: the
// normalization mode (paper's entropy ratio vs this build's default
// correlation coefficient) crossed with the small-sample penalty. For each
// combination, the Table-1 composite is searched and the table reports how
// many of the 8 planted relations are recovered and whether anything fires
// on the independent control — the calibration behind the defaults.

#include <cstdio>

#include "bench/bench_util.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using namespace tycos::datagen;

struct Combo {
  MiNormalization mode;
  double penalty;
  double sigma;  // threshold adapted per mode's score scale
  const char* label;
};

}  // namespace

int main() {
  std::printf("=== Ablation: score normalization x small-sample penalty "
              "===\n");

  std::vector<SegmentSpec> specs;
  for (RelationType t : kAllRelations) specs.push_back(SegmentSpec{t, 260, 0});
  const SyntheticDataset ds = ComposeDataset(specs, /*gap=*/420, /*seed=*/7);

  const Combo combos[] = {
      {MiNormalization::kEntropyRatio, 0.0, 0.25, "entropy-ratio, no penalty"},
      {MiNormalization::kEntropyRatio, 2.0, 0.25, "entropy-ratio, penalty 2"},
      {MiNormalization::kCorrelationCoefficient, 0.0, 0.5,
       "corr-coefficient, no penalty"},
      {MiNormalization::kCorrelationCoefficient, 1.0, 0.5,
       "corr-coefficient, penalty 1"},
      {MiNormalization::kCorrelationCoefficient, 2.0, 0.5,
       "corr-coefficient, penalty 2 (default)"},
  };

  std::printf("%-38s %8s %12s %10s\n", "configuration", "found/8",
              "noise-clean", "windows");
  tycos::bench::PrintRule(74);
  for (const Combo& combo : combos) {
    TycosParams params;
    params.sigma = combo.sigma;
    params.s_min = 24;
    params.s_max = 400;
    params.td_max = 16;
    params.normalization = combo.mode;
    params.small_sample_penalty = combo.penalty;
    Tycos search(ds.pair, params, TycosVariant::kLMN);
    const WindowSet result = search.Run();

    int found = 0;
    bool noise_clean = true;
    for (const PlantedRelation& planted : ds.planted) {
      const bool hit =
          tycos::bench::Detects(result.windows(), planted, 0.25, 16);
      if (planted.type == RelationType::kIndependent) {
        noise_clean = !tycos::bench::Detects(result.windows(), planted, 0.25,
                                             /*delay_tolerance=*/-1);
      } else if (hit) {
        ++found;
      }
    }
    std::printf("%-38s %5d/8 %12s %10zu\n", combo.label, found,
                noise_clean ? "yes" : "NO", result.size());
  }
  std::printf("\nReading: the entropy ratio cannot lift the non-functional"
              "\nrelations (circle, cross) above a noise-safe sigma, so it"
              "\ntops out below 8/8. The correlation coefficient recovers"
              "\neverything; the small-sample penalty then cuts the window"
              "\nclutter (borderline short fragments) by an order of"
              "\nmagnitude without losing any relation - hence the "
              "defaults.\n");
  return 0;
}
