// Micro-benchmark: the Section 7 incremental MI computation vs recomputing
// each window from scratch, for the window-edit patterns the LAHC search
// actually generates (grow by δ, slide by δ). This is the ablation behind
// the TYCOS_LM speedups of Fig. 9.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "mi/incremental_ksg.h"
#include "mi/ksg.h"

namespace {

using namespace tycos;

SeriesPair MakePair(int64_t n) {
  Rng rng(5);
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.Normal();
    y[static_cast<size_t>(i)] = 0.6 * x[static_cast<size_t>(i)] + rng.Normal();
  }
  return SeriesPair(TimeSeries(std::move(x)), TimeSeries(std::move(y)));
}

// Grow the window end by δ repeatedly, recomputing from scratch each time.
void BM_GrowScratch(benchmark::State& state) {
  const int64_t m = state.range(0);
  static const SeriesPair pair = MakePair(20000);
  KsgOptions o;
  for (auto _ : state) {
    for (int64_t step = 0; step < 16; ++step) {
      benchmark::DoNotOptimize(KsgMi(pair, Window(0, m - 1 + 4 * step, 0), o));
    }
  }
}
BENCHMARK(BM_GrowScratch)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

// The same edit sequence through the incremental estimator.
void BM_GrowIncremental(benchmark::State& state) {
  const int64_t m = state.range(0);
  static const SeriesPair pair = MakePair(20000);
  for (auto _ : state) {
    IncrementalKsg inc(pair, 4);
    for (int64_t step = 0; step < 16; ++step) {
      benchmark::DoNotOptimize(inc.SetWindow(Window(0, m - 1 + 4 * step, 0)));
    }
  }
}
BENCHMARK(BM_GrowIncremental)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_SlideScratch(benchmark::State& state) {
  const int64_t m = state.range(0);
  static const SeriesPair pair = MakePair(20000);
  KsgOptions o;
  for (auto _ : state) {
    for (int64_t step = 0; step < 16; ++step) {
      benchmark::DoNotOptimize(
          KsgMi(pair, Window(4 * step, m - 1 + 4 * step, 0), o));
    }
  }
}
BENCHMARK(BM_SlideScratch)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_SlideIncremental(benchmark::State& state) {
  const int64_t m = state.range(0);
  static const SeriesPair pair = MakePair(20000);
  for (auto _ : state) {
    IncrementalKsg inc(pair, 4);
    for (int64_t step = 0; step < 16; ++step) {
      benchmark::DoNotOptimize(
          inc.SetWindow(Window(4 * step, m - 1 + 4 * step, 0)));
    }
  }
}
BENCHMARK(BM_SlideIncremental)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
