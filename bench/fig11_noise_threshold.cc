// Fig. 11 reproduction: effect of the noise threshold ε on (a) the error
// rate — windows TYCOS_L finds that TYCOS_LN misses — and (b) the runtime
// gain of TYCOS_LN over TYCOS_L, as ε/σ grows. More aggressive pruning is
// faster and lossier.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/relations.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using tycos::bench::TimeIt;

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 320;
  p.td_max = 32;
  return p;
}

}  // namespace

int main() {
  std::printf("=== Fig. 11: effect of the noise threshold eps/sigma ===\n");

  const datagen::SyntheticDataset ds =
      datagen::SyntheticWorkload(3, 6000, /*seed=*/11);

  // Baseline: TYCOS_L (no noise theory).
  const TycosParams base = Params();
  WindowSet l_result;
  double l_seconds = 0.0;
  {
    Tycos search(ds.pair, base, TycosVariant::kL);
    l_seconds = TimeIt([&] { l_result = search.Run(); });
  }
  std::printf("TYCOS_L baseline: %zu windows in %.3f s\n\n", l_result.size(),
              l_seconds);

  std::printf("%10s %12s %14s %14s %12s\n", "eps/sigma", "windows",
              "error rate %", "runtime gain %", "seconds");
  tycos::bench::PrintRule(68);
  for (double ratio : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.70,
                       0.90}) {
    TycosParams p = Params();
    p.epsilon_ratio = ratio;
    Tycos search(ds.pair, p, TycosVariant::kLN);
    WindowSet ln_result;
    const double ln_seconds = TimeIt([&] { ln_result = search.Run(); });

    const double recovered = l_result.empty()
                                 ? 100.0
                                 : CoverageRecallPercent(l_result.windows(),
                                                         ln_result.windows());
    const double error_rate = 100.0 - recovered;
    const double gain = 100.0 * (l_seconds - ln_seconds) / l_seconds;
    std::printf("%10.2f %12zu %14.1f %14.1f %12.3f\n", ratio,
                ln_result.size(), error_rate, gain, ln_seconds);
  }
  return 0;
}
