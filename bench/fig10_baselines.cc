// Fig. 10 reproduction: runtime of the exact Brute Force search, the
// MatrixProfile baseline (one STOMP AB-join per candidate window length, the
// paper's "different window lengths" usage), and TYCOS_LMN, as the series
// grows. Both baselines are exact; the figure's point is the 2–3 orders of
// magnitude between them and TYCOS.
//
// Scaling note: the paper runs up to 100K points; the sweep here stops at
// 4K with reduced s_max/td_max so the exact baselines finish in seconds
// (see EXPERIMENTS.md). The *ratios* are the reproduced quantity.

#include <cstdio>

#include "baselines/matrix_profile.h"
#include "bench/bench_util.h"
#include "datagen/relations.h"
#include "search/brute_force_search.h"
#include "search/tycos.h"

namespace {

using namespace tycos;
using tycos::bench::TimeIt;

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 16;
  p.s_max = 96;
  p.td_max = 6;
  p.delta = 2;
  return p;
}

}  // namespace

int main() {
  std::printf("=== Fig. 10: Brute Force vs MatrixProfile vs TYCOS_LMN "
              "(seconds) ===\n");
  std::printf("%8s %12s %14s %12s %12s %12s\n", "n", "BruteForce",
              "MatrixProfile", "TYCOS_LMN", "BF/TYCOS", "MP/TYCOS");
  tycos::bench::PrintRule(76);

  for (int64_t n : {500, 1000, 2000, 4000}) {
    const datagen::SyntheticDataset ds =
        datagen::SyntheticWorkload(2, n, /*seed=*/n);
    const SeriesPair& pair = ds.pair;
    const TycosParams p = Params();

    const double t_bf =
        TimeIt([&] { BruteForceSearch(pair, p).Run(); });

    // MatrixProfile at every window length in [s_min, s_max] step 8 — the
    // multi-scale emulation the paper benchmarks against.
    const double t_mp = TimeIt([&] {
      for (int64_t m = p.s_min; m <= p.s_max; m += 8) {
        MatrixProfileAbJoin(pair.x().values(), pair.y().values(), m);
      }
    });

    double t_ty = 0.0;
    {
      Tycos search(pair, p, TycosVariant::kLMN);
      t_ty = TimeIt([&] { search.Run(); });
    }

    std::printf("%8lld %12.3f %14.3f %12.4f %11.0fx %11.0fx\n",
                static_cast<long long>(n), t_bf, t_mp, t_ty,
                t_ty > 0 ? t_bf / t_ty : 0.0, t_ty > 0 ? t_mp / t_ty : 0.0);
  }

  // MatrixProfile is O(n^2) per window length while TYCOS grows
  // quasi-linearly, so their gap keeps widening; extend the sweep without
  // the (much slower) exact search to show the trend.
  std::printf("\nlarger n (Brute Force omitted):\n");
  std::printf("%8s %14s %12s %12s\n", "n", "MatrixProfile", "TYCOS_LMN",
              "MP/TYCOS");
  tycos::bench::PrintRule(50);
  for (int64_t n : {8000, 16000}) {
    const datagen::SyntheticDataset ds =
        datagen::SyntheticWorkload(2, n, /*seed=*/n);
    const SeriesPair& pair = ds.pair;
    const TycosParams p = Params();
    const double t_mp = TimeIt([&] {
      for (int64_t m = p.s_min; m <= p.s_max; m += 8) {
        MatrixProfileAbJoin(pair.x().values(), pair.y().values(), m);
      }
    });
    double t_ty = 0.0;
    {
      Tycos search(pair, p, TycosVariant::kLMN);
      t_ty = TimeIt([&] { search.Run(); });
    }
    std::printf("%8lld %14.3f %12.4f %11.0fx\n", static_cast<long long>(n),
                t_mp, t_ty, t_ty > 0 ? t_mp / t_ty : 0.0);
  }
  return 0;
}
