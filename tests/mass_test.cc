#include "baselines/mass.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tycos {
namespace {

// Pair where y replays x's shape at `delay` in [lo, hi), noise elsewhere.
SeriesPair ReplayPair(int64_t n, int64_t lo, int64_t hi, int64_t delay,
                      uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.Normal();
    y[static_cast<size_t>(i)] = rng.Normal();
  }
  for (int64_t i = lo; i < hi; ++i) {
    // Affine copy: z-normalized matching must see distance ~0.
    y[static_cast<size_t>(i + delay)] = 2.0 * x[static_cast<size_t>(i)] + 5.0;
  }
  return SeriesPair(TimeSeries(std::move(x)), TimeSeries(std::move(y)));
}

TEST(MassBestMatchTest, FindsExactReplay) {
  const SeriesPair pair = ReplayPair(500, 200, 260, 0, 1);
  const MassMatch m =
      MassBestMatch(pair.x().values(), pair.y().values(), 200, 60);
  EXPECT_EQ(m.match_start, 200);
  EXPECT_NEAR(m.distance, 0.0, 1e-4);
}

TEST(MassBestMatchTest, FindsShiftedReplayAtShiftedPosition) {
  const SeriesPair pair = ReplayPair(500, 200, 260, 30, 2);
  const MassMatch m =
      MassBestMatch(pair.x().values(), pair.y().values(), 200, 60);
  EXPECT_EQ(m.match_start, 230);
  EXPECT_NEAR(m.distance, 0.0, 1e-4);
}

TEST(MassBestMatchTest, NoReplayGivesLargeDistance) {
  const SeriesPair pair = ReplayPair(500, 0, 0, 0, 3);  // pure noise
  const MassMatch m =
      MassBestMatch(pair.x().values(), pair.y().values(), 100, 64);
  EXPECT_GT(m.distance, 0.3 * std::sqrt(2.0 * 64.0));
}

TEST(MassScanTest, DetectsAlignedRelation) {
  const SeriesPair pair = ReplayPair(800, 300, 420, 0, 4);
  MassScanOptions opt;
  opt.window = 64;
  opt.stride = 16;
  const auto matches = MassScan(pair, opt);
  ASSERT_FALSE(matches.empty());
  // Matches should sit inside the replay region.
  for (const MassMatch& m : matches) {
    EXPECT_GE(m.query_start, 300 - opt.window);
    EXPECT_LE(m.query_start, 420);
  }
}

TEST(MassScanTest, MissesDelayedRelationDueToAlignment) {
  // The relation exists but at delay 120 — outside align_tolerance, so the
  // aligned scan (the paper's usage) reports nothing.
  const SeriesPair pair = ReplayPair(800, 300, 420, 120, 5);
  MassScanOptions opt;
  opt.window = 64;
  opt.stride = 16;
  opt.align_tolerance = 16;
  EXPECT_TRUE(MassScan(pair, opt).empty());
}

TEST(MassScanTest, PureNoiseYieldsNothing) {
  const SeriesPair pair = ReplayPair(600, 0, 0, 0, 6);
  MassScanOptions opt;
  EXPECT_TRUE(MassScan(pair, opt).empty());
}

}  // namespace
}  // namespace tycos
