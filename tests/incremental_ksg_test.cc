#include "mi/incremental_ksg.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mi/ksg.h"

namespace tycos {
namespace {

SeriesPair RandomPair(int64_t n, uint64_t seed, double coupling = 0.0) {
  Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.Normal();
    y[static_cast<size_t>(i)] =
        coupling * x[static_cast<size_t>(i)] + rng.Normal();
  }
  return SeriesPair(TimeSeries(std::move(x)), TimeSeries(std::move(y)));
}

double BatchMi(const SeriesPair& pair, const Window& w, int k) {
  KsgOptions o;
  o.k = k;
  o.backend = KnnBackend::kBrute;
  return KsgMi(pair, w, o);
}

TEST(IncrementalKsgTest, FirstWindowMatchesBatch) {
  const SeriesPair pair = RandomPair(300, 1, 0.8);
  IncrementalKsg inc(pair, 4);
  const Window w(10, 120, 0);
  EXPECT_NEAR(inc.SetWindow(w), BatchMi(pair, w, 4), 1e-9);
}

TEST(IncrementalKsgTest, GrowEndOneStepAtATime) {
  const SeriesPair pair = RandomPair(400, 2, 0.5);
  IncrementalKsg inc(pair, 4);
  inc.SetWindow(Window(50, 80, 0));
  for (int64_t end = 81; end <= 140; ++end) {
    const Window w(50, end, 0);
    ASSERT_NEAR(inc.SetWindow(w), BatchMi(pair, w, 4), 1e-9)
        << "end=" << end;
  }
  EXPECT_EQ(inc.stats().full_rebuilds, 1);  // only the initial window
  EXPECT_EQ(inc.stats().incremental_moves, 60);
}

TEST(IncrementalKsgTest, ShrinkFromBothSides) {
  const SeriesPair pair = RandomPair(300, 3, 0.9);
  IncrementalKsg inc(pair, 3);
  inc.SetWindow(Window(20, 200, 0));
  const Window shrunk(40, 170, 0);
  EXPECT_NEAR(inc.SetWindow(shrunk), BatchMi(pair, shrunk, 3), 1e-9);
  EXPECT_EQ(inc.stats().full_rebuilds, 1);
}

TEST(IncrementalKsgTest, SlideWindowForward) {
  const SeriesPair pair = RandomPair(500, 4, 0.7);
  IncrementalKsg inc(pair, 4);
  inc.SetWindow(Window(0, 99, 0));
  for (int64_t s = 5; s <= 100; s += 5) {
    const Window w(s, s + 99, 0);
    ASSERT_NEAR(inc.SetWindow(w), BatchMi(pair, w, 4), 1e-9) << "s=" << s;
  }
  EXPECT_EQ(inc.stats().full_rebuilds, 1);
}

TEST(IncrementalKsgTest, DelayChangeTriggersRebuildButStaysCorrect) {
  const SeriesPair pair = RandomPair(300, 5, 0.6);
  IncrementalKsg inc(pair, 4);
  inc.SetWindow(Window(50, 150, 0));
  const Window shifted(50, 150, 7);
  EXPECT_NEAR(inc.SetWindow(shifted), BatchMi(pair, shifted, 4), 1e-9);
  EXPECT_EQ(inc.stats().full_rebuilds, 2);
}

TEST(IncrementalKsgTest, DisjointJumpRebuilds) {
  const SeriesPair pair = RandomPair(600, 6, 0.4);
  IncrementalKsg inc(pair, 4);
  inc.SetWindow(Window(0, 60, 0));
  const Window far(400, 480, 0);
  EXPECT_NEAR(inc.SetWindow(far), BatchMi(pair, far, 4), 1e-9);
  EXPECT_EQ(inc.stats().full_rebuilds, 2);
}

TEST(IncrementalKsgTest, NegativeDelays) {
  const SeriesPair pair = RandomPair(300, 7, 0.8);
  IncrementalKsg inc(pair, 4);
  const Window w(100, 180, -9);
  EXPECT_NEAR(inc.SetWindow(w), BatchMi(pair, w, 4), 1e-9);
  const Window w2(95, 190, -9);
  EXPECT_NEAR(inc.SetWindow(w2), BatchMi(pair, w2, 4), 1e-9);
}

TEST(IncrementalKsgTest, TooSmallWindowScoresZero) {
  const SeriesPair pair = RandomPair(100, 8);
  IncrementalKsg inc(pair, 4);
  EXPECT_DOUBLE_EQ(inc.SetWindow(Window(0, 3, 0)), 0.0);
  EXPECT_DOUBLE_EQ(inc.CurrentMi(), 0.0);
  // Recovers to a normal window afterwards.
  const Window w(0, 50, 0);
  EXPECT_NEAR(inc.SetWindow(w), BatchMi(pair, w, 4), 1e-9);
}

TEST(IncrementalKsgTest, CurrentMiIsStableAcrossReads) {
  const SeriesPair pair = RandomPair(200, 9, 0.5);
  IncrementalKsg inc(pair, 4);
  const double v = inc.SetWindow(Window(10, 150, 2));
  EXPECT_DOUBLE_EQ(inc.CurrentMi(), v);
  EXPECT_DOUBLE_EQ(inc.CurrentMi(), v);
}

TEST(IncrementalKsgTest, MarginalUpdatesDominateKnnRecomputes) {
  // On smooth data, most added points should only touch IMRs, not IRs —
  // that's the whole point of Section 7.
  const SeriesPair pair = RandomPair(2000, 10, 0.3);
  IncrementalKsg inc(pair, 4);
  inc.SetWindow(Window(0, 499, 0));
  for (int64_t end = 500; end < 900; ++end) inc.SetWindow(Window(0, end, 0));
  const auto& st = inc.stats();
  EXPECT_GT(st.marginal_updates, 0);
  // Each added point scans all existing points for IR hits, but only a
  // small fraction should trigger a kNN recompute.
  EXPECT_LT(st.knn_recomputes, st.points_added * 60);
}

struct WalkCase {
  int64_t n;
  int k;
  double coupling;
  uint64_t seed;
};

class IncrementalWalkTest : public ::testing::TestWithParam<WalkCase> {};

// The central property test: a random walk of window edits (grow, shrink,
// slide, delay changes, jumps) must track the batch estimator bit-for-bit.
TEST_P(IncrementalWalkTest, RandomEditWalkMatchesBatch) {
  const WalkCase c = GetParam();
  const SeriesPair pair = RandomPair(c.n, c.seed, c.coupling);
  IncrementalKsg inc(pair, c.k);
  Rng rng(c.seed * 31 + 7);

  int64_t start = c.n / 4;
  int64_t end = start + 50;
  int64_t delay = 0;
  for (int step = 0; step < 120; ++step) {
    const int64_t move = rng.UniformInt(0, 5);
    switch (move) {
      case 0:
        end = std::min(end + rng.UniformInt(1, 8), c.n - 1);
        break;
      case 1:
        end = std::max(end - rng.UniformInt(1, 8), start + c.k + 2);
        break;
      case 2:
        start = std::max<int64_t>(start - rng.UniformInt(1, 8), 0);
        break;
      case 3:
        start = std::min(start + rng.UniformInt(1, 8), end - c.k - 2);
        break;
      case 4:
        delay = rng.UniformInt(-10, 10);
        break;
      default: {  // occasional far jump
        start = rng.UniformInt(0, c.n - 80);
        end = start + rng.UniformInt(c.k + 2, 70);
        break;
      }
    }
    // Keep the Y window in range.
    if (start + delay < 0) delay = -start;
    if (end + delay >= c.n) delay = c.n - 1 - end;
    const Window w(start, end, delay);
    const double got = inc.SetWindow(w);
    const double expected = BatchMi(pair, w, c.k);
    ASSERT_NEAR(got, expected, 1e-9)
        << "step " << step << " window " << w.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalWalkTest,
    ::testing::Values(WalkCase{400, 4, 0.0, 1}, WalkCase{400, 4, 0.9, 2},
                      WalkCase{600, 2, 0.5, 3}, WalkCase{600, 6, 0.5, 4},
                      WalkCase{300, 1, 0.7, 5}, WalkCase{500, 3, 0.2, 6}));

TEST(IncrementalWalkTest, DiscreteValuedDataWalk) {
  // Heavy ties (integer-valued series) stress the closed-interval counting.
  Rng rng(77);
  const int64_t n = 400;
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = static_cast<double>(rng.UniformInt(0, 6));
    y[static_cast<size_t>(i)] = static_cast<double>(rng.UniformInt(0, 6));
  }
  const SeriesPair pair(TimeSeries(std::move(x)), TimeSeries(std::move(y)));
  IncrementalKsg inc(pair, 4);
  inc.SetWindow(Window(0, 60, 0));
  for (int64_t end = 61; end <= 200; ++end) {
    const Window w(0, end, 0);
    ASSERT_NEAR(inc.SetWindow(w), BatchMi(pair, w, 4), 1e-9) << "end=" << end;
  }
}

}  // namespace
}  // namespace tycos
