#include "core/window_similarity.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(IndexJaccardTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(IndexJaccard(Window(0, 9, 0), Window(0, 9, 5)), 1.0);
}

TEST(IndexJaccardTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(IndexJaccard(Window(0, 9, 0), Window(10, 19, 0)), 0.0);
}

TEST(IndexJaccardTest, HalfOverlap) {
  // [0,9] vs [5,14]: intersection 5, union 15.
  EXPECT_NEAR(IndexJaccard(Window(0, 9, 0), Window(5, 14, 0)), 5.0 / 15.0,
              1e-12);
}

TEST(IndexJaccardTest, NestedWindow) {
  // [0,19] vs [5,9]: intersection 5, union 20.
  EXPECT_NEAR(IndexJaccard(Window(0, 19, 0), Window(5, 9, 0)), 0.25, 1e-12);
}

TEST(IndexJaccardTest, Symmetric) {
  const Window a(3, 17, 0), b(10, 40, 0);
  EXPECT_DOUBLE_EQ(IndexJaccard(a, b), IndexJaccard(b, a));
}

TEST(MeanBestJaccardTest, PerfectRecovery) {
  std::vector<Window> ref = {Window(0, 9, 0), Window(20, 29, 0)};
  EXPECT_DOUBLE_EQ(MeanBestJaccard(ref, ref), 1.0);
}

TEST(MeanBestJaccardTest, EmptyReference) {
  EXPECT_DOUBLE_EQ(MeanBestJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MeanBestJaccard({}, {Window(0, 9, 0)}), 0.0);
}

TEST(MeanBestJaccardTest, MissingWindowLowersScore) {
  std::vector<Window> ref = {Window(0, 9, 0), Window(20, 29, 0)};
  std::vector<Window> cand = {Window(0, 9, 0)};
  EXPECT_DOUBLE_EQ(MeanBestJaccard(ref, cand), 0.5);
}

TEST(MatchAccuracyPercentTest, ThresholdBehaviour) {
  std::vector<Window> ref = {Window(0, 9, 0)};
  // Candidate overlaps 5/15 = 0.333: below 0.5 threshold, above 0.3.
  std::vector<Window> cand = {Window(5, 14, 0)};
  EXPECT_DOUBLE_EQ(MatchAccuracyPercent(ref, cand, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(MatchAccuracyPercent(ref, cand, 0.3), 100.0);
}

TEST(MatchAccuracyPercentTest, PartialRecovery) {
  std::vector<Window> ref = {Window(0, 9, 0), Window(20, 29, 0),
                             Window(40, 49, 0), Window(60, 69, 0)};
  std::vector<Window> cand = {Window(0, 9, 0), Window(21, 28, 0),
                              Window(100, 109, 0)};
  // First two matched (Jaccard 1.0 and 0.8), remaining two missed.
  EXPECT_DOUBLE_EQ(MatchAccuracyPercent(ref, cand, 0.5), 50.0);
}

TEST(SymmetricAccuracyPercentTest, PenalizesSpuriousWindows) {
  std::vector<Window> ref = {Window(0, 9, 0)};
  std::vector<Window> exact = {Window(0, 9, 0)};
  std::vector<Window> noisy = {Window(0, 9, 0), Window(50, 59, 0),
                               Window(70, 79, 0)};
  EXPECT_DOUBLE_EQ(SymmetricAccuracyPercent(ref, exact), 100.0);
  const double with_spurious = SymmetricAccuracyPercent(ref, noisy);
  EXPECT_LT(with_spurious, 100.0);
  EXPECT_GT(with_spurious, 0.0);
}

TEST(OverlapCoefficientTest, ContainedWindowScoresOne) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Window(0, 99, 0), Window(20, 39, 5)),
                   1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Window(20, 39, 5), Window(0, 99, 0)),
                   1.0);
}

TEST(OverlapCoefficientTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Window(0, 9, 0), Window(20, 29, 0)),
                   0.0);
}

TEST(OverlapCoefficientTest, PartialOverlap) {
  // [0,9] vs [5,24]: intersection 5, smaller window 10.
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Window(0, 9, 0), Window(5, 24, 0)),
                   0.5);
}

TEST(CoverageRecallPercentTest, FragmentsCountAsHits) {
  // One big exact window; the heuristic reports a small fragment inside it.
  std::vector<Window> reference = {Window(100, 399, 0)};
  std::vector<Window> fragments = {Window(150, 209, 2)};
  EXPECT_DOUBLE_EQ(CoverageRecallPercent(reference, fragments), 100.0);
}

TEST(CoverageRecallPercentTest, MissedRegionLowersRecall) {
  std::vector<Window> reference = {Window(0, 99, 0), Window(500, 599, 0)};
  std::vector<Window> candidates = {Window(20, 59, 0)};
  EXPECT_DOUBLE_EQ(CoverageRecallPercent(reference, candidates), 50.0);
}

TEST(CoverageRecallPercentTest, EmptySets) {
  EXPECT_DOUBLE_EQ(CoverageRecallPercent({}, {}), 100.0);
  EXPECT_DOUBLE_EQ(CoverageRecallPercent({}, {Window(0, 9, 0)}), 0.0);
  EXPECT_DOUBLE_EQ(CoverageRecallPercent({Window(0, 9, 0)}, {}), 0.0);
}

TEST(SymmetricAccuracyPercentTest, ZeroWhenNothingMatches) {
  std::vector<Window> ref = {Window(0, 9, 0)};
  std::vector<Window> cand = {Window(50, 59, 0)};
  EXPECT_DOUBLE_EQ(SymmetricAccuracyPercent(ref, cand), 0.0);
}

}  // namespace
}  // namespace tycos
