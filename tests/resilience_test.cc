// End-to-end resilience suite: deadlines, cancellation, evaluation budgets,
// fault injection, and hostile input across every search driver. The core
// contract under test: a run that is stopped early or fed corrupted scores
// still returns a *valid* result — a non-nested, feasibility- and
// σ-respecting window set — and reports how it stopped, instead of
// crashing, hanging, or emitting poisoned windows.

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_context.h"
#include "core/data_policy.h"
#include "core/window_similarity.h"
#include "datagen/relations.h"
#include "search/brute_force_search.h"
#include "search/fault_injector.h"
#include "search/pairwise.h"
#include "search/streaming.h"
#include "search/tycos.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TycosParams TestParams() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 320;
  p.td_max = 32;
  p.delta = 4;
  p.k = 4;
  p.max_idle = 8;
  return p;
}

// A dataset large enough that a full search takes far longer than the short
// deadlines used below, so deadline tests cannot complete by accident.
const SyntheticDataset& BigDataset() {
  static const SyntheticDataset* ds = new SyntheticDataset(ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 250, 0},
       SegmentSpec{RelationType::kSine, 250, 8},
       SegmentSpec{RelationType::kQuadratic, 250, 16},
       SegmentSpec{RelationType::kLinear, 250, 0},
       SegmentSpec{RelationType::kCircle, 250, 4},
       SegmentSpec{RelationType::kSine, 250, 24},
       SegmentSpec{RelationType::kQuadratic, 250, 0},
       SegmentSpec{RelationType::kLinear, 250, 12}},
      /*gap=*/200, /*seed=*/77));
  return *ds;
}

const SyntheticDataset& SmallDataset() {
  static const SyntheticDataset* ds = new SyntheticDataset(ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0}}, /*gap=*/200, /*seed=*/78));
  return *ds;
}

// The validity contract every result — complete or partial — must satisfy.
void ExpectValidWindowSet(const WindowSet& set, int64_t n,
                          const TycosParams& p) {
  const auto& ws = set.windows();
  for (const Window& w : ws) {
    EXPECT_TRUE(IsFeasible(w, n, p.s_min, p.s_max, p.td_max)) << w.ToString();
    EXPECT_TRUE(std::isfinite(w.mi)) << w.ToString();
    if (p.top_k == 0) {
      EXPECT_GE(w.mi, p.sigma) << w.ToString();
    }
  }
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = 0; j < ws.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Contains(ws[i], ws[j]));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RunContext semantics.

TEST(RunContextTest, NoLimitsNeverStops) {
  const RunContext& ctx = RunContext::None();
  EXPECT_FALSE(ctx.HasLimits());
  EXPECT_FALSE(ctx.ShouldStop(std::numeric_limits<int64_t>::max()));
}

TEST(RunContextTest, CancellationWinsOverOtherReasons) {
  RunContext ctx = RunContext::WithEvaluationBudget(1);
  ctx.RequestCancel();
  auto stop = ctx.ShouldStop(/*evaluations_used=*/100);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, StopReason::kCancelled);
}

TEST(RunContextTest, BudgetTriggersAtTheBoundary) {
  RunContext ctx = RunContext::WithEvaluationBudget(10);
  EXPECT_FALSE(ctx.ShouldStop(9));
  auto stop = ctx.ShouldStop(10);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, StopReason::kBudgetExhausted);
}

TEST(RunContextTest, ExpiredDeadlineStops) {
  RunContext ctx = RunContext::WithDeadline(-1.0);  // already in the past
  auto stop = ctx.ShouldStop();
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, StopReason::kDeadlineExceeded);
}

TEST(RunContextTest, StopReasonNames) {
  EXPECT_STREQ(StopReasonName(StopReason::kCompleted), "completed");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonName(StopReason::kBudgetExhausted),
               "budget_exhausted");
}

// ---------------------------------------------------------------------------
// Deadlines, budgets, and cancellation across all four search variants.

class ResilienceVariantTest : public ::testing::TestWithParam<TycosVariant> {};

TEST_P(ResilienceVariantTest, ShortDeadlineYieldsValidPartialResult) {
  const SyntheticDataset& ds = BigDataset();
  const TycosParams p = TestParams();
  Result<std::unique_ptr<Tycos>> search = Tycos::Create(ds.pair, p, GetParam());
  ASSERT_TRUE(search.ok());
  const RunContext ctx = RunContext::WithDeadline(0.05);
  Result<SearchOutcome> outcome = search.value()->Run(ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->partial) << TycosVariantName(GetParam());
  EXPECT_EQ(outcome->stop_reason, StopReason::kDeadlineExceeded);
  EXPECT_EQ(search.value()->stats().stop_reason,
            StopReason::kDeadlineExceeded);
  ExpectValidWindowSet(outcome->windows, ds.pair.size(), p);
}

TEST_P(ResilienceVariantTest, EvaluationBudgetStopsTheRun) {
  const SyntheticDataset& ds = BigDataset();
  const TycosParams p = TestParams();
  Result<std::unique_ptr<Tycos>> search = Tycos::Create(ds.pair, p, GetParam());
  ASSERT_TRUE(search.ok());
  const RunContext ctx = RunContext::WithEvaluationBudget(300);
  Result<SearchOutcome> outcome = search.value()->Run(ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->stop_reason, StopReason::kBudgetExhausted);
  EXPECT_GE(search.value()->stats().mi_evaluations, 300);
  ExpectValidWindowSet(outcome->windows, ds.pair.size(), p);
}

TEST_P(ResilienceVariantTest, PreCancelledContextReturnsImmediately) {
  const SyntheticDataset& ds = SmallDataset();
  const TycosParams p = TestParams();
  Result<std::unique_ptr<Tycos>> search = Tycos::Create(ds.pair, p, GetParam());
  ASSERT_TRUE(search.ok());
  RunContext ctx;
  ctx.RequestCancel();
  Result<SearchOutcome> outcome = search.value()->Run(ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(outcome->windows.empty());
  EXPECT_EQ(search.value()->stats().mi_evaluations, 0);
}

TEST_P(ResilienceVariantTest, UnlimitedContextMatchesLegacyRun) {
  const SyntheticDataset& ds = SmallDataset();
  const TycosParams p = TestParams();
  Result<std::unique_ptr<Tycos>> a = Tycos::Create(ds.pair, p, GetParam());
  ASSERT_TRUE(a.ok());
  Result<SearchOutcome> outcome = a.value()->Run(RunContext::None());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->partial);
  EXPECT_EQ(outcome->stop_reason, StopReason::kCompleted);

  Tycos b(ds.pair, p, GetParam());
  const auto legacy = b.Run().Sorted();
  const auto limited = outcome->windows.Sorted();
  ASSERT_EQ(legacy.size(), limited.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_TRUE(legacy[i].SameSpan(limited[i]));
    EXPECT_DOUBLE_EQ(legacy[i].mi, limited[i].mi);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ResilienceVariantTest,
                         ::testing::Values(TycosVariant::kL, TycosVariant::kLN,
                                           TycosVariant::kLM,
                                           TycosVariant::kLMN),
                         [](const auto& info) {
                           return std::string(TycosVariantName(info.param))
                                      .substr(6);  // strip "TYCOS_"
                         });

// Incremental and non-incremental searches share the evaluation order and
// (exact) estimator, so the *same* budget must cut them at the same place:
// identical partial results, not merely similar ones.
TEST(ResilienceTest, IncrementalAndBatchDegradeIdentically) {
  const SyntheticDataset& ds = BigDataset();
  const TycosParams p = TestParams();
  WindowSet results[2];
  const TycosVariant variants[2] = {TycosVariant::kL, TycosVariant::kLM};
  for (int i = 0; i < 2; ++i) {
    Result<std::unique_ptr<Tycos>> search =
        Tycos::Create(ds.pair, p, variants[i], /*seed=*/5);
    ASSERT_TRUE(search.ok());
    const RunContext ctx = RunContext::WithEvaluationBudget(500);
    Result<SearchOutcome> outcome = search.value()->Run(ctx);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->partial);
    results[i] = std::move(outcome->windows);
  }
  const auto rl = results[0].Sorted();
  const auto rlm = results[1].Sorted();
  ASSERT_EQ(rl.size(), rlm.size());
  for (size_t i = 0; i < rl.size(); ++i) {
    EXPECT_TRUE(rl[i].SameSpan(rlm[i])) << rl[i].ToString() << " vs "
                                        << rlm[i].ToString();
    EXPECT_NEAR(rl[i].mi, rlm[i].mi, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Fault injection.

TEST(FaultInjectionTest, CancelMidClimbPreservesBestSoFar) {
  const SyntheticDataset& ds = BigDataset();
  const TycosParams p = TestParams();
  Result<std::unique_ptr<Tycos>> search =
      Tycos::Create(ds.pair, p, TycosVariant::kLMN);
  ASSERT_TRUE(search.ok());
  RunContext ctx;
  FaultInjector* injector = nullptr;
  search.value()->WrapEvaluatorForTest(
      [&](std::unique_ptr<WindowEvaluator> inner)
          -> std::unique_ptr<WindowEvaluator> {
        FaultPlan plan;
        plan.cancel_context = &ctx;
        plan.cancel_at = 120;  // deep inside the first climbs
        auto fi = std::make_unique<FaultInjector>(std::move(inner), plan);
        injector = fi.get();
        return fi;
      });
  Result<SearchOutcome> outcome = search.value()->Run(ctx);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(injector->faults_injected(), 1);
  EXPECT_GE(injector->scores_served(), 120);
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->stop_reason, StopReason::kCancelled);
  ExpectValidWindowSet(outcome->windows, ds.pair.size(), p);
}

TEST(FaultInjectionTest, CorruptedScoresNeverReachTheResultSet) {
  const SyntheticDataset& ds = SmallDataset();
  const TycosParams p = TestParams();
  for (double poison : {kNaN, std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()}) {
    Result<std::unique_ptr<Tycos>> search =
        Tycos::Create(ds.pair, p, TycosVariant::kL);
    ASSERT_TRUE(search.ok());
    search.value()->WrapEvaluatorForTest(
        [&](std::unique_ptr<WindowEvaluator> inner)
            -> std::unique_ptr<WindowEvaluator> {
          FaultPlan plan;
          plan.corrupt_every = 7;
          plan.corrupt_value = poison;
          return std::make_unique<FaultInjector>(std::move(inner), plan);
        });
    Result<SearchOutcome> outcome = search.value()->Run(RunContext::None());
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->partial);
    EXPECT_GT(search.value()->stats().non_finite_scores, 0);
    ExpectValidWindowSet(outcome->windows, ds.pair.size(), p);
  }
}

TEST(FaultInjectionTest, DegeneratingEstimatorEndsSearchCleanly) {
  // A flatlining estimator (every score 0 from some point on) must starve
  // the search, not wedge it: the run completes and later windows are gone.
  const SyntheticDataset& ds = SmallDataset();
  const TycosParams p = TestParams();
  Result<std::unique_ptr<Tycos>> search =
      Tycos::Create(ds.pair, p, TycosVariant::kL);
  ASSERT_TRUE(search.ok());
  search.value()->WrapEvaluatorForTest(
      [&](std::unique_ptr<WindowEvaluator> inner)
          -> std::unique_ptr<WindowEvaluator> {
        FaultPlan plan;
        plan.degenerate_from = 1;  // every score is 0
        return std::make_unique<FaultInjector>(std::move(inner), plan);
      });
  Result<SearchOutcome> outcome = search.value()->Run(RunContext::None());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->partial);
  EXPECT_TRUE(outcome->windows.empty());
}

// ---------------------------------------------------------------------------
// Graceful construction.

TEST(GracefulCreateTest, TycosRejectsBadParams) {
  const SyntheticDataset& ds = SmallDataset();
  TycosParams p = TestParams();
  p.sigma = 0.0;
  Result<std::unique_ptr<Tycos>> r =
      Tycos::Create(ds.pair, p, TycosVariant::kL);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GracefulCreateTest, TycosRejectsNonFiniteSeries) {
  std::vector<double> xs(600, 0.0), ys(600, 0.0);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(0.1 * static_cast<double>(i));
    ys[i] = std::cos(0.1 * static_cast<double>(i));
  }
  xs[311] = kNaN;
  const SeriesPair pair{TimeSeries(xs, "x"), TimeSeries(ys, "y")};
  Result<std::unique_ptr<Tycos>> r =
      Tycos::Create(pair, TestParams(), TycosVariant::kLMN);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("311"), std::string::npos)
      << r.status().message();
}

TEST(GracefulCreateTest, BruteForceValidatesInput) {
  const SyntheticDataset& ds = SmallDataset();
  TycosParams bad = TestParams();
  bad.s_min = 2;  // < k + 2
  EXPECT_FALSE(BruteForceSearch::Create(ds.pair, bad).ok());
  EXPECT_TRUE(BruteForceSearch::Create(ds.pair, TestParams()).ok());
}

TEST(GracefulCreateTest, StreamingValidatesTriggerAndShape) {
  TycosParams p = TestParams();
  EXPECT_TRUE(StreamingTycos::Create(p, TycosVariant::kLMN).ok());
  // Trigger below s_min can never accumulate a searchable chunk.
  Result<std::unique_ptr<StreamingTycos>> r = StreamingTycos::Create(
      p, TycosVariant::kLMN, /*seed=*/1, /*search_trigger=*/p.s_min - 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  p.k = 0;
  EXPECT_FALSE(StreamingTycos::Create(p, TycosVariant::kLMN).ok());
}

TEST(GracefulCreateTest, SeriesPairCreateChecksLengthAndFiniteness) {
  EXPECT_FALSE(
      SeriesPair::Create(TimeSeries({1.0, 2.0}), TimeSeries({1.0})).ok());
  EXPECT_FALSE(
      SeriesPair::Create(TimeSeries({1.0, kNaN}), TimeSeries({1.0, 2.0}))
          .ok());
  EXPECT_TRUE(
      SeriesPair::Create(TimeSeries({1.0, 2.0}), TimeSeries({3.0, 4.0})).ok());
}

// ---------------------------------------------------------------------------
// Brute force under limits.

TEST(BruteForceResilienceTest, BudgetCutsEnumerationShort) {
  const SyntheticDataset& ds = SmallDataset();
  TycosParams p = TestParams();
  p.s_max = 64;
  p.td_max = 8;
  Result<std::unique_ptr<BruteForceSearch>> search =
      BruteForceSearch::Create(ds.pair, p);
  ASSERT_TRUE(search.ok());
  const int64_t feasible = search.value()->CountFeasibleWindows();
  const RunContext ctx = RunContext::WithEvaluationBudget(1000);
  Result<BruteForceResult> result = search.value()->Run(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->stop_reason, StopReason::kBudgetExhausted);
  EXPECT_LT(result->windows_evaluated, feasible);
  for (const Window& w : result->raw) {
    EXPECT_GE(w.mi, p.sigma);
    EXPECT_TRUE(std::isfinite(w.mi));
  }
}

TEST(BruteForceResilienceTest, UnlimitedRunIsComplete) {
  const SyntheticDataset& ds = SmallDataset();
  TycosParams p = TestParams();
  p.s_max = 48;
  p.td_max = 4;
  Result<std::unique_ptr<BruteForceSearch>> search =
      BruteForceSearch::Create(ds.pair, p);
  ASSERT_TRUE(search.ok());
  Result<BruteForceResult> result = search.value()->Run(RunContext::None());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->partial);
  EXPECT_EQ(result->stop_reason, StopReason::kCompleted);
  EXPECT_EQ(result->windows_evaluated, search.value()->CountFeasibleWindows());
}

// ---------------------------------------------------------------------------
// Pairwise under limits and hostile input.

std::vector<TimeSeries> TestChannels() {
  const SyntheticDataset a = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0}}, /*gap=*/150, /*seed=*/21);
  const SyntheticDataset b = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 150, 0}}, /*gap=*/150, /*seed=*/22);
  const int64_t n = std::min(a.pair.size(), b.pair.size());
  auto head = [n](const TimeSeries& s, const char* name) {
    std::vector<double> v(s.values().begin(),
                          s.values().begin() + static_cast<size_t>(n));
    return TimeSeries(std::move(v), name);
  };
  return {head(a.pair.x(), "a"), head(a.pair.y(), "b"),
          head(b.pair.x(), "c"), head(b.pair.y(), "d")};
}

TEST(PairwiseResilienceTest, RejectsHostileChannels) {
  std::vector<TimeSeries> channels = TestChannels();
  EXPECT_FALSE(PairwiseSearch({channels[0]}, TestParams(), TycosVariant::kL,
                              42, RunContext::None())
                   .ok());

  std::vector<double> short_series(channels[0].values().begin(),
                                   channels[0].values().begin() + 100);
  std::vector<TimeSeries> mismatched = {channels[0],
                                        TimeSeries(short_series, "short")};
  Result<PairwiseResult> r = PairwiseSearch(
      mismatched, TestParams(), TycosVariant::kL, 42, RunContext::None());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  std::vector<double> poisoned = channels[1].values();
  poisoned[17] = kNaN;
  std::vector<TimeSeries> with_nan = {channels[0],
                                      TimeSeries(poisoned, "poisoned")};
  EXPECT_FALSE(PairwiseSearch(with_nan, TestParams(), TycosVariant::kL, 42,
                              RunContext::None())
                   .ok());
}

TEST(PairwiseResilienceTest, DeadlineSkipsRemainingPairs) {
  std::vector<TimeSeries> channels = TestChannels();
  const RunContext ctx = RunContext::WithDeadline(0.02);
  Result<PairwiseResult> r = PairwiseSearch(channels, TestParams(),
                                            TycosVariant::kLMN, 42, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->partial);
  EXPECT_EQ(r->stop_reason, StopReason::kDeadlineExceeded);
  EXPECT_EQ(r->pairs_searched + r->pairs_skipped, 6);  // C(4, 2)
  EXPECT_LT(r->pairs_searched, 6);
}

TEST(PairwiseResilienceTest, UnlimitedRunCoversEveryPair) {
  std::vector<TimeSeries> channels = TestChannels();
  Result<PairwiseResult> r = PairwiseSearch(
      channels, TestParams(), TycosVariant::kLMN, 42, RunContext::None());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->partial);
  EXPECT_EQ(r->pairs_searched, 6);
  EXPECT_EQ(r->pairs_skipped, 0);
  EXPECT_EQ(r->stop_reason, StopReason::kCompleted);
}

// ---------------------------------------------------------------------------
// Streaming under limits and hostile input.

std::vector<double> Wave(int64_t n, double phase, uint64_t salt) {
  std::vector<double> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // A deterministic pseudo-noise term keeps samples tie-free.
    const double jitter = static_cast<double>(
        (static_cast<uint64_t>(i + 1) * 2654435761ull + salt) % 1000) * 1e-6;
    v[static_cast<size_t>(i)] =
        std::sin(0.07 * static_cast<double>(i) + phase) + jitter;
  }
  return v;
}

TEST(StreamingResilienceTest, MismatchedAppendIsRejectedAndNotBuffered) {
  Result<std::unique_ptr<StreamingTycos>> stream =
      StreamingTycos::Create(TestParams(), TycosVariant::kLMN);
  ASSERT_TRUE(stream.ok());
  const Status st = stream.value()->Append(Wave(64, 0.0, 1), Wave(63, 0.0, 2));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.value()->samples_seen(), 0);
  EXPECT_EQ(stream.value()->retained_samples(), 0);
}

TEST(StreamingResilienceTest, RejectPolicyRefusesNonFiniteChunks) {
  Result<std::unique_ptr<StreamingTycos>> stream = StreamingTycos::Create(
      TestParams(), TycosVariant::kLMN, 42, 0, DataPolicy::kReject);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream.value()->Append(Wave(50, 0.0, 1), Wave(50, 0.5, 2)).ok());
  std::vector<double> xs = Wave(50, 0.0, 3);
  xs[10] = kNaN;
  const Status st = stream.value()->Append(xs, Wave(50, 0.5, 4));
  ASSERT_FALSE(st.ok());
  // The error names the *global* stream position of the bad sample.
  EXPECT_NE(st.message().find("60"), std::string::npos) << st.message();
  EXPECT_EQ(stream.value()->samples_seen(), 50);
}

TEST(StreamingResilienceTest, DropPolicyRemovesHostilePairs) {
  Result<std::unique_ptr<StreamingTycos>> stream = StreamingTycos::Create(
      TestParams(), TycosVariant::kLMN, 42, 0, DataPolicy::kDropRow);
  ASSERT_TRUE(stream.ok());
  std::vector<double> xs = Wave(50, 0.0, 1);
  std::vector<double> ys = Wave(50, 0.5, 2);
  xs[3] = kNaN;
  ys[40] = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(stream.value()->Append(xs, ys).ok());
  EXPECT_EQ(stream.value()->samples_seen(), 48);
  EXPECT_EQ(stream.value()->ingest_stats().rows_dropped, 2);
}

TEST(StreamingResilienceTest, InterpolatePolicyRepairsGaps) {
  Result<std::unique_ptr<StreamingTycos>> stream = StreamingTycos::Create(
      TestParams(), TycosVariant::kLMN, 42, 0, DataPolicy::kInterpolate);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream.value()->Append(Wave(50, 0.0, 1), Wave(50, 0.5, 2)).ok());
  std::vector<double> xs = Wave(50, 0.0, 3);
  xs[0] = kNaN;   // interpolates across the chunk boundary
  xs[20] = kNaN;
  xs[49] = kNaN;  // trailing gap: clamps to the last finite value
  ASSERT_TRUE(stream.value()->Append(xs, Wave(50, 0.5, 4)).ok());
  EXPECT_EQ(stream.value()->samples_seen(), 100);
  EXPECT_EQ(stream.value()->ingest_stats().interpolated, 3);
}

TEST(StreamingResilienceTest, DeadlinedPassReportsPartialAndMovesOn) {
  TycosParams p = TestParams();
  p.s_max = 128;
  p.td_max = 16;
  Result<std::unique_ptr<StreamingTycos>> stream =
      StreamingTycos::Create(p, TycosVariant::kLMN);
  ASSERT_TRUE(stream.ok());
  const RunContext ctx = RunContext::WithDeadline(1e-6);  // already hopeless
  stream.value()->set_run_context(&ctx);
  // Two correlated channels large enough to trigger a pass.
  const std::vector<double> xs = Wave(600, 0.0, 1);
  ASSERT_TRUE(stream.value()->Append(xs, xs).ok());
  ASSERT_TRUE(stream.value()->Flush().ok());
  ASSERT_GT(stream.value()->search_passes(), 0);
  EXPECT_TRUE(stream.value()->last_pass_partial());
  EXPECT_EQ(stream.value()->last_stop_reason(),
            StopReason::kDeadlineExceeded);
  // The stream still advances: ingest is never blocked by a slow search.
  EXPECT_EQ(stream.value()->samples_seen(), 600);

  // Clearing the context restores full passes on fresh data.
  stream.value()->set_run_context(nullptr);
  ASSERT_TRUE(stream.value()->Append(xs, xs).ok());
  ASSERT_TRUE(stream.value()->Flush().ok());
  EXPECT_FALSE(stream.value()->last_pass_partial());
}

}  // namespace
}  // namespace tycos
