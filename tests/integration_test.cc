// End-to-end pipelines: generate → persist → reload → search → validate
// against ground truth, and cross-method comparisons on one dataset.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "baselines/amic.h"
#include "core/window_similarity.h"
#include "datagen/energy_sim.h"
#include "datagen/relations.h"
#include "io/csv.h"
#include "search/brute_force_search.h"
#include "search/tycos.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TEST(IntegrationTest, CsvRoundTripThenSearch) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 150, 0}}, /*gap=*/150, /*seed=*/1);

  const std::string path = ::testing::TempDir() + "/tycos_integration.csv";
  ASSERT_TRUE(WriteCsv(path, {ds.pair.x(), ds.pair.y()}).ok());
  const auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  const auto x = ColumnAsSeries(*table, "X");
  const auto y = ColumnAsSeries(*table, "Y");
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  const SeriesPair reloaded(*x, *y);

  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 300;
  p.td_max = 16;
  Tycos search(reloaded, p, TycosVariant::kLMN);
  const WindowSet result = search.Run();
  ASSERT_FALSE(result.empty());
  bool covered = false;
  for (const Window& w : result.windows()) {
    covered |= IndexJaccard(w, ds.planted[0].AsWindow()) > 0.3;
  }
  EXPECT_TRUE(covered);
  std::remove(path.c_str());
}

TEST(IntegrationTest, TycosMatchesBruteForceOnSmallInstance) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 80, 2}}, /*gap=*/60, /*seed=*/2);
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 16;
  p.s_max = 96;
  p.td_max = 4;
  p.delta = 2;

  const BruteForceResult bf = BruteForceSearch(ds.pair, p).Run();
  const WindowSet heuristic = Tycos(ds.pair, p, TycosVariant::kLMN).Run();

  ASSERT_FALSE(bf.merged.empty());
  ASSERT_FALSE(heuristic.empty());
  // The heuristic must rediscover the brute-force windows (Table 4's
  // similarity metric): every merged BF window overlapped by something.
  const double acc =
      MatchAccuracyPercent(bf.merged, heuristic.windows(), 0.3);
  EXPECT_GE(acc, 50.0);
}

TEST(IntegrationTest, TycosBeatsAmicOnDelayedData) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kQuadratic, 180, 24}}, /*gap=*/180,
      /*seed=*/3);
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 250;
  p.td_max = 32;

  const WindowSet tycos_result = Tycos(ds.pair, p, TycosVariant::kLMN).Run();
  AmicOptions ao;
  ao.sigma = p.sigma;
  ao.s_min = p.s_min;
  const AmicResult amic_result = AmicSearch(ds.pair, ao);

  const Window truth = ds.planted[0].AsWindow();
  bool tycos_found = false;
  for (const Window& w : tycos_result.windows()) {
    tycos_found |= IndexJaccard(w, truth) > 0.3;
  }
  bool amic_found = false;
  for (const Window& w : amic_result.windows.windows()) {
    amic_found |= IndexJaccard(w, truth) > 0.3;
  }
  EXPECT_TRUE(tycos_found);
  EXPECT_FALSE(amic_found);  // AMIC cannot see the τ=24 shift
}

TEST(IntegrationTest, EnergyPipelineExtractsLaggedCorrelation) {
  datagen::EnergySimOptions opt;
  opt.days = 6;
  opt.samples_per_hour = 6;  // 10-minute samples keep the test fast
  datagen::EnergySimulator sim(opt);
  const SeriesPair pair = sim.Pair(datagen::EnergyChannel::kClothesWasher,
                                   datagen::EnergyChannel::kDryer);
  TycosParams p;
  p.sigma = 0.4;
  p.s_min = 12;
  p.s_max = 288;  // up to 2 days
  p.td_max = 18;  // up to 3 hours
  p.tie_jitter = 1e-9;
  Tycos search(pair, p, TycosVariant::kLMN);
  const WindowSet result = search.Run();
  EXPECT_FALSE(result.empty());
}

TEST(IntegrationTest, WindowsExportImportRoundTrip) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 120, 0}}, /*gap=*/120, /*seed=*/4);
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 200;
  p.td_max = 8;
  const WindowSet result = Tycos(ds.pair, p, TycosVariant::kLMN).Run();
  ASSERT_FALSE(result.empty());

  const std::string path = ::testing::TempDir() + "/tycos_windows_it.csv";
  ASSERT_TRUE(WriteWindowsCsv(path, result.Sorted()).ok());
  const auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), static_cast<int64_t>(result.size()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tycos
