// Crash recovery end to end: a child process runs a durable pairwise
// search, the parent SIGKILLs it once the checkpoint shows progress, then
// resumes the job in-process and asserts the final result is bit-identical
// to an uninterrupted run. This is the real-kill counterpart of the
// pair-boundary interruption property in jobs_test.cc — no cooperative
// shutdown, no destructor runs, the process simply vanishes mid-append.
//
// Lives in its own binary (label: resilience) so CI can run exactly this
// under the ASan preset; fork() requires care, so the child runs the
// search single-threaded and exits via _exit().

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/rng.h"
#include "datagen/relations.h"
#include "jobs/checkpoint.h"
#include "jobs/durable_pairwise.h"
#include "search/pairwise.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using jobs::DurableJobOptions;
using jobs::LoadCheckpoint;
using jobs::ResumePairwiseSearch;

// Enough channels that the sweep takes long enough for the parent to
// observe mid-flight progress: C(6, 2) = 15 pairs.
std::vector<TimeSeries> MakeChannels() {
  const auto ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 8}}, /*gap=*/200, /*seed=*/17);
  std::vector<TimeSeries> channels = {ds.pair.x(), ds.pair.y()};
  Rng rng(1234);
  for (int i = 0; i < 4; ++i) {
    std::vector<double> noise(static_cast<size_t>(ds.pair.size()));
    for (double& v : noise) v = rng.Normal();
    channels.emplace_back(std::move(noise), "N" + std::to_string(i));
  }
  return channels;
}

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 300;
  p.td_max = 16;
  p.num_threads = 1;  // fork safety: no pool threads in the child
  return p;
}

#if defined(__unix__) || defined(__APPLE__)

// Polls the checkpoint until it holds >= min_records records (or gives up).
int64_t WaitForRecords(const std::string& path, int64_t min_records) {
  for (int i = 0; i < 20000; ++i) {
    const auto loaded = LoadCheckpoint(path);
    if (loaded.ok() &&
        static_cast<int64_t>(loaded.value().pairs.size()) >= min_records) {
      return static_cast<int64_t>(loaded.value().pairs.size());
    }
    usleep(1000);
  }
  return -1;
}

TEST(CrashRecoveryTest, SigkillMidRunThenResumeIsBitIdentical) {
  const std::vector<TimeSeries> channels = MakeChannels();
  const TycosParams params = Params();
  const uint64_t seed = 42;
  const std::string path =
      ::testing::TempDir() + "/tycos_crash_recovery.ckpt";
  std::remove(path.c_str());

  const PairwiseResult want =
      PairwiseSearch(channels, params, TycosVariant::kLMN, seed);

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: run the durable job to completion (if the parent is too slow
    // to kill us, that is fine — the checkpoint is complete either way).
    DurableJobOptions opts;
    opts.checkpoint_path = path;
    const auto r = ResumePairwiseSearch(channels, params, TycosVariant::kLMN,
                                        seed, RunContext::None(), opts);
    _exit(r.ok() ? 0 : 1);
  }

  // Parent: wait until the child has durably finished a few pairs, then
  // kill it without any chance to clean up.
  const int64_t seen = WaitForRecords(path, 2);
  ASSERT_GT(seen, 0) << "child never produced checkpoint records";
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);

  // The checkpoint must load despite the kill: at worst the final record
  // is torn and dropped.
  const auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const int64_t persisted = static_cast<int64_t>(loaded.value().pairs.size());
  ASSERT_GE(persisted, 2);

  // Resume in-process and compare against the uninterrupted run.
  DurableJobOptions opts;
  opts.checkpoint_path = path;
  const auto resumed = ResumePairwiseSearch(channels, params,
                                            TycosVariant::kLMN, seed,
                                            RunContext::None(), opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  const PairwiseResult& got = resumed.value().result;
  EXPECT_EQ(resumed.value().stats.pairs_resumed, persisted);
  EXPECT_EQ(got.stop_reason, StopReason::kCompleted);
  EXPECT_FALSE(got.partial);

  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].a, want.entries[i].a) << "entry " << i;
    EXPECT_EQ(got.entries[i].b, want.entries[i].b) << "entry " << i;
    EXPECT_EQ(got.entries[i].best_score, want.entries[i].best_score)
        << "entry " << i;  // bit-exact
    ASSERT_EQ(got.entries[i].windows.size(), want.entries[i].windows.size());
    const std::vector<Window>& gw = got.entries[i].windows.windows();
    const std::vector<Window>& ww = want.entries[i].windows.windows();
    for (size_t j = 0; j < gw.size(); ++j) {
      EXPECT_EQ(gw[j].start, ww[j].start);
      EXPECT_EQ(gw[j].end, ww[j].end);
      EXPECT_EQ(gw[j].delay, ww[j].delay);
      EXPECT_EQ(gw[j].mi, ww[j].mi);  // bit-exact
    }
  }
  std::remove(path.c_str());
}

TEST(CrashRecoveryTest, RepeatedKillsEventuallyComplete) {
  // Kill the job several times at whatever point it has reached; each
  // resume must only add records, never lose or change them, until the
  // job completes. Models a flaky host that keeps OOM-killing the search.
  const std::vector<TimeSeries> channels = MakeChannels();
  const TycosParams params = Params();
  const uint64_t seed = 7;
  const int64_t total =
      static_cast<int64_t>(channels.size() * (channels.size() - 1) / 2);
  const std::string path =
      ::testing::TempDir() + "/tycos_crash_repeat.ckpt";
  std::remove(path.c_str());

  int64_t prev_records = 0;
  for (int round = 0; round < 3; ++round) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      DurableJobOptions opts;
      opts.checkpoint_path = path;
      const auto r = ResumePairwiseSearch(
          channels, params, TycosVariant::kLMN, seed, RunContext::None(),
          opts);
      _exit(r.ok() ? 0 : 1);
    }
    (void)WaitForRecords(path, prev_records + 1);
    kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    const auto loaded = LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    const int64_t now = static_cast<int64_t>(loaded.value().pairs.size());
    EXPECT_GE(now, prev_records) << "a kill lost checkpointed records";
    prev_records = now;
  }

  DurableJobOptions opts;
  opts.checkpoint_path = path;
  const auto final_run = ResumePairwiseSearch(
      channels, params, TycosVariant::kLMN, seed, RunContext::None(), opts);
  ASSERT_TRUE(final_run.ok()) << final_run.status().message();
  EXPECT_EQ(final_run.value().result.stop_reason, StopReason::kCompleted);
  EXPECT_EQ(final_run.value().result.pairs_searched, total);
  EXPECT_GE(final_run.value().stats.pairs_resumed, prev_records);
  std::remove(path.c_str());
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace tycos
