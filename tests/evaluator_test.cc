#include "search/evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/relations.h"

namespace tycos {
namespace {

SeriesPair MakePair(int64_t n, uint64_t seed, double coupling) {
  Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.Normal();
    y[static_cast<size_t>(i)] =
        coupling * x[static_cast<size_t>(i)] + rng.Normal();
  }
  return SeriesPair(TimeSeries(std::move(x)), TimeSeries(std::move(y)));
}

TycosParams Params() {
  TycosParams p;
  p.s_min = 16;
  p.s_max = 400;
  p.td_max = 8;
  return p;
}

TEST(BatchEvaluatorTest, ScoreIsInUnitInterval) {
  const SeriesPair pair = MakePair(500, 1, 0.8);
  BatchEvaluator eval(pair, Params());
  for (int64_t s = 0; s < 300; s += 50) {
    const double score = eval.Score(Window(s, s + 120, 2));
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
  EXPECT_EQ(eval.evaluations(), 6);
}

TEST(BatchEvaluatorTest, StrongerCouplingScoresHigher) {
  const SeriesPair weak = MakePair(600, 2, 0.2);
  const SeriesPair strong = MakePair(600, 2, 2.0);
  BatchEvaluator weak_eval(weak, Params());
  BatchEvaluator strong_eval(strong, Params());
  const Window w(100, 400, 0);
  EXPECT_GT(strong_eval.Score(w), weak_eval.Score(w) + 0.2);
}

TEST(IncrementalEvaluatorTest, MatchesBatchAboveAndBelowThreshold) {
  const SeriesPair pair = MakePair(800, 3, 0.7);
  const TycosParams params = Params();
  BatchEvaluator batch(pair, params);
  IncrementalEvaluator inc(pair, params, /*small_window_threshold=*/96);
  // Below the threshold (stateless path) and above it (incremental path).
  for (const Window w : {Window(10, 60, 1), Window(100, 350, -2),
                         Window(120, 380, -2), Window(40, 80, 0),
                         Window(130, 390, -2)}) {
    EXPECT_NEAR(inc.Score(w), batch.Score(w), 1e-9) << w.ToString();
  }
}

TEST(IncrementalEvaluatorTest, SmallWindowsDoNotDisturbLargeState) {
  const SeriesPair pair = MakePair(800, 4, 0.5);
  const TycosParams params = Params();
  IncrementalEvaluator inc(pair, params, /*small_window_threshold=*/96);
  inc.Score(Window(100, 400, 0));
  const int64_t rebuilds_before = inc.incremental_stats().full_rebuilds;
  inc.Score(Window(10, 40, 0));   // stateless
  inc.Score(Window(50, 80, 3));   // stateless
  EXPECT_EQ(inc.incremental_stats().full_rebuilds, rebuilds_before);
  // Returning to an overlapping large window is an incremental move.
  inc.Score(Window(110, 410, 0));
  EXPECT_EQ(inc.incremental_stats().full_rebuilds, rebuilds_before);
  EXPECT_GT(inc.incremental_stats().incremental_moves, 0);
}

TEST(CachingEvaluatorTest, SecondLookupHitsCache) {
  const SeriesPair pair = MakePair(400, 5, 0.6);
  auto inner = std::make_unique<BatchEvaluator>(pair, Params());
  CachingEvaluator cache(std::move(inner));
  const Window w(50, 200, 1);
  const double first = cache.Score(w);
  const double second = cache.Score(w);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(cache.cache_hits(), 1);
  EXPECT_EQ(cache.evaluations(), 1);  // inner evaluator ran once
}

TEST(CachingEvaluatorTest, DistinctWindowsAreDistinctEntries) {
  const SeriesPair pair = MakePair(400, 6, 0.6);
  auto inner = std::make_unique<BatchEvaluator>(pair, Params());
  CachingEvaluator cache(std::move(inner));
  cache.Score(Window(50, 200, 1));
  cache.Score(Window(50, 200, -1));  // delay differs
  cache.Score(Window(50, 201, 1));   // end differs
  cache.Score(Window(49, 200, 1));   // start differs
  EXPECT_EQ(cache.cache_hits(), 0);
  EXPECT_EQ(cache.evaluations(), 4);
}

TEST(CachingEvaluatorTest, EvictionKeepsAnswersCorrect) {
  const SeriesPair pair = MakePair(300, 7, 0.9);
  auto inner = std::make_unique<BatchEvaluator>(pair, Params());
  CachingEvaluator cache(std::move(inner), /*max_entries=*/4);
  const Window w(30, 120, 0);
  const double expected = cache.Score(w);
  // Overflow the cache several times.
  for (int64_t s = 0; s < 40; ++s) cache.Score(Window(s, s + 90, 0));
  EXPECT_DOUBLE_EQ(cache.Score(w), expected);
}

TEST(MakeEvaluatorTest, HonorsCachingFlag) {
  const SeriesPair pair = MakePair(300, 8, 0.5);
  TycosParams with = Params();
  with.cache_evaluations = true;
  TycosParams without = Params();
  without.cache_evaluations = false;
  auto cached = MakeEvaluator(pair, with, /*incremental=*/false);
  auto plain = MakeEvaluator(pair, without, /*incremental=*/true);
  const Window w(20, 150, 2);
  // Same score either way; both calls on the cached one cost one evaluation.
  EXPECT_NEAR(cached->Score(w), plain->Score(w), 1e-9);
  cached->Score(w);
  EXPECT_EQ(cached->evaluations(), 1);
}

}  // namespace
}  // namespace tycos
