#include "mi/cmi.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mi/ksg.h"

namespace tycos {
namespace {

TEST(ConditionalMiTest, UnconditionalReducesToKsg1) {
  // With no conditioning columns the estimator is plain KSG-1 MI; it should
  // track the analytic Gaussian MI like the KSG-2 estimator does.
  Rng rng(1);
  const double rho = 0.8;
  std::vector<double> xs(2000), ys(2000);
  for (size_t i = 0; i < xs.size(); ++i) {
    const double a = rng.Normal(), b = rng.Normal();
    xs[i] = a;
    ys[i] = rho * a + std::sqrt(1 - rho * rho) * b;
  }
  const double analytic = -0.5 * std::log(1 - rho * rho);
  EXPECT_NEAR(ConditionalMi(xs, ys, {}), analytic, 0.1);
  EXPECT_NEAR(ConditionalMi(xs, ys, {}), KsgMi(xs, ys), 0.1);
}

TEST(ConditionalMiTest, IrrelevantConditionChangesLittle) {
  Rng rng(2);
  std::vector<double> xs(1200), ys(1200), zs(1200);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal();
    ys[i] = 0.9 * xs[i] + 0.4 * rng.Normal();
    zs[i] = rng.Normal();  // independent of both
  }
  const double plain = ConditionalMi(xs, ys, {});
  const double conditioned = ConditionalMi(xs, ys, {zs});
  EXPECT_NEAR(plain, conditioned, 0.15);
  EXPECT_GT(conditioned, 0.5);
}

TEST(ConditionalMiTest, CommonDriverIsExplainedAway) {
  // X and Y are both noisy copies of Z: strongly dependent marginally, but
  // conditionally (given Z) nearly independent.
  Rng rng(3);
  std::vector<double> xs(1200), ys(1200), zs(1200);
  for (size_t i = 0; i < xs.size(); ++i) {
    zs[i] = rng.Normal();
    xs[i] = zs[i] + 0.3 * rng.Normal();
    ys[i] = zs[i] + 0.3 * rng.Normal();
  }
  const double marginal = ConditionalMi(xs, ys, {});
  const double conditional = ConditionalMi(xs, ys, {zs});
  EXPECT_GT(marginal, 0.8);
  EXPECT_LT(conditional, 0.15);
}

TEST(ConditionalMiTest, GaussianPartialCorrelation) {
  // X = Z + a·N1, Y = Z + 0.5·X + b·N2: the partial correlation given Z is
  // analytic; CMI must match −½ln(1 − ρ²_partial) within estimator error.
  Rng rng(4);
  const size_t n = 1500;
  std::vector<double> xs(n), ys(n), zs(n);
  for (size_t i = 0; i < n; ++i) {
    zs[i] = rng.Normal();
    xs[i] = zs[i] + 0.8 * rng.Normal();
    ys[i] = zs[i] + 0.5 * xs[i] + 0.8 * rng.Normal();
  }
  // Given Z: X|Z = 0.8 N1, Y|Z = 0.5 X|Z + 0.8 N2 →
  // ρ_partial = 0.5·0.8 / sqrt(0.8² · (0.25·0.64 + 0.64)) = 0.4472.
  const double rho_partial =
      0.5 * 0.8 / std::sqrt(0.25 * 0.64 + 0.64);
  const double analytic = -0.5 * std::log(1 - rho_partial * rho_partial);
  EXPECT_NEAR(ConditionalMi(xs, ys, {zs}), analytic, 0.05);
}

TEST(ConditionalMiTest, MultipleConditioningColumns) {
  Rng rng(5);
  std::vector<double> xs(800), ys(800), z1(800), z2(800);
  for (size_t i = 0; i < xs.size(); ++i) {
    z1[i] = rng.Normal();
    z2[i] = rng.Normal();
    xs[i] = z1[i] - z2[i] + 0.2 * rng.Normal();
    ys[i] = z1[i] + z2[i] + 0.2 * rng.Normal();
  }
  const double marginal = ConditionalMi(xs, ys, {});
  const double given_both = ConditionalMi(xs, ys, {z1, z2});
  // x and y share z1 (positively) and z2 (negatively); conditioning on both
  // removes nearly all dependence.
  EXPECT_LT(given_both, std::max(0.15, marginal));
  EXPECT_LT(given_both, 0.15);
}

TEST(ConditionalMiTest, TinySampleReturnsZero) {
  EXPECT_DOUBLE_EQ(ConditionalMi({1, 2, 3}, {1, 2, 3}, {}), 0.0);
}

TEST(TransferEntropyTest, DetectsCouplingDirection) {
  // y_t = 0.5 y_{t-1} + 0.8 x_{t-1} + noise; x autonomous AR(1).
  Rng rng(6);
  const size_t n = 1500;
  std::vector<double> x(n), y(n);
  x[0] = rng.Normal();
  y[0] = rng.Normal();
  for (size_t t = 1; t < n; ++t) {
    x[t] = 0.6 * x[t - 1] + rng.Normal();
    y[t] = 0.5 * y[t - 1] + 0.8 * x[t - 1] + 0.5 * rng.Normal();
  }
  const CausalDirection d = EstimateDirection(x, y);
  EXPECT_GT(d.te_forward, 0.2);
  EXPECT_GT(d.margin(), 0.1);
}

TEST(TransferEntropyTest, IndependentSeriesCarryNoTransfer) {
  Rng rng(7);
  std::vector<double> x(1000), y(1000);
  for (size_t t = 0; t < x.size(); ++t) {
    x[t] = rng.Normal();
    y[t] = rng.Normal();
  }
  EXPECT_NEAR(TransferEntropy(x, y), 0.0, 0.05);
  EXPECT_NEAR(TransferEntropy(y, x), 0.0, 0.05);
}

TEST(TransferEntropyTest, LagMustMatchTheCoupling) {
  // Coupling at lag 3: TE at lag 3 beats TE at lag 1.
  Rng rng(8);
  const size_t n = 1500;
  std::vector<double> x(n), y(n);
  for (size_t t = 0; t < 3; ++t) {
    x[t] = rng.Normal();
    y[t] = rng.Normal();
  }
  for (size_t t = 3; t < n; ++t) {
    x[t] = rng.Normal();
    y[t] = 0.9 * x[t - 3] + 0.4 * rng.Normal();
  }
  TransferEntropyOptions at1;
  at1.lag = 1;
  TransferEntropyOptions at3;
  at3.lag = 3;
  EXPECT_GT(TransferEntropy(x, y, at3), TransferEntropy(x, y, at1) + 0.3);
}

TEST(TransferEntropyTest, LongerHistoryAbsorbsSelfPrediction) {
  // y is a pure AR(2): with history 2 the transfer from an independent x
  // stays ~0 and y's self-predictability does not leak into TE.
  Rng rng(9);
  const size_t n = 1200;
  std::vector<double> x(n), y(n);
  y[0] = rng.Normal();
  y[1] = rng.Normal();
  for (size_t t = 0; t < n; ++t) x[t] = rng.Normal();
  for (size_t t = 2; t < n; ++t) {
    y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + 0.5 * rng.Normal();
  }
  TransferEntropyOptions opt;
  opt.history = 2;
  EXPECT_NEAR(TransferEntropy(x, y, opt), 0.0, 0.06);
}

TEST(TransferEntropyTest, ShortSeriesReturnsZero) {
  EXPECT_DOUBLE_EQ(TransferEntropy({1, 2, 3}, {1, 2, 3}), 0.0);
}

}  // namespace
}  // namespace tycos
