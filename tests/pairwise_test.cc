#include "search/pairwise.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;

// Three channels: A and B share a planted relation, C is independent noise.
std::vector<TimeSeries> MakeChannels(uint64_t seed) {
  const auto ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 8}}, /*gap=*/200, seed);
  Rng rng(seed + 99);
  std::vector<double> c(static_cast<size_t>(ds.pair.size()));
  for (double& v : c) v = rng.Normal();
  return {ds.pair.x(), ds.pair.y(), TimeSeries(std::move(c), "C")};
}

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 300;
  p.td_max = 16;
  return p;
}

TEST(PairwiseSearchTest, RanksTheRelatedPairFirst) {
  const auto channels = MakeChannels(1);
  const PairwiseResult r =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN);
  ASSERT_EQ(r.entries.size(), 3u);  // (0,1), (0,2), (1,2)
  EXPECT_EQ(r.entries[0].a, 0);
  EXPECT_EQ(r.entries[0].b, 1);
  EXPECT_GT(r.entries[0].best_score, 0.5);
  EXPECT_FALSE(r.entries[0].windows.empty());
}

TEST(PairwiseSearchTest, UnrelatedPairsFindNothing) {
  const auto channels = MakeChannels(2);
  const PairwiseResult r =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN);
  const std::vector<size_t> correlated = r.Correlated();
  ASSERT_EQ(correlated.size(), 1u);
  EXPECT_EQ(r.entries[correlated[0]].a, 0);
  EXPECT_EQ(r.entries[correlated[0]].b, 1);
}

TEST(PairwiseSearchTest, CoversAllUnorderedPairs) {
  const auto channels = MakeChannels(3);
  const PairwiseResult r =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN);
  int seen[3][3] = {};
  for (const PairwiseEntry& e : r.entries) {
    ASSERT_LT(e.a, e.b);
    ++seen[e.a][e.b];
  }
  EXPECT_EQ(seen[0][1], 1);
  EXPECT_EQ(seen[0][2], 1);
  EXPECT_EQ(seen[1][2], 1);
}

TEST(PairwiseSearchTest, DeterministicForFixedSeed) {
  const auto channels = MakeChannels(4);
  const PairwiseResult r1 =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN, 7);
  const PairwiseResult r2 =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN, 7);
  ASSERT_EQ(r1.entries.size(), r2.entries.size());
  for (size_t i = 0; i < r1.entries.size(); ++i) {
    EXPECT_EQ(r1.entries[i].a, r2.entries[i].a);
    EXPECT_EQ(r1.entries[i].b, r2.entries[i].b);
    EXPECT_DOUBLE_EQ(r1.entries[i].best_score, r2.entries[i].best_score);
  }
}

}  // namespace
}  // namespace tycos
