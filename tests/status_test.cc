#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad sigma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad sigma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad sigma");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
}

}  // namespace
}  // namespace tycos
