#include "baselines/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/sliding_dot.h"

namespace tycos {
namespace {

std::vector<double> RandomSeries(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.Normal();
  return v;
}

// Naive O(n² m) AB-join for cross-checking.
MatrixProfileResult NaiveAbJoin(const std::vector<double>& a,
                                const std::vector<double>& b, int64_t m) {
  auto znorm = [m](const std::vector<double>& s, int64_t pos) {
    std::vector<double> w(s.begin() + pos, s.begin() + pos + m);
    double mu = 0;
    for (double v : w) mu += v;
    mu /= static_cast<double>(m);
    double var = 0;
    for (double v : w) var += (v - mu) * (v - mu);
    var /= static_cast<double>(m);
    const double sd = std::sqrt(var);
    for (double& v : w) v = sd > 0 ? (v - mu) / sd : 0.0;
    return w;
  };
  MatrixProfileResult r;
  r.m = m;
  const int64_t ra = static_cast<int64_t>(a.size()) - m + 1;
  const int64_t rb = static_cast<int64_t>(b.size()) - m + 1;
  for (int64_t i = 0; i < ra; ++i) {
    const auto wa = znorm(a, i);
    double best = std::numeric_limits<double>::infinity();
    int64_t bj = -1;
    for (int64_t j = 0; j < rb; ++j) {
      const auto wb = znorm(b, j);
      double d = 0;
      for (int64_t t = 0; t < m; ++t) {
        d += (wa[static_cast<size_t>(t)] - wb[static_cast<size_t>(t)]) *
             (wa[static_cast<size_t>(t)] - wb[static_cast<size_t>(t)]);
      }
      d = std::sqrt(d);
      if (d < best) {
        best = d;
        bj = j;
      }
    }
    r.profile.push_back(best);
    r.index.push_back(bj);
  }
  return r;
}

TEST(MatrixProfileTest, AbJoinMatchesNaive) {
  const auto a = RandomSeries(120, 1);
  const auto b = RandomSeries(150, 2);
  const int64_t m = 12;
  const auto fast = MatrixProfileAbJoin(a, b, m);
  const auto naive = NaiveAbJoin(a, b, m);
  ASSERT_EQ(fast.profile.size(), naive.profile.size());
  for (size_t i = 0; i < fast.profile.size(); ++i) {
    ASSERT_NEAR(fast.profile[i], naive.profile[i], 1e-6) << "i=" << i;
  }
}

TEST(MatrixProfileTest, FindsPlantedCrossMatch) {
  auto a = RandomSeries(400, 3);
  auto b = RandomSeries(400, 4);
  // Plant: b[200..250) replays a[100..150).
  for (int64_t i = 0; i < 50; ++i) {
    b[static_cast<size_t>(200 + i)] = a[static_cast<size_t>(100 + i)];
  }
  const auto r = MatrixProfileAbJoin(a, b, 50);
  EXPECT_NEAR(r.profile[100], 0.0, 1e-6);
  EXPECT_EQ(r.index[100], 200);
}

TEST(MatrixProfileTest, PlantedMatchIsProfileMinimum) {
  auto a = RandomSeries(300, 5);
  auto b = RandomSeries(300, 6);
  for (int64_t i = 0; i < 40; ++i) {
    b[static_cast<size_t>(60 + i)] = -3.0 * a[static_cast<size_t>(220 + i)];
  }
  const auto r = MatrixProfileAbJoin(a, b, 40);
  // Anti-correlated replay: z-normalized distance is NOT zero (sign flips),
  // so check the positively-scaled case instead at another site.
  const auto it = std::min_element(r.profile.begin(), r.profile.end());
  EXPECT_GE(it - r.profile.begin(), 0);
}

TEST(MatrixProfileTest, SelfJoinFindsRepeatedMotif) {
  auto a = RandomSeries(500, 7);
  // Repeat a[50..90) at position 300.
  for (int64_t i = 0; i < 40; ++i) {
    a[static_cast<size_t>(300 + i)] = a[static_cast<size_t>(50 + i)];
  }
  const auto r = MatrixProfileSelfJoin(a, 40);
  EXPECT_NEAR(r.profile[50], 0.0, 1e-6);
  EXPECT_EQ(r.index[50], 300);
  EXPECT_NEAR(r.profile[300], 0.0, 1e-6);
  EXPECT_EQ(r.index[300], 50);
}

TEST(MatrixProfileTest, SelfJoinExclusionZonePreventsTrivialMatch) {
  const auto a = RandomSeries(200, 8);
  const auto r = MatrixProfileSelfJoin(a, 20);
  for (size_t i = 0; i < r.index.size(); ++i) {
    ASSERT_GT(std::llabs(static_cast<long long>(i) - r.index[i]), 10)
        << "i=" << i;
  }
}

TEST(MatrixProfileTest, ProfileLengthIsCorrect) {
  const auto a = RandomSeries(100, 9);
  const auto b = RandomSeries(80, 10);
  const auto r = MatrixProfileAbJoin(a, b, 16);
  EXPECT_EQ(r.profile.size(), 100u - 16u + 1u);
  EXPECT_EQ(r.m, 16);
}

}  // namespace
}  // namespace tycos
