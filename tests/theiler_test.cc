// Tests for the Theiler-window (dynamic correlation exclusion) extension of
// the KSG estimator: autocorrelated but unrelated series must stop looking
// dependent, while genuine relations keep their MI.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/relations.h"
#include "mi/ksg.h"
#include "search/tycos.h"

namespace tycos {
namespace {

// A smooth (reflected random walk) series: heavy serial correlation.
std::vector<double> SmoothWalk(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  double w = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    w += rng.Normal(0.0, 0.1);
    if (w > 1.0) w = 2.0 - w;
    if (w < -1.0) w = -2.0 - w;
    v[static_cast<size_t>(i)] = w;
  }
  return v;
}

TEST(TheilerKsgTest, KillsTrajectoryManifoldArtifact) {
  // Independent smooth walks: the plain estimator reports positive "MI"
  // (temporal neighbours trace a 1-D curve). With a Theiler window of the
  // walk's decorrelation scale (~66 steps) and a window several times that,
  // the worst case over many draws collapses towards zero.
  double inflated_max = 0.0, honest_max = 0.0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const auto x = SmoothWalk(500, seed);
    const auto y = SmoothWalk(500, seed + 100);
    KsgOptions plain;
    inflated_max = std::max(inflated_max, KsgMi(x, y, plain));
    KsgOptions corrected;
    corrected.theiler_window = 50;
    honest_max = std::max(honest_max, KsgMi(x, y, corrected));
  }
  EXPECT_GT(inflated_max, 0.25);  // the artifact this feature exists to fix
  EXPECT_LT(honest_max, 0.15);
  EXPECT_LT(honest_max, 0.5 * inflated_max);
}

TEST(TheilerKsgTest, PreservesGenuineRelationOnIidData) {
  // On serially-independent data the exclusion removes almost nothing.
  Rng rng(3);
  std::vector<double> xs(600), ys(600);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(-2, 2);
    ys[i] = std::sin(3.0 * xs[i]) + 0.05 * rng.Normal();
  }
  KsgOptions plain;
  KsgOptions corrected;
  corrected.theiler_window = 10;
  const double a = KsgMi(xs, ys, plain);
  const double b = KsgMi(xs, ys, corrected);
  EXPECT_GT(b, 1.0);
  EXPECT_NEAR(a, b, 0.35);
}

TEST(TheilerKsgTest, PreservesGenuineRelationOnSmoothData) {
  // y is a function of a smooth x: real dependence must survive exclusion.
  const auto x = SmoothWalk(400, 4);
  std::vector<double> y(x.size());
  Rng rng(5);
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] * x[i] + 0.02 * rng.Normal();
  }
  KsgOptions corrected;
  corrected.theiler_window = 50;
  EXPECT_GT(KsgMi(x, y, corrected), 1.0);
}

TEST(TheilerKsgTest, TooFewEligibleSamplesReturnsZero) {
  const auto x = SmoothWalk(50, 6);
  const auto y = SmoothWalk(50, 7);
  KsgOptions o;
  o.theiler_window = 25;  // excludes (almost) everything
  EXPECT_DOUBLE_EQ(KsgMi(x, y, o), 0.0);
}

TEST(TheilerKsgTest, ZeroWindowMatchesPlainEstimatorPath) {
  Rng rng(8);
  std::vector<double> xs(300), ys(300);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal();
    ys[i] = 0.6 * xs[i] + rng.Normal();
  }
  KsgOptions plain;
  KsgOptions zero;
  zero.theiler_window = 0;
  EXPECT_DOUBLE_EQ(KsgMi(xs, ys, plain), KsgMi(xs, ys, zero));
}

TEST(TheilerParamsTest, ValidationCouplesWindowAndSmin) {
  TycosParams p;
  p.theiler_window = 10;
  p.s_min = 24;  // < 2*10 + 4 + 3
  EXPECT_FALSE(p.Validate(10000).ok());
  p.s_min = 2 * 10 + p.k + 3;
  EXPECT_TRUE(p.Validate(10000).ok());
  p.theiler_window = -1;
  EXPECT_FALSE(p.Validate(10000).ok());
}

TEST(TheilerSearchTest, ReducesSpuriousWindowsOnSmoothNoise) {
  // Two unrelated smooth series. The exclusion removes the local
  // trajectory-manifold inflation, so the corrected search reports no more
  // (and typically weaker) windows than the plain one. It cannot reach
  // zero here: integrated (random-walk) series also co-trend over long
  // stretches — genuine sample correlation that no estimator fix removes
  // (the classic spurious-regression effect; differencing is the remedy).
  const int64_t n = 3000;
  SeriesPair pair{TimeSeries(SmoothWalk(n, 10)), TimeSeries(SmoothWalk(n, 11))};

  TycosParams plain;
  plain.sigma = 0.5;
  plain.s_min = 400;
  plain.s_max = 700;
  plain.td_max = 16;
  const WindowSet spurious = Tycos(pair, plain, TycosVariant::kLMN).Run();
  EXPECT_FALSE(spurious.empty());  // the artifact

  TycosParams corrected = plain;
  corrected.theiler_window = 150;
  const WindowSet clean = Tycos(pair, corrected, TycosVariant::kLMN).Run();
  EXPECT_LE(clean.size(), spurious.size());
}

TEST(TheilerSearchTest, StillFindsRealRelationOnSmoothData) {
  // Walk-sampled planted relation: the corrected search must keep finding
  // it (real dependence survives temporal exclusion).
  const datagen::SyntheticDataset ds = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kQuadratic, 400, 0}},
      /*gap=*/300, /*seed=*/12, datagen::XSampling::kRandomWalk);
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 64;
  p.s_max = 500;
  p.td_max = 8;
  p.theiler_window = 25;
  const WindowSet result = Tycos(ds.pair, p, TycosVariant::kLMN).Run();
  ASSERT_FALSE(result.empty());
  bool covered = false;
  for (const Window& w : result.windows()) {
    covered |= Overlaps(w, ds.planted[0].AsWindow());
  }
  EXPECT_TRUE(covered);
}

}  // namespace
}  // namespace tycos
