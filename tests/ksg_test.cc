#include "mi/ksg.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mi/histogram_mi.h"

namespace tycos {
namespace {

// Correlated bivariate Gaussian sample with correlation rho.
void GaussianPair(int n, double rho, uint64_t seed, std::vector<double>* xs,
                  std::vector<double>* ys) {
  Rng rng(seed);
  xs->resize(static_cast<size_t>(n));
  ys->resize(static_cast<size_t>(n));
  const double c = std::sqrt(1.0 - rho * rho);
  for (int i = 0; i < n; ++i) {
    const double a = rng.Normal();
    const double b = rng.Normal();
    (*xs)[static_cast<size_t>(i)] = a;
    (*ys)[static_cast<size_t>(i)] = rho * a + c * b;
  }
}

// Exact MI of a bivariate Gaussian: -0.5 ln(1 - rho²).
double GaussianMi(double rho) { return -0.5 * std::log(1.0 - rho * rho); }

TEST(KsgMiTest, IndependentDataHasNearZeroMi) {
  std::vector<double> xs, ys;
  GaussianPair(2000, 0.0, 1, &xs, &ys);
  const double mi = KsgMi(xs, ys);
  EXPECT_NEAR(mi, 0.0, 0.05);
}

class KsgGaussianTest : public ::testing::TestWithParam<double> {};

TEST_P(KsgGaussianTest, RecoversAnalyticGaussianMi) {
  const double rho = GetParam();
  std::vector<double> xs, ys;
  GaussianPair(4000, rho, 42, &xs, &ys);
  const double mi = KsgMi(xs, ys);
  EXPECT_NEAR(mi, GaussianMi(rho), 0.08) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, KsgGaussianTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.9, -0.5,
                                           -0.8));

TEST(KsgMiTest, StrongFunctionalRelationHasHighMi) {
  Rng rng(7);
  std::vector<double> xs(1000), ys(1000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(-2, 2);
    ys[i] = std::sin(3.0 * xs[i]) + 0.01 * rng.Normal();
  }
  EXPECT_GT(KsgMi(xs, ys), 1.5);  // near-deterministic, non-monotone
}

TEST(KsgMiTest, InvariantUnderMonotoneTransformOfX) {
  std::vector<double> xs, ys;
  GaussianPair(2000, 0.7, 3, &xs, &ys);
  const double base = KsgMi(xs, ys);
  std::vector<double> ex(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) ex[i] = std::exp(xs[i]);
  const double transformed = KsgMi(ex, ys);
  // MI is invariant under smooth monotone reparameterization; KSG tracks
  // this closely.
  EXPECT_NEAR(base, transformed, 0.1);
}

TEST(KsgMiTest, BackendsAgreeExactly) {
  std::vector<double> xs, ys;
  GaussianPair(800, 0.6, 9, &xs, &ys);
  KsgOptions brute, kd, grid;
  brute.backend = KnnBackend::kBrute;
  kd.backend = KnnBackend::kKdTree;
  grid.backend = KnnBackend::kGrid;
  const double reference = KsgMi(xs, ys, brute);
  EXPECT_DOUBLE_EQ(reference, KsgMi(xs, ys, kd));
  EXPECT_DOUBLE_EQ(reference, KsgMi(xs, ys, grid));
}

TEST(KsgMiTest, TooFewSamplesReturnsZero) {
  std::vector<double> xs = {1, 2, 3};
  std::vector<double> ys = {4, 5, 6};
  KsgOptions o;
  o.k = 4;
  EXPECT_DOUBLE_EQ(KsgMi(xs, ys, o), 0.0);
}

TEST(KsgMiTest, LargerKStillTracksGaussianMi) {
  std::vector<double> xs, ys;
  GaussianPair(3000, 0.8, 12, &xs, &ys);
  KsgOptions o;
  o.k = 10;
  EXPECT_NEAR(KsgMi(xs, ys, o), GaussianMi(0.8), 0.1);
}

TEST(KsgMiTest, WindowOverloadRespectsDelay) {
  // Relation planted at delay 5: y[i+5] = x[i].
  Rng rng(21);
  const int64_t n = 400;
  std::vector<double> x(static_cast<size_t>(n)), y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = rng.Uniform(0, 1);
    y[static_cast<size_t>(i)] = rng.Uniform(0, 1);
  }
  for (int64_t i = 0; i + 5 < n; ++i) {
    y[static_cast<size_t>(i + 5)] = x[static_cast<size_t>(i)];
  }
  SeriesPair pair{TimeSeries(x), TimeSeries(y)};
  const double aligned = KsgMi(pair, Window(50, 250, 5));
  const double misaligned = KsgMi(pair, Window(50, 250, 0));
  EXPECT_GT(aligned, 2.0);
  EXPECT_LT(misaligned, 0.3);
}

TEST(KsgMiTest, TieJitterMakesDiscreteDataFinite) {
  // Identical discrete values create massive ties; jitter must keep the
  // estimator finite and roughly correct (X determines Y: high MI).
  std::vector<double> xs, ys;
  Rng rng(33);
  for (int i = 0; i < 600; ++i) {
    const double v = static_cast<double>(rng.UniformInt(0, 3));
    xs.push_back(v);
    ys.push_back(v);
  }
  KsgOptions o;
  o.tie_jitter = 1e-6;
  const double mi = KsgMi(xs, ys, o);
  EXPECT_TRUE(std::isfinite(mi));
  EXPECT_GT(mi, 0.8);  // H(X) = ln 4 ≈ 1.39 is the ceiling
}

TEST(KsgMiTest, AgreesWithHistogramEstimatorOnStrongRelation) {
  std::vector<double> xs, ys;
  GaussianPair(4000, 0.9, 5, &xs, &ys);
  const double ksg = KsgMi(xs, ys);
  const double hist = HistogramMi(xs, ys);
  // Both should land near the analytic 0.830; histogram is biased but the
  // two independent estimators must agree to ~25%.
  EXPECT_NEAR(ksg, hist, 0.25 * std::max(ksg, hist));
}

TEST(NormalizedMiTest, BoundsRespected) {
  std::vector<double> xs, ys;
  GaussianPair(1000, 0.9, 8, &xs, &ys);
  for (const auto mode : {MiNormalization::kEntropyRatio,
                          MiNormalization::kCorrelationCoefficient}) {
    const double v = NormalizedMi(xs, ys, {}, mode);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NormalizedMiTest, OrdersRelationsByStrength) {
  std::vector<double> x0, y0, x1, y1;
  GaussianPair(1500, 0.0, 10, &x0, &y0);
  GaussianPair(1500, 0.95, 10, &x1, &y1);
  EXPECT_LT(NormalizedMi(x0, y0), 0.1);
  EXPECT_GT(NormalizedMi(x1, y1), NormalizedMi(x0, y0) + 0.2);
}

TEST(NormalizedMiTest, CorrelationCoefficientMatchesGaussianRho) {
  // sqrt(1 - exp(-2 I)) recovers |rho| exactly for Gaussians.
  std::vector<double> xs, ys;
  GaussianPair(4000, 0.7, 11, &xs, &ys);
  const double r = NormalizedMi(
      xs, ys, {}, MiNormalization::kCorrelationCoefficient,
      /*small_sample_penalty=*/0.0);
  EXPECT_NEAR(r, 0.7, 0.06);
}

TEST(ApplyTieJitterTest, DeterministicAndBounded) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = a;
  internal::ApplyTieJitter(&a, 1e-3, 7);
  internal::ApplyTieJitter(&b, 1e-3, 7);
  EXPECT_EQ(a, b);  // same salt, same jitter
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], static_cast<double>(i + 1), 3e-3 * 1.51);
    EXPECT_NE(a[i], static_cast<double>(i + 1));
  }
}

TEST(ApplyTieJitterTest, ZeroAmplitudeIsNoOp) {
  std::vector<double> a = {1.0, 2.0};
  internal::ApplyTieJitter(&a, 0.0, 1);
  EXPECT_EQ(a, (std::vector<double>{1.0, 2.0}));
}

}  // namespace
}  // namespace tycos
