// The metrics registry's determinism contract: because counters and
// histogram buckets are integer sums of per-climb tallies, an identical
// multi-restart search must leave a bit-identical registry snapshot no
// matter how its climbs were spread across threads. This is what lets the
// always-on metrics layer coexist with the engine's bit-reproducibility
// guarantee (see parallel_determinism_test.cc for the result-set half).

#include <string>

#include <gtest/gtest.h>

#include "datagen/relations.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "search/tycos.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TycosParams BaseParams() {
  TycosParams params;
  params.sigma = 0.4;
  params.s_min = 24;
  params.s_max = 200;
  params.td_max = 8;
  params.num_restarts = 8;
  return params;
}

// Runs the search with `threads` executors against a clean registry and
// returns the canonical JSON rendering of the resulting snapshot (sorted,
// byte-stable), plus the engine's stats for cross-checking.
std::string SnapshotAfterRun(const SyntheticDataset& ds, int threads,
                             TycosStats* stats) {
  obs::Registry::Instance().ResetAllForTest();
  TycosParams params = BaseParams();
  params.num_threads = threads;
  Tycos search(ds.pair, params, TycosVariant::kLMN, /*seed=*/7);
  (void)search.Run();
  *stats = search.stats();
  return obs::ToJson(obs::Snapshot());
}

TEST(ObsDeterminismTest, RegistrySnapshotIdenticalAcrossThreadCounts) {
  const SyntheticDataset ds =
      ComposeDataset({SegmentSpec{RelationType::kLinear, 120, 3},
                      SegmentSpec{RelationType::kSine, 120, 2}},
                     /*gap=*/100, /*seed=*/11);
  TycosStats stats1, stats2, stats8;
  const std::string snap1 = SnapshotAfterRun(ds, 1, &stats1);
  const std::string snap2 = SnapshotAfterRun(ds, 2, &stats2);
  const std::string snap8 = SnapshotAfterRun(ds, 8, &stats8);
  EXPECT_EQ(snap1, snap2);
  EXPECT_EQ(snap1, snap8);
  // The TycosStats view (registry deltas) must agree too.
  EXPECT_EQ(stats1.climbs, stats8.climbs);
  EXPECT_EQ(stats1.accepted_moves, stats8.accepted_moves);
  EXPECT_EQ(stats1.rejected_moves, stats8.rejected_moves);
  EXPECT_EQ(stats1.mi_evaluations, stats8.mi_evaluations);
  EXPECT_EQ(stats1.noise_blocked, stats8.noise_blocked);
  // And the run did real, observed work.
  EXPECT_GT(stats1.climbs, 0);
  EXPECT_GT(stats1.mi_evaluations, 0);
}

TEST(ObsDeterminismTest, StatsMatchRegistryCounters) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 4}}, /*gap=*/150, /*seed=*/3);
  obs::Registry::Instance().ResetAllForTest();
  TycosParams params = BaseParams();
  params.num_threads = 4;
  Tycos search(ds.pair, params, TycosVariant::kLMN, /*seed=*/5);
  (void)search.Run();
  const TycosStats& stats = search.stats();
  const obs::MetricsSnapshot snap = obs::Snapshot();
  // stats() is defined as the registry delta across the run; with a clean
  // registry and a single engine the two views must be equal.
  EXPECT_EQ(stats.climbs, snap.CounterValue("tycos.climbs"));
  EXPECT_EQ(stats.accepted_moves, snap.CounterValue("tycos.accepted_moves"));
  EXPECT_EQ(stats.rejected_moves, snap.CounterValue("tycos.rejected_moves"));
  EXPECT_EQ(stats.noise_blocked, snap.CounterValue("tycos.noise_blocked"));
  EXPECT_EQ(stats.mi_evaluations, snap.CounterValue("mi.evaluations"));
  EXPECT_EQ(stats.cache_hits, snap.CounterValue("mi.cache_hits"));
  EXPECT_EQ(stats.degenerate_windows,
            snap.CounterValue("mi.degenerate_windows"));
  // Per-climb acceptance histogram covers every climb that moved.
  const obs::HistogramSnapshot* ratio =
      snap.FindHistogram("tycos.climb_accept_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_LE(ratio->total(), stats.climbs);
  EXPECT_GT(ratio->total(), 0);
}

}  // namespace
}  // namespace tycos
