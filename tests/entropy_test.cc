#include "mi/entropy.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tycos {
namespace {

TEST(KozachenkoLeonenkoTest, UniformSquareEntropy) {
  // Differential entropy of U([0,a]²) is ln(a²).
  Rng rng(1);
  const double a = 4.0;
  std::vector<double> xs(4000), ys(4000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(0, a);
    ys[i] = rng.Uniform(0, a);
  }
  EXPECT_NEAR(KozachenkoLeonenkoEntropy(xs, ys), std::log(a * a), 0.1);
}

TEST(KozachenkoLeonenkoTest, GaussianEntropy) {
  // H of independent N(0, s²)² is ln(2πe s²).
  Rng rng(2);
  const double s = 2.0;
  std::vector<double> xs(4000), ys(4000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal(0, s);
    ys[i] = rng.Normal(0, s);
  }
  const double expected = std::log(2.0 * M_PI * M_E * s * s);
  EXPECT_NEAR(KozachenkoLeonenkoEntropy(xs, ys), expected, 0.15);
}

TEST(KozachenkoLeonenkoTest, ScalingShiftsEntropyByLogFactor) {
  Rng rng(3);
  std::vector<double> xs(2000), ys(2000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(0, 1);
    ys[i] = rng.Uniform(0, 1);
  }
  std::vector<double> xs2(xs), ys2(ys);
  for (double& v : xs2) v *= 8.0;
  for (double& v : ys2) v *= 8.0;
  const double h1 = KozachenkoLeonenkoEntropy(xs, ys);
  const double h2 = KozachenkoLeonenkoEntropy(xs2, ys2);
  EXPECT_NEAR(h2 - h1, 2.0 * std::log(8.0), 0.05);
}

TEST(KozachenkoLeonenkoTest, DuplicatePointsStayFinite) {
  std::vector<double> xs(100, 1.0), ys(100, 2.0);
  EXPECT_TRUE(std::isfinite(KozachenkoLeonenkoEntropy(xs, ys)));
}

TEST(KozachenkoLeonenkoTest, TinySampleReturnsZero) {
  EXPECT_DOUBLE_EQ(KozachenkoLeonenkoEntropy({1, 2}, {1, 2}), 0.0);
}

TEST(HistogramEntropyTest, UniformBeatsConcentrated) {
  Rng rng(4);
  std::vector<double> uniform(1000), spike(1000);
  for (size_t i = 0; i < uniform.size(); ++i) {
    uniform[i] = rng.Uniform(0, 1);
    spike[i] = (i < 990) ? 0.5 : rng.Uniform(0, 1);
  }
  EXPECT_GT(HistogramEntropy(uniform), HistogramEntropy(spike));
}

TEST(HistogramEntropyTest, ConstantSeriesHasZeroEntropy) {
  EXPECT_DOUBLE_EQ(HistogramEntropy(std::vector<double>(100, 3.0)), 0.0);
}

TEST(HistogramEntropyTest, UniformApproachesLogBins) {
  Rng rng(5);
  std::vector<double> v(10000);
  for (auto& x : v) x = rng.Uniform(0, 1);
  // 100 equal-width bins over uniform data: H ≈ ln(100).
  EXPECT_NEAR(HistogramEntropy(v), std::log(100.0), 0.05);
}

TEST(HistogramJointEntropyTest, NonNegativeAndBounded) {
  Rng rng(6);
  std::vector<double> xs(500), ys(500);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal();
    ys[i] = rng.Normal();
  }
  const double h = HistogramJointEntropy(xs, ys);
  EXPECT_GE(h, 0.0);
  // At most ln(bins²) with bins = ceil(sqrt(500)) = 23.
  EXPECT_LE(h, 2.0 * std::log(23.0) + 1e-9);
}

TEST(HistogramJointEntropyTest, DependentLowerThanIndependent) {
  Rng rng(7);
  std::vector<double> xs(2000), y_dep(2000), y_ind(2000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(0, 1);
    y_dep[i] = xs[i];
    y_ind[i] = rng.Uniform(0, 1);
  }
  EXPECT_LT(HistogramJointEntropy(xs, y_dep),
            HistogramJointEntropy(xs, y_ind));
}

TEST(HistogramJointEntropyTest, TinySampleReturnsZero) {
  EXPECT_DOUBLE_EQ(HistogramJointEntropy({1.0}, {2.0}), 0.0);
}

}  // namespace
}  // namespace tycos
