#include "core/window.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(WindowTest, SizeAndMappedRange) {
  Window w(10, 19, 5);
  EXPECT_EQ(w.size(), 10);
  EXPECT_EQ(w.y_start(), 15);
  EXPECT_EQ(w.y_end(), 24);
}

TEST(WindowTest, NegativeDelayMapsBackwards) {
  Window w(10, 19, -5);
  EXPECT_EQ(w.y_start(), 5);
  EXPECT_EQ(w.y_end(), 14);
}

TEST(WindowTest, SameSpanIgnoresMi) {
  Window a(1, 5, 2, 0.9);
  Window b(1, 5, 2, 0.1);
  EXPECT_TRUE(a.SameSpan(b));
  EXPECT_FALSE(a.SameSpan(Window(1, 5, 3)));
}

TEST(WindowTest, ToStringMentionsFields) {
  const std::string s = Window(3, 9, -2, 0.5).ToString();
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("9"), std::string::npos);
  EXPECT_NE(s.find("-2"), std::string::npos);
}

TEST(IsFeasibleTest, RespectsSizeBounds) {
  // n=100, s_min=5, s_max=20, td_max=10.
  EXPECT_TRUE(IsFeasible(Window(0, 4, 0), 100, 5, 20, 10));
  EXPECT_FALSE(IsFeasible(Window(0, 3, 0), 100, 5, 20, 10));  // too small
  EXPECT_TRUE(IsFeasible(Window(0, 19, 0), 100, 5, 20, 10));
  EXPECT_FALSE(IsFeasible(Window(0, 20, 0), 100, 5, 20, 10));  // too large
}

TEST(IsFeasibleTest, RespectsDelayBound) {
  EXPECT_TRUE(IsFeasible(Window(20, 30, 10), 100, 5, 20, 10));
  EXPECT_TRUE(IsFeasible(Window(20, 30, -10), 100, 5, 20, 10));
  EXPECT_FALSE(IsFeasible(Window(20, 30, 11), 100, 5, 20, 10));
  EXPECT_FALSE(IsFeasible(Window(20, 30, -11), 100, 5, 20, 10));
}

TEST(IsFeasibleTest, RespectsSeriesBoundsOnBothSides) {
  // Y window must stay in range too.
  EXPECT_FALSE(IsFeasible(Window(95, 99, 5), 100, 3, 20, 10));   // y_end 104
  EXPECT_FALSE(IsFeasible(Window(0, 9, -5), 100, 3, 20, 10));    // y_start -5
  EXPECT_TRUE(IsFeasible(Window(90, 94, 5), 100, 3, 20, 10));
  EXPECT_FALSE(IsFeasible(Window(-1, 5, 0), 100, 3, 20, 10));
  EXPECT_FALSE(IsFeasible(Window(96, 100, 0), 100, 3, 20, 10));
}

TEST(IsFeasibleTest, StartAfterEndIsInfeasible) {
  EXPECT_FALSE(IsFeasible(Window(10, 9, 0), 100, 1, 20, 10));
}

TEST(ContainsTest, RequiresSameDelay) {
  EXPECT_TRUE(Contains(Window(0, 10, 2), Window(2, 8, 2)));
  EXPECT_TRUE(Contains(Window(0, 10, 2), Window(0, 10, 2)));  // equal spans
  EXPECT_FALSE(Contains(Window(0, 10, 2), Window(2, 8, 3)));
  EXPECT_FALSE(Contains(Window(2, 8, 2), Window(0, 10, 2)));
}

TEST(OverlapsTest, IntervalIntersection) {
  EXPECT_TRUE(Overlaps(Window(0, 10, 0), Window(10, 20, 5)));
  EXPECT_TRUE(Overlaps(Window(5, 8, 0), Window(0, 20, 0)));
  EXPECT_FALSE(Overlaps(Window(0, 9, 0), Window(10, 20, 0)));
}

TEST(ConsecutiveTest, Definition62) {
  // b starts right after a, same delay.
  EXPECT_TRUE(AreConsecutive(Window(0, 9, 3), Window(10, 19, 3)));
  EXPECT_FALSE(AreConsecutive(Window(0, 9, 3), Window(11, 19, 3)));  // gap
  EXPECT_FALSE(AreConsecutive(Window(0, 9, 3), Window(10, 19, 4)));  // delay
  EXPECT_FALSE(AreConsecutive(Window(10, 19, 3), Window(0, 9, 3)));  // order
}

TEST(ConcatenateTest, JoinsSpans) {
  const Window c = Concatenate(Window(0, 9, 3, 0.8), Window(10, 19, 3, 0.1));
  EXPECT_EQ(c.start, 0);
  EXPECT_EQ(c.end, 19);
  EXPECT_EQ(c.delay, 3);
  EXPECT_DOUBLE_EQ(c.mi, 0.0);  // MI is re-estimated by the caller
}

TEST(ExtractSamplesTest, ZeroDelay) {
  SeriesPair pair(TimeSeries({0, 1, 2, 3, 4, 5}),
                  TimeSeries({10, 11, 12, 13, 14, 15}));
  std::vector<double> xs, ys;
  ExtractSamples(pair, Window(1, 3, 0), &xs, &ys);
  EXPECT_EQ(xs, (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(ys, (std::vector<double>{11, 12, 13}));
}

TEST(ExtractSamplesTest, PositiveDelayShiftsY) {
  SeriesPair pair(TimeSeries({0, 1, 2, 3, 4, 5}),
                  TimeSeries({10, 11, 12, 13, 14, 15}));
  std::vector<double> xs, ys;
  ExtractSamples(pair, Window(0, 2, 2), &xs, &ys);
  EXPECT_EQ(xs, (std::vector<double>{0, 1, 2}));
  EXPECT_EQ(ys, (std::vector<double>{12, 13, 14}));
}

TEST(ExtractSamplesTest, NegativeDelayShiftsYBackwards) {
  SeriesPair pair(TimeSeries({0, 1, 2, 3, 4, 5}),
                  TimeSeries({10, 11, 12, 13, 14, 15}));
  std::vector<double> xs, ys;
  ExtractSamples(pair, Window(3, 5, -3), &xs, &ys);
  EXPECT_EQ(xs, (std::vector<double>{3, 4, 5}));
  EXPECT_EQ(ys, (std::vector<double>{10, 11, 12}));
}

}  // namespace
}  // namespace tycos
