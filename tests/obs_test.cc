#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_context.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tycos {
namespace obs {
namespace {

// The registry is process-wide; each test works on uniquely named metrics
// (and resets up front) so tests stay independent of each other and of any
// searches other test binaries' fixtures may have run.
class ObsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Instance().ResetAllForTest(); }
};

TEST_F(ObsRegistryTest, CounterFindOrCreateReturnsStableHandle) {
  Counter* a = GetCounter("test.stable_handle");
  Counter* b = GetCounter("test.stable_handle");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3);
}

TEST_F(ObsRegistryTest, ShardedCounterAggregatesAcrossThreads) {
  Counter* c = GetCounter("test.sharded_sum");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kAddsPerThread);
}

TEST_F(ObsRegistryTest, GaugeLastWriteWins) {
  Gauge* g = GetGauge("test.gauge");
  EXPECT_EQ(g->Value(), 0);
  g->Set(7);
  g->Set(-2);
  EXPECT_EQ(g->Value(), -2);
}

TEST_F(ObsRegistryTest, HistogramBucketEdges) {
  Histogram* h = GetHistogram("test.buckets", {1.0, 2.0, 4.0});
  h->Observe(0.5);   // below first bound -> bucket 0
  h->Observe(1.0);   // exactly on a bound -> that bucket (v <= bound)
  h->Observe(1.5);   // bucket 1
  h->Observe(4.0);   // last bounded bucket
  h->Observe(4.01);  // above every bound -> overflow
  const HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);  // 0.5 and 1.0
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.total(), 5);
}

TEST_F(ObsRegistryTest, HistogramNanGoesToOverflow) {
  Histogram* h = GetHistogram("test.nan", {1.0, 2.0});
  h->Observe(std::nan(""));
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.counts[0], 0);
  EXPECT_EQ(snap.counts[1], 0);
  EXPECT_EQ(snap.counts[2], 1);
}

TEST_F(ObsRegistryTest, HistogramObserveCountBulk) {
  Histogram* h = GetHistogram("test.bulk", {0.0, 1.0, 2.0});
  h->ObserveCount(0.0, 40);
  h->ObserveCount(2.0, 2);
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.counts[0], 40);
  EXPECT_EQ(snap.counts[2], 2);
  EXPECT_EQ(snap.total(), 42);
}

TEST_F(ObsRegistryTest, HistogramShardedObserveAggregatesAcrossThreads) {
  Histogram* h = GetHistogram("test.sharded_hist", {0.0, 1.0});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < 1000; ++i) h->Observe(i % 2 == 0 ? 0.0 : 1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.counts[0], 8 * 500);
  EXPECT_EQ(snap.counts[1], 8 * 500);
}

TEST_F(ObsRegistryTest, FirstHistogramBoundsWin) {
  Histogram* a = GetHistogram("test.bounds_win", {1.0, 2.0});
  Histogram* b = GetHistogram("test.bounds_win", {9.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->bounds().size(), 2u);
}

TEST_F(ObsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  Counter* c = GetCounter("test.reset");
  Histogram* h = GetHistogram("test.reset_hist", {1.0});
  c->Add(5);
  h->Observe(0.5);
  Registry::Instance().ResetAllForTest();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->Snapshot().total(), 0);
  c->Add(2);  // handle still live
  EXPECT_EQ(c->Value(), 2);
}

TEST_F(ObsRegistryTest, SnapshotIsSortedByName) {
  GetCounter("test.zebra")->Add(1);
  GetCounter("test.alpha")->Add(1);
  const MetricsSnapshot snap = Snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_EQ(snap.CounterValue("test.alpha"), 1);
  EXPECT_EQ(snap.CounterValue("test.never_registered"), 0);
}

TEST_F(ObsRegistryTest, JsonIsDeterministicAndWellFormed) {
  GetCounter("test.json_counter")->Add(3);
  GetGauge("test.json_gauge")->Set(-1);
  GetHistogram("test.json_hist", {0.5, 1.5})->Observe(1.0);
  const std::string a = ToJson(Snapshot());
  const std::string b = ToJson(Snapshot());
  EXPECT_EQ(a, b);  // equal state -> byte-identical rendering
  EXPECT_NE(a.find("\"test.json_counter\": 3"), std::string::npos) << a;
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
  EXPECT_NE(a.find("\"bounds\""), std::string::npos);
}

TEST_F(ObsRegistryTest, WriteJsonWritesFile) {
  GetCounter("test.json_file")->Add(1);
  const std::string path = ::testing::TempDir() + "/tycos_metrics.json";
  ASSERT_TRUE(WriteJson(path, Snapshot()).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("test.json_file"), std::string::npos);
  std::remove(path.c_str());
}

// --- Trace spans. ScopedSpan/Tracer are always compiled (only the
// TYCOS_SPAN macro is gated), so the tree mechanics are testable in every
// configuration.

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::ThisThread().Reset(); }
};

TEST_F(ObsTraceTest, SpansNestIntoTree) {
  {
    ScopedSpan run("run");
    {
      ScopedSpan climb("climb");
      { ScopedSpan noise("noise"); }
      { ScopedSpan noise("noise"); }  // same-name sibling merges
    }
    { ScopedSpan extract("extract"); }
  }
  const Tracer& tracer = Tracer::ThisThread();
  EXPECT_EQ(tracer.depth(), 0u);
  ASSERT_EQ(tracer.root().children.size(), 1u);
  const TraceNode& run = *tracer.root().children[0];
  EXPECT_EQ(run.name, "run");
  EXPECT_EQ(run.calls, 1);
  ASSERT_EQ(run.children.size(), 2u);
  EXPECT_EQ(run.children[0]->name, "climb");
  ASSERT_EQ(run.children[0]->children.size(), 1u);
  EXPECT_EQ(run.children[0]->children[0]->calls, 2);  // merged siblings
  EXPECT_EQ(run.children[1]->name, "extract");
}

TEST_F(ObsTraceTest, EarlyReturnUnwindsTheStack) {
  const auto early_return = [](bool bail) {
    ScopedSpan outer("outer");
    if (bail) return 1;  // RAII must pop on this path too
    ScopedSpan inner("inner");
    return 2;
  };
  EXPECT_EQ(early_return(true), 1);
  EXPECT_EQ(Tracer::ThisThread().depth(), 0u);
  EXPECT_EQ(early_return(false), 2);
  EXPECT_EQ(Tracer::ThisThread().depth(), 0u);
  const TraceNode& outer = *Tracer::ThisThread().root().children[0];
  EXPECT_EQ(outer.calls, 2);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0]->calls, 1);  // inner only ran once
}

TEST_F(ObsTraceTest, CancellationStyleUnwindRestoresDepth) {
  // The shape every search phase has: spans open, a RunContext fires, the
  // function returns early through several RAII frames.
  RunContext ctx;
  const auto climb = [&ctx]() -> int {
    ScopedSpan run("cancel_run");
    for (int i = 0; i < 10; ++i) {
      ScopedSpan step("cancel_step");
      if (i == 2) ctx.RequestCancel();
      if (ctx.ShouldStop()) return i;
    }
    return -1;
  };
  EXPECT_EQ(climb(), 2);
  EXPECT_EQ(Tracer::ThisThread().depth(), 0u);
  const TraceNode& run = *Tracer::ThisThread().root().children[0];
  ASSERT_EQ(run.children.size(), 1u);
  EXPECT_EQ(run.children[0]->calls, 3);  // i = 0, 1, 2
}

TEST_F(ObsTraceTest, UnmatchedPopIsIgnored) {
  Tracer& tracer = Tracer::ThisThread();
  tracer.Pop(1.0);  // nothing open: must not underflow past the root
  EXPECT_EQ(tracer.depth(), 0u);
  tracer.Push("solo");
  tracer.Pop(0.25);
  tracer.Pop(1.0);  // extra pop after the stack emptied
  EXPECT_EQ(tracer.depth(), 0u);
  ASSERT_EQ(tracer.root().children.size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.root().children[0]->total_seconds, 0.25);
}

TEST_F(ObsTraceTest, RenderListsSpans) {
  {
    ScopedSpan outer("render_outer");
    ScopedSpan inner("render_inner");
  }
  const std::string out = Tracer::ThisThread().Render();
  EXPECT_NE(out.find("render_outer"), std::string::npos) << out;
  EXPECT_NE(out.find("render_inner"), std::string::npos) << out;
}

TEST_F(ObsTraceTest, MacroCompilesInBothModes) {
  // In default builds TYCOS_SPAN is ((void)0); under TYCOS_OBS=ON it opens
  // a real span. Either way this must compile and leave the stack balanced.
  {
    TYCOS_SPAN("macro_span");
    TYCOS_SPAN("macro_span_sibling");  // unique variable names per line
  }
  EXPECT_EQ(Tracer::ThisThread().depth(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace tycos
