#include "common/strings.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(SplitTest, Basics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a", ','), (std::vector<std::string>{"a"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitTest, OtherSeparators) {
  EXPECT_EQ(Split("1;2;3", ';'), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(Split("a b", ' '), (std::vector<std::string>{"a", "b"}));
}

TEST(StripWhitespaceTest, Basics) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("\t x\ny \r"), "x\ny");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ParseDoubleTest, Valid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.14", &v));
  EXPECT_DOUBLE_EQ(v, 3.14);
  EXPECT_TRUE(ParseDouble("  -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, Invalid) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("--3", &v));
}

TEST(ParseInt64Test, Valid) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64Test, Invalid) {
  long long v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("x", &v));
}

}  // namespace
}  // namespace tycos
