// Determinism-under-parallelism suite: the parallel pairwise fan-out and the
// multi-restart Tycos engine must produce bit-identical results to the
// sequential (num_threads = 1) path at every thread count — including under
// a per-unit evaluation budget — and a mid-run deadline must yield valid,
// never-torn partial results.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/run_context.h"
#include "core/window.h"
#include "datagen/relations.h"
#include "search/pairwise.h"
#include "search/tycos.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;

// Four channels: (0, 1) carry planted sine + linear relations, 2 and 3 are
// independent noise — six unordered pairs with very uneven search cost.
std::vector<TimeSeries> MakeChannels(uint64_t seed) {
  const auto ds = ComposeDataset({SegmentSpec{RelationType::kSine, 200, 8},
                                  SegmentSpec{RelationType::kLinear, 150, 4}},
                                 /*gap=*/150, seed);
  std::vector<TimeSeries> channels = {ds.pair.x(), ds.pair.y()};
  Rng rng(seed + 99);
  for (int c = 0; c < 2; ++c) {
    std::vector<double> v(static_cast<size_t>(ds.pair.size()));
    for (double& x : v) x = rng.Normal();
    channels.emplace_back(std::move(v), c == 0 ? "N1" : "N2");
  }
  return channels;
}

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 300;
  p.td_max = 16;
  return p;
}

void ExpectSameWindows(const WindowSet& a, const WindowSet& b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const Window& x = a.windows()[i];
    const Window& y = b.windows()[i];
    EXPECT_EQ(x.start, y.start) << what << " window " << i;
    EXPECT_EQ(x.end, y.end) << what << " window " << i;
    EXPECT_EQ(x.delay, y.delay) << what << " window " << i;
    EXPECT_EQ(x.mi, y.mi) << what << " window " << i;  // bit-identical
  }
}

void ExpectSameResult(const PairwiseResult& a, const PairwiseResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.entries.size(), b.entries.size()) << what;
  EXPECT_EQ(a.pairs_searched, b.pairs_searched) << what;
  EXPECT_EQ(a.pairs_skipped, b.pairs_skipped) << what;
  EXPECT_EQ(a.partial, b.partial) << what;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const PairwiseEntry& x = a.entries[i];
    const PairwiseEntry& y = b.entries[i];
    EXPECT_EQ(x.a, y.a) << what << " entry " << i;
    EXPECT_EQ(x.b, y.b) << what << " entry " << i;
    EXPECT_EQ(x.best_score, y.best_score) << what << " entry " << i;
    EXPECT_EQ(x.partial, y.partial) << what << " entry " << i;
    ExpectSameWindows(x.windows, y.windows,
                      what + " entry " + std::to_string(i));
  }
}

void ExpectValidWindowSet(const WindowSet& set, int64_t n,
                          const TycosParams& p) {
  const auto& ws = set.windows();
  for (size_t i = 0; i < ws.size(); ++i) {
    EXPECT_TRUE(IsFeasible(ws[i], n, p.s_min, p.s_max, p.td_max))
        << ws[i].ToString();
    EXPECT_TRUE(std::isfinite(ws[i].mi));
    EXPECT_GE(ws[i].mi, p.sigma);
    for (size_t j = i + 1; j < ws.size(); ++j) {
      EXPECT_FALSE(Contains(ws[i], ws[j])) << "nested pair in result set";
      EXPECT_FALSE(Contains(ws[j], ws[i])) << "nested pair in result set";
    }
  }
}

TEST(ParallelPairwiseTest, BitIdenticalAcrossThreadCounts) {
  const auto channels = MakeChannels(11);
  TycosParams p = Params();
  p.num_threads = 1;
  const PairwiseResult reference =
      PairwiseSearch(channels, p, TycosVariant::kLMN, 7);
  EXPECT_FALSE(reference.partial);
  EXPECT_EQ(reference.pairs_searched, 6);
  for (int threads : {2, 4, 8}) {
    p.num_threads = threads;
    const PairwiseResult got =
        PairwiseSearch(channels, p, TycosVariant::kLMN, 7);
    ExpectSameResult(reference, got,
                     "threads=" + std::to_string(threads));
  }
}

TEST(ParallelPairwiseTest, BitIdenticalUnderPerPairBudget) {
  // The evaluation budget applies per pair and is polled against each
  // search's own deterministic counter, so even cut-short results must be
  // bit-identical at every thread count.
  const auto channels = MakeChannels(12);
  TycosParams p = Params();
  PairwiseResult reference;
  for (int threads : {1, 2, 4, 8}) {
    p.num_threads = threads;
    const RunContext ctx = RunContext::WithEvaluationBudget(60);
    Result<PairwiseResult> got =
        PairwiseSearch(channels, p, TycosVariant::kLMN, 7, ctx);
    ASSERT_TRUE(got.ok());
    // Budget exhaustion is local to a pair: the sweep itself still covers
    // every pair.
    EXPECT_EQ(got.value().pairs_searched, 6);
    EXPECT_EQ(got.value().pairs_skipped, 0);
    if (threads == 1) {
      reference = std::move(got.value());
    } else {
      ExpectSameResult(reference, got.value(),
                       "budget threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelPairwiseTest, DeadlinePartialResultsAreValidNeverTorn) {
  const auto channels = MakeChannels(13);
  const int64_t n = channels[0].size();
  TycosParams p = Params();
  for (int threads : {1, 2, 4, 8}) {
    p.num_threads = threads;
    RunContext ctx;
    ctx.SetDeadlineAfter(0.05);
    Result<PairwiseResult> got =
        PairwiseSearch(channels, p, TycosVariant::kLMN, 7, ctx);
    ASSERT_TRUE(got.ok());
    const PairwiseResult& r = got.value();
    // Accounting is exact whatever the deadline interrupted.
    EXPECT_EQ(r.pairs_searched, static_cast<int64_t>(r.entries.size()));
    EXPECT_EQ(r.pairs_searched + r.pairs_skipped, 6);
    if (r.pairs_skipped > 0) {
      EXPECT_TRUE(r.partial);
      EXPECT_EQ(r.stop_reason, StopReason::kDeadlineExceeded);
    }
    // Every listed entry is fully formed: valid windows, exact scores.
    for (const PairwiseEntry& e : r.entries) {
      EXPECT_LT(e.a, e.b);
      ExpectValidWindowSet(e.windows, n, p);
      double best = 0.0;
      for (const Window& w : e.windows.windows()) {
        best = std::max(best, w.mi);
      }
      EXPECT_EQ(e.best_score, best);
    }
    // Entries respect the documented ordering.
    for (size_t i = 1; i < r.entries.size(); ++i) {
      EXPECT_GE(r.entries[i - 1].best_score, r.entries[i].best_score);
    }
  }
}

TEST(ParallelPairwiseTest, ImmediateDeadlineSearchesNothing) {
  const auto channels = MakeChannels(14);
  TycosParams p = Params();
  p.num_threads = 4;
  RunContext ctx;
  ctx.SetDeadlineAfter(0.0);
  Result<PairwiseResult> got =
      PairwiseSearch(channels, p, TycosVariant::kLMN, 7, ctx);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().pairs_searched, 0);
  EXPECT_EQ(got.value().pairs_skipped, 6);
  EXPECT_TRUE(got.value().partial);
  EXPECT_EQ(got.value().stop_reason, StopReason::kDeadlineExceeded);
}

class MultiRestartTest : public ::testing::TestWithParam<TycosVariant> {};

TEST_P(MultiRestartTest, BitIdenticalAcrossThreadCounts) {
  const auto ds = ComposeDataset({SegmentSpec{RelationType::kSine, 200, 8},
                                  SegmentSpec{RelationType::kLinear, 150, 4}},
                                 /*gap=*/150, 21);
  TycosParams p = Params();
  p.num_restarts = 6;

  WindowSet reference;
  TycosStats reference_stats;
  for (int threads : {1, 2, 4, 8}) {
    p.num_threads = threads;
    Tycos search(ds.pair, p, GetParam(), /*seed=*/5);
    Result<SearchOutcome> outcome = search.Run(RunContext::None());
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome.value().partial);
    if (threads == 1) {
      reference = std::move(outcome.value().windows);
      reference_stats = search.stats();
      EXPECT_EQ(reference_stats.stop_reason, StopReason::kCompleted);
    } else {
      const std::string what = "threads=" + std::to_string(threads);
      ExpectSameWindows(reference, outcome.value().windows, what);
      // Per-climb counters are climb-deterministic, so their index-order
      // sums are thread-count invariant too.
      const TycosStats& s = search.stats();
      EXPECT_EQ(s.climbs, reference_stats.climbs) << what;
      EXPECT_EQ(s.accepted_moves, reference_stats.accepted_moves) << what;
      EXPECT_EQ(s.rejected_moves, reference_stats.rejected_moves) << what;
      EXPECT_EQ(s.noise_blocked, reference_stats.noise_blocked) << what;
      EXPECT_EQ(s.mi_evaluations, reference_stats.mi_evaluations) << what;
      EXPECT_EQ(s.cache_hits, reference_stats.cache_hits) << what;
      EXPECT_EQ(s.windows_found, reference_stats.windows_found) << what;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, MultiRestartTest,
                         ::testing::Values(TycosVariant::kL, TycosVariant::kLM,
                                           TycosVariant::kLMN),
                         [](const auto& info) {
                           return TycosVariantName(info.param);
                         });

TEST(MultiRestartDeterminismTest, BitIdenticalUnderPerClimbBudget) {
  const auto ds = ComposeDataset({SegmentSpec{RelationType::kSine, 200, 8}},
                                 /*gap=*/150, 22);
  TycosParams p = Params();
  p.num_restarts = 5;

  WindowSet reference;
  for (int threads : {1, 2, 4, 8}) {
    p.num_threads = threads;
    Tycos search(ds.pair, p, TycosVariant::kLMN, /*seed=*/5);
    const RunContext ctx = RunContext::WithEvaluationBudget(40);
    Result<SearchOutcome> outcome = search.Run(ctx);
    ASSERT_TRUE(outcome.ok());
    if (threads == 1) {
      reference = std::move(outcome.value().windows);
    } else {
      ExpectSameWindows(reference, outcome.value().windows,
                        "budget threads=" + std::to_string(threads));
    }
  }
}

TEST(MultiRestartDeterminismTest, DeadlinePartialResultsAreValid) {
  const auto ds = ComposeDataset({SegmentSpec{RelationType::kSine, 300, 8},
                                  SegmentSpec{RelationType::kLinear, 300, 4}},
                                 /*gap=*/200, 23);
  TycosParams p = Params();
  p.s_max = 400;
  p.num_restarts = 16;
  for (int threads : {1, 4}) {
    p.num_threads = threads;
    Tycos search(ds.pair, p, TycosVariant::kLMN, /*seed=*/5);
    RunContext ctx;
    ctx.SetDeadlineAfter(0.02);
    Result<SearchOutcome> outcome = search.Run(ctx);
    ASSERT_TRUE(outcome.ok());
    // Whatever the deadline cut off, the set keeps every invariant of a
    // completed run.
    ExpectValidWindowSet(outcome.value().windows, ds.pair.size(), p);
    if (outcome.value().partial) {
      EXPECT_NE(outcome.value().stop_reason, StopReason::kCompleted);
      EXPECT_EQ(search.stats().stop_reason, outcome.value().stop_reason);
    }
  }
}

TEST(MultiRestartDeterminismTest, FindsThePlantedRelation) {
  // Sanity beyond determinism: the restart grid actually discovers the
  // planted windows, like the sequential scan does.
  const auto ds = ComposeDataset({SegmentSpec{RelationType::kSine, 200, 8}},
                                 /*gap=*/150, 24);
  TycosParams p = Params();
  p.num_restarts = 8;
  p.num_threads = 4;
  Tycos search(ds.pair, p, TycosVariant::kLMN, /*seed=*/5);
  Result<SearchOutcome> outcome = search.Run(RunContext::None());
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome.value().windows.empty());
  bool hits_planted = false;
  const Window truth = ds.planted[0].AsWindow();
  for (const Window& w : outcome.value().windows.windows()) {
    if (Overlaps(w, truth)) hits_planted = true;
  }
  EXPECT_TRUE(hits_planted);
}

}  // namespace
}  // namespace tycos
