#include "search/lahc.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(LahcHistoryTest, InitializesAllSlots) {
  LahcHistory h(5, 0.3);
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(h.ValueAt(i), 0.3);
  EXPECT_EQ(h.length(), 5);
}

TEST(LahcHistoryTest, UpdateChangesOnlyThatSlot) {
  LahcHistory h(4, 0.1);
  h.Update(2, 0.9);
  EXPECT_DOUBLE_EQ(h.ValueAt(2), 0.9);
  EXPECT_DOUBLE_EQ(h.ValueAt(0), 0.1);
  EXPECT_DOUBLE_EQ(h.ValueAt(1), 0.1);
  EXPECT_DOUBLE_EQ(h.ValueAt(3), 0.1);
}

TEST(LahcHistoryTest, ResetOverwritesEverything) {
  LahcHistory h(3, 0.1);
  h.Update(0, 0.5);
  h.Reset(0.7);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(h.ValueAt(i), 0.7);
}

TEST(LahcHistoryTest, SampleSlotIsInRange) {
  LahcHistory h(7, 0.0);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(h.SampleSlot(rng), 7u);
  }
}

TEST(LahcHistoryTest, SampleSlotCoversAllSlots) {
  LahcHistory h(4, 0.0);
  Rng rng(2);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 400; ++i) seen[h.SampleSlot(rng)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(LahcHistoryTest, SingleSlotHistory) {
  LahcHistory h(1, 0.42);
  Rng rng(3);
  EXPECT_EQ(h.SampleSlot(rng), 0u);
  h.Update(0, 1.0);
  EXPECT_DOUBLE_EQ(h.ValueAt(0), 1.0);
}

}  // namespace
}  // namespace tycos
