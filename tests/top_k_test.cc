#include "search/top_k.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(TopKFilterTest, SigmaIsZeroUntilFull) {
  TopKFilter f(3);
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.0);
  f.Offer(Window(0, 10, 0, 0.5));
  f.Offer(Window(20, 30, 0, 0.4));
  EXPECT_FALSE(f.full());
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.0);
  f.Offer(Window(40, 50, 0, 0.3));
  EXPECT_TRUE(f.full());
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.3);
}

TEST(TopKFilterTest, WeakerOfferRejectedWhenFull) {
  TopKFilter f(2);
  f.Offer(Window(0, 10, 0, 0.5));
  f.Offer(Window(20, 30, 0, 0.4));
  EXPECT_FALSE(f.Offer(Window(40, 50, 0, 0.2)));
  EXPECT_EQ(f.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.4);
}

TEST(TopKFilterTest, StrongerOfferEvictsWeakest) {
  TopKFilter f(2);
  f.Offer(Window(0, 10, 0, 0.5));
  f.Offer(Window(20, 30, 0, 0.4));
  EXPECT_TRUE(f.Offer(Window(40, 50, 0, 0.9)));
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.5);  // 0.4 evicted
  EXPECT_EQ(f.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(f.windows()[0].mi, 0.9);  // sorted descending
}

TEST(TopKFilterTest, NestedWindowReplacesOnlyOnHigherScore) {
  TopKFilter f(5);
  f.Offer(Window(0, 20, 0, 0.6));
  EXPECT_FALSE(f.Offer(Window(5, 15, 0, 0.5)));  // nested, weaker
  EXPECT_EQ(f.windows().size(), 1u);
  EXPECT_TRUE(f.Offer(Window(5, 15, 0, 0.8)));  // nested, stronger
  ASSERT_EQ(f.windows().size(), 1u);
  EXPECT_EQ(f.windows()[0].start, 5);
}

TEST(TopKFilterTest, SigmaRisesMonotonically) {
  TopKFilter f(3);
  double prev = f.CurrentSigma();
  Window offers[] = {Window(0, 10, 0, 0.2), Window(20, 30, 0, 0.3),
                     Window(40, 50, 0, 0.25), Window(60, 70, 0, 0.5),
                     Window(80, 90, 0, 0.6), Window(100, 110, 0, 0.1)};
  for (const Window& w : offers) {
    f.Offer(w);
    EXPECT_GE(f.CurrentSigma(), prev);
    prev = f.CurrentSigma();
  }
}

}  // namespace
}  // namespace tycos
