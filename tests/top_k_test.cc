#include "search/top_k.h"

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tycos {
namespace {

using WindowKey = std::tuple<int64_t, int64_t, int64_t>;

WindowKey KeyOf(const Window& w) { return {w.start, w.end, w.delay}; }

std::set<WindowKey> Membership(const TopKFilter& f) {
  std::set<WindowKey> keys;
  for (const Window& w : f.windows()) keys.insert(KeyOf(w));
  return keys;
}

bool NonNesting(const std::vector<Window>& ws) {
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = i + 1; j < ws.size(); ++j) {
      if (Contains(ws[i], ws[j]) || Contains(ws[j], ws[i])) return false;
    }
  }
  return true;
}

TEST(TopKFilterTest, SigmaIsZeroUntilFull) {
  TopKFilter f(3);
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.0);
  f.Offer(Window(0, 10, 0, 0.5));
  f.Offer(Window(20, 30, 0, 0.4));
  EXPECT_FALSE(f.full());
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.0);
  f.Offer(Window(40, 50, 0, 0.3));
  EXPECT_TRUE(f.full());
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.3);
}

TEST(TopKFilterTest, WeakerOfferRejectedWhenFull) {
  TopKFilter f(2);
  f.Offer(Window(0, 10, 0, 0.5));
  f.Offer(Window(20, 30, 0, 0.4));
  EXPECT_FALSE(f.Offer(Window(40, 50, 0, 0.2)));
  EXPECT_EQ(f.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.4);
}

TEST(TopKFilterTest, StrongerOfferEvictsWeakest) {
  TopKFilter f(2);
  f.Offer(Window(0, 10, 0, 0.5));
  f.Offer(Window(20, 30, 0, 0.4));
  EXPECT_TRUE(f.Offer(Window(40, 50, 0, 0.9)));
  EXPECT_DOUBLE_EQ(f.CurrentSigma(), 0.5);  // 0.4 evicted
  EXPECT_EQ(f.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(f.windows()[0].mi, 0.9);  // sorted descending
}

TEST(TopKFilterTest, NestedWindowReplacesOnlyOnHigherScore) {
  TopKFilter f(5);
  f.Offer(Window(0, 20, 0, 0.6));
  EXPECT_FALSE(f.Offer(Window(5, 15, 0, 0.5)));  // nested, weaker
  EXPECT_EQ(f.windows().size(), 1u);
  EXPECT_TRUE(f.Offer(Window(5, 15, 0, 0.8)));  // nested, stronger
  ASSERT_EQ(f.windows().size(), 1u);
  EXPECT_EQ(f.windows()[0].start, 5);
}

// Regression: the pre-fix Offer() evicted only the *first* nested incumbent
// it found and broke out of the scan, so a big window offered over two
// disjoint retained ones left itself nested with the second — the retained
// set violated the non-nesting invariant.
TEST(TopKFilterTest, BigWindowOverTwoDisjointIncumbentsStaysNonNesting) {
  TopKFilter f(3);
  f.Offer(Window(0, 10, 0, 0.6));   // B
  f.Offer(Window(20, 30, 0, 0.4));  // C, disjoint from B
  f.Offer(Window(0, 30, 0, 0.5));   // A contains both
  EXPECT_TRUE(NonNesting(f.windows()));
  // Greedy by score: B (0.6) wins first, A (0.5) nests with B and is
  // dropped, C (0.4) survives.
  EXPECT_EQ(Membership(f),
            (std::set<WindowKey>{{0, 10, 0}, {20, 30, 0}}));
}

// Regression: membership must be a function of the offer *set*. The pre-fix
// filter kept {A} when A arrived before B and C, but {B, C} when A arrived
// between them.
TEST(TopKFilterTest, MembershipIsOfferOrderIndependent) {
  const std::vector<Window> offers = {
      Window(0, 30, 0, 0.5),   // A contains B and C
      Window(0, 10, 0, 0.6),   // B
      Window(20, 30, 0, 0.4),  // C
  };
  std::vector<size_t> order = {0, 1, 2};
  std::optional<std::set<WindowKey>> expected;
  do {
    TopKFilter f(2);
    for (size_t i : order) f.Offer(offers[i]);
    EXPECT_TRUE(NonNesting(f.windows()));
    if (!expected.has_value()) {
      expected = Membership(f);
    } else {
      EXPECT_EQ(Membership(f), *expected)
          << "membership depends on offer order " << order[0] << order[1]
          << order[2];
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

// Property sweep: random nested/overlapping offer pools, every permutation
// of each pool. The retained set must always be non-nesting, never exceed
// K, and have permutation-invariant membership.
TEST(TopKFilterTest, PropertyNonNestingAndOrderIndependentMembership) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Window> pool;
    const int pool_size = static_cast<int>(rng.UniformInt(2, 6));
    for (int i = 0; i < pool_size; ++i) {
      const int64_t start = rng.UniformInt(0, 5) * 5;
      const int64_t len = 5 + rng.UniformInt(0, 3) * 10;
      const int64_t delay = rng.UniformInt(0, 1);
      // Quantized scores make ties common, exercising the tie-break.
      const double mi = static_cast<double>(rng.UniformInt(1, 8)) / 10.0;
      pool.push_back(Window(start, start + len, delay, mi));
    }
    std::vector<size_t> order(pool.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::optional<std::set<WindowKey>> expected;
    do {
      TopKFilter f(3);
      for (size_t i : order) f.Offer(pool[i]);
      ASSERT_LE(f.windows().size(), 3u);
      ASSERT_TRUE(NonNesting(f.windows())) << "trial " << trial;
      if (!expected.has_value()) {
        expected = Membership(f);
      } else {
        ASSERT_EQ(Membership(f), *expected) << "trial " << trial;
      }
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

// Re-offering the same window must keep its best score and stay idempotent.
TEST(TopKFilterTest, ReOfferKeepsBestScore) {
  TopKFilter f(2);
  EXPECT_TRUE(f.Offer(Window(0, 10, 0, 0.5)));
  EXPECT_TRUE(f.Offer(Window(0, 10, 0, 0.3)));  // still retained
  ASSERT_EQ(f.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(f.windows()[0].mi, 0.5);  // best score kept
  EXPECT_TRUE(f.Offer(Window(0, 10, 0, 0.7)));
  ASSERT_EQ(f.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(f.windows()[0].mi, 0.7);
}

TEST(TopKFilterTest, SigmaRisesMonotonically) {
  TopKFilter f(3);
  double prev = f.CurrentSigma();
  Window offers[] = {Window(0, 10, 0, 0.2), Window(20, 30, 0, 0.3),
                     Window(40, 50, 0, 0.25), Window(60, 70, 0, 0.5),
                     Window(80, 90, 0, 0.6), Window(100, 110, 0, 0.1)};
  for (const Window& w : offers) {
    f.Offer(w);
    EXPECT_GE(f.CurrentSigma(), prev);
    prev = f.CurrentSigma();
  }
}

}  // namespace
}  // namespace tycos
