#include "common/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(DigammaTest, KnownValueAtOne) {
  // ψ(1) = -γ.
  EXPECT_NEAR(Digamma(1.0), -kEulerGamma, 1e-12);
}

TEST(DigammaTest, KnownValueAtTwo) {
  // ψ(2) = 1 - γ.
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerGamma, 1e-12);
}

TEST(DigammaTest, KnownValueAtHalf) {
  // ψ(1/2) = -γ - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-11);
}

TEST(DigammaTest, KnownValueAtTen) {
  // ψ(10) = H_9 - γ.
  double h9 = 0.0;
  for (int i = 1; i <= 9; ++i) h9 += 1.0 / i;
  EXPECT_NEAR(Digamma(10.0), h9 - kEulerGamma, 1e-12);
}

TEST(DigammaTest, MonotonicallyIncreasing) {
  double prev = Digamma(0.25);
  for (double x = 0.5; x < 50.0; x += 0.25) {
    const double cur = Digamma(x);
    EXPECT_GT(cur, prev) << "at x=" << x;
    prev = cur;
  }
}

TEST(DigammaTest, ApproachesLogForLargeArguments) {
  // ψ(x) ~ ln x - 1/(2x); at x = 1e6 they agree to ~1e-7.
  EXPECT_NEAR(Digamma(1e6), std::log(1e6) - 0.5e-6, 1e-10);
}

class DigammaRecurrenceTest : public ::testing::TestWithParam<double> {};

TEST_P(DigammaRecurrenceTest, SatisfiesRecurrence) {
  // ψ(x+1) = ψ(x) + 1/x.
  const double x = GetParam();
  EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DigammaRecurrenceTest,
                         ::testing::Values(0.1, 0.5, 1.0, 1.7, 2.0, 3.14, 5.0,
                                           9.9, 25.0, 100.0, 1234.5));

TEST(DigammaTableTest, MatchesDirectEvaluation) {
  DigammaTable table;
  for (size_t n = 1; n <= 2000; ++n) {
    ASSERT_NEAR(table(n), Digamma(static_cast<double>(n)), 1e-9)
        << "at n=" << n;
  }
}

TEST(DigammaTableTest, RandomAccessAfterGrowth) {
  DigammaTable table(4);
  EXPECT_NEAR(table(1000), Digamma(1000.0), 1e-9);
  EXPECT_NEAR(table(1), -kEulerGamma, 1e-12);
  EXPECT_NEAR(table(500), Digamma(500.0), 1e-9);
}

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-8);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}), 0.0);
}

TEST(MeanTest, KahanStability) {
  // 1e8 copies of 0.1 would drift with naive summation; sample a smaller
  // but still adversarial mix of magnitudes.
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(1e8);
    v.push_back(0.1);
    v.push_back(-1e8);
  }
  // Kahan keeps the error within ~2ε·Σ|x| of the exact sum; for these
  // magnitudes that is ~1e-8 on the mean (naive summation loses ~1e-5).
  EXPECT_NEAR(Mean(v), 0.1 / 3.0, 1e-7);
}

TEST(VarianceTest, Basics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 1.0, 1.0}), 0.0);
  // Population variance of {1,2,3,4} is 1.25.
  EXPECT_DOUBLE_EQ(Variance({1.0, 2.0, 3.0, 4.0}), 1.25);
}

TEST(NearlyEqualTest, Behaviour) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0));
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 5e-10));
  EXPECT_FALSE(NearlyEqual(1.0, 1.001));
  EXPECT_TRUE(NearlyEqual(1.0, 1.5, 0.5));
}

}  // namespace
}  // namespace tycos
