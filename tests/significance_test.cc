#include "search/significance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TEST(WindowPValueTest, RealRelationIsHighlySignificant) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 10}}, /*gap=*/150, /*seed=*/1);
  const Window w = ds.planted[0].AsWindow();
  const double p = WindowPValue(ds.pair, w);
  // 99 surrogates: the smallest achievable p is 0.01, and a genuine
  // relation must reach it.
  EXPECT_DOUBLE_EQ(p, 0.01);
}

TEST(WindowPValueTest, NoiseWindowIsNotSignificant) {
  Rng rng(2);
  std::vector<double> x(600), y(600);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const SeriesPair pair{TimeSeries(std::move(x)), TimeSeries(std::move(y))};
  const double p = WindowPValue(pair, Window(100, 300, 0));
  EXPECT_GT(p, 0.05);
}

TEST(WindowPValueTest, NoisePValuesAreRoughlyUniform) {
  // Under the null, p-values must not cluster near 0: across windows of
  // independent noise the median should sit mid-range.
  Rng rng(3);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const SeriesPair pair{TimeSeries(std::move(x)), TimeSeries(std::move(y))};
  SignificanceOptions opt;
  opt.permutations = 39;  // cheaper per-window, 10 windows
  std::vector<double> ps;
  for (int64_t s = 0; s < 1500; s += 150) {
    ps.push_back(WindowPValue(pair, Window(s, s + 120, 0), opt));
  }
  std::sort(ps.begin(), ps.end());
  EXPECT_GT(ps[ps.size() / 2], 0.15);  // median well away from 0
  int tiny = 0;
  for (double p : ps) tiny += p <= 0.05 ? 1 : 0;
  EXPECT_LE(tiny, 2);  // at most ~alpha of them look significant
}

TEST(WindowPValueTest, TooSmallWindowReturnsOne) {
  Rng rng(4);
  std::vector<double> x(50), y(50);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const SeriesPair pair{TimeSeries(std::move(x)), TimeSeries(std::move(y))};
  EXPECT_DOUBLE_EQ(WindowPValue(pair, Window(0, 3, 0)), 1.0);
}

TEST(FilterSignificantTest, KeepsRealDropsBorderline) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 200, 4}}, /*gap=*/300, /*seed=*/5);
  WindowSet mixed;
  Window real = ds.planted[0].AsWindow();
  real.mi = 0.9;
  mixed.Insert(real);
  // A window over pure noise, pretending it cleared sigma.
  Window fake(0, 150, 0, 0.6);
  mixed.Insert(fake);

  const WindowSet kept = FilterSignificant(ds.pair, mixed, /*alpha=*/0.02);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept.windows()[0].SameSpan(real));
}

TEST(FilterSignificantTest, EmptyInEmptyOut) {
  Rng rng(6);
  std::vector<double> x(100), y(100);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const SeriesPair pair{TimeSeries(std::move(x)), TimeSeries(std::move(y))};
  EXPECT_TRUE(FilterSignificant(pair, WindowSet(), 0.05).empty());
}

TEST(WindowPValueTest, DeterministicForFixedSeed) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kQuadratic, 150, 0}}, /*gap=*/150,
      /*seed=*/7);
  const Window w(100, 260, 0);
  EXPECT_DOUBLE_EQ(WindowPValue(ds.pair, w), WindowPValue(ds.pair, w));
}

}  // namespace
}  // namespace tycos
