#include "baselines/amic.h"

#include <gtest/gtest.h>

#include "core/window_similarity.h"
#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

AmicOptions SmallOptions() {
  AmicOptions o;
  o.sigma = 0.5;
  o.s_min = 24;
  return o;
}

TEST(AmicTest, FindsAlignedRelation) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 0}}, /*gap=*/200, /*seed=*/1);
  const AmicResult r = AmicSearch(ds.pair, SmallOptions());
  ASSERT_FALSE(r.windows.empty());
  bool overlaps = false;
  for (const Window& w : r.windows.windows()) {
    overlaps |= Overlaps(w, ds.planted[0].AsWindow());
  }
  EXPECT_TRUE(overlaps);
}

TEST(AmicTest, MissesDelayedRelation) {
  // The same relation shifted by 120 samples: AMIC has no delay axis, so at
  // τ = 0 the pairs are independent and nothing should clear σ.
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 120}}, /*gap=*/200, /*seed=*/2);
  const AmicResult r = AmicSearch(ds.pair, SmallOptions());
  for (const Window& w : r.windows.windows()) {
    EXPECT_EQ(w.delay, 0);
  }
  // Either nothing found, or only spurious sub-σ-strength noise windows —
  // none should cover the planted X region strongly.
  for (const Window& w : r.windows.windows()) {
    EXPECT_LT(IndexJaccard(w, ds.planted[0].AsWindow()), 0.5)
        << w.ToString();
  }
}

TEST(AmicTest, PureNoiseYieldsNothing) {
  const SyntheticDataset ds =
      ComposeDataset({SegmentSpec{RelationType::kIndependent, 400, 0}},
                     /*gap=*/100, /*seed=*/3);
  const AmicResult r = AmicSearch(ds.pair, SmallOptions());
  EXPECT_TRUE(r.windows.empty());
}

TEST(AmicTest, FindsMultipleScales) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 300, 0},
       SegmentSpec{RelationType::kQuadratic, 150, 0}},
      /*gap=*/250, /*seed=*/4);
  const AmicResult r = AmicSearch(ds.pair, SmallOptions());
  int hits = 0;
  for (const auto& planted : ds.planted) {
    for (const Window& w : r.windows.windows()) {
      if (IndexJaccard(w, planted.AsWindow()) > 0.2) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_EQ(hits, 2);
}

TEST(AmicTest, ShortSeriesReturnsEmpty) {
  const SeriesPair pair(TimeSeries({1, 2, 3}), TimeSeries({1, 2, 3}));
  const AmicResult r = AmicSearch(pair, SmallOptions());
  EXPECT_TRUE(r.windows.empty());
  EXPECT_EQ(r.segments_evaluated, 0);
}

TEST(AmicTest, EvaluationCountIsBounded) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 200, 0}}, /*gap=*/200, /*seed=*/5);
  const AmicResult r = AmicSearch(ds.pair, SmallOptions());
  // Deduped top-down recursion stays well under n segments here.
  EXPECT_LT(r.segments_evaluated, ds.pair.size());
}

}  // namespace
}  // namespace tycos
