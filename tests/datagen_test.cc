#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "datagen/energy_sim.h"
#include "datagen/relations.h"
#include "datagen/smart_city_sim.h"
#include "mi/ksg.h"
#include "mi/pearson.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::EnergyChannel;
using datagen::EnergySimOptions;
using datagen::EnergySimulator;
using datagen::kAllRelations;
using datagen::RelationType;
using datagen::SampleRelation;
using datagen::SegmentSpec;
using datagen::SmartCitySimOptions;
using datagen::SmartCitySimulator;
using datagen::SyntheticDataset;

class RelationSampleTest : public ::testing::TestWithParam<RelationType> {};

TEST_P(RelationSampleTest, OutputsAreZNormalized) {
  Rng rng(1);
  std::vector<double> xs, ys;
  SampleRelation(GetParam(), 500, rng, &xs, &ys);
  ASSERT_EQ(xs.size(), 500u);
  ASSERT_EQ(ys.size(), 500u);
  EXPECT_NEAR(Mean(xs), 0.0, 1e-9);
  EXPECT_NEAR(Mean(ys), 0.0, 1e-9);
  EXPECT_NEAR(Variance(xs), 1.0, 1e-9);
  EXPECT_NEAR(Variance(ys), 1.0, 1e-9);
}

TEST_P(RelationSampleTest, MiReflectsDependence) {
  Rng rng(2);
  std::vector<double> xs, ys;
  SampleRelation(GetParam(), 800, rng, &xs, &ys);
  const double mi = KsgMi(xs, ys);
  if (GetParam() == RelationType::kIndependent) {
    EXPECT_LT(mi, 0.1);
  } else {
    EXPECT_GT(mi, 0.5) << datagen::RelationTypeName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllRelations, RelationSampleTest,
                         ::testing::ValuesIn(kAllRelations),
                         [](const auto& info) {
                           return datagen::RelationTypeName(info.param);
                         });

TEST(RelationSampleTest, PccSeesOnlyLinearShapes) {
  Rng rng(3);
  std::vector<double> xs, ys;
  SampleRelation(RelationType::kLinear, 1000, rng, &xs, &ys);
  EXPECT_GT(std::fabs(PearsonCorrelation(xs, ys)), 0.9);
  SampleRelation(RelationType::kCircle, 1000, rng, &xs, &ys);
  EXPECT_LT(std::fabs(PearsonCorrelation(xs, ys)), 0.15);
  SampleRelation(RelationType::kSine, 1000, rng, &xs, &ys);
  EXPECT_LT(std::fabs(PearsonCorrelation(xs, ys)), 0.3);
}

TEST(ComposeDatasetTest, LayoutAndGroundTruth) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 100, 10},
       SegmentSpec{RelationType::kSine, 50, 20}},
      /*gap=*/30, /*seed=*/1);
  ASSERT_EQ(ds.planted.size(), 2u);
  EXPECT_EQ(ds.planted[0].x_start, 30);
  EXPECT_EQ(ds.planted[0].length, 100);
  EXPECT_EQ(ds.planted[0].delay, 10);
  EXPECT_EQ(ds.planted[1].x_start, 160);
  // n = gap + (100 + gap) + (50 + gap) + max_delay = 240 + 20.
  EXPECT_EQ(ds.pair.size(), 260);
}

TEST(ComposeDatasetTest, PlantedRegionIsCorrelatedAtItsDelay) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kQuadratic, 200, 40}}, /*gap=*/100,
      /*seed=*/2);
  const Window at_delay = ds.planted[0].AsWindow();
  Window wrong_delay = at_delay;
  wrong_delay.delay = 0;
  EXPECT_GT(KsgMi(ds.pair, at_delay), 1.0);
  EXPECT_LT(KsgMi(ds.pair, wrong_delay), 0.25);
}

TEST(ComposeDatasetTest, GapRegionsAreUncorrelated) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 100, 0}}, /*gap=*/200, /*seed=*/3);
  EXPECT_LT(KsgMi(ds.pair, Window(0, 180, 0)), 0.15);
}

TEST(ComposeDatasetTest, Deterministic) {
  const SyntheticDataset a = ComposeDataset(
      {SegmentSpec{RelationType::kCross, 80, 5}}, 50, /*seed=*/7);
  const SyntheticDataset b = ComposeDataset(
      {SegmentSpec{RelationType::kCross, 80, 5}}, 50, /*seed=*/7);
  EXPECT_EQ(a.pair.x().values(), b.pair.x().values());
  EXPECT_EQ(a.pair.y().values(), b.pair.y().values());
}

TEST(SyntheticWorkloadTest, VariantsProduceRequestedScale) {
  for (int variant = 1; variant <= 3; ++variant) {
    const SyntheticDataset ds = datagen::SyntheticWorkload(variant, 2000, 1);
    EXPECT_GT(ds.pair.size(), 1000) << "variant " << variant;
    EXPECT_LT(ds.pair.size(), 4000) << "variant " << variant;
    EXPECT_FALSE(ds.planted.empty());
  }
}

TEST(EnergySimTest, ChannelsHaveExpectedLength) {
  EnergySimOptions opt;
  opt.days = 3;
  opt.samples_per_hour = 12;
  EnergySimulator sim(opt);
  EXPECT_EQ(sim.length(), 3 * 24 * 12);
  for (int c = 0; c < datagen::kNumEnergyChannels; ++c) {
    EXPECT_EQ(sim.Channel(static_cast<EnergyChannel>(c)).size(),
              sim.length());
  }
}

TEST(EnergySimTest, PowerIsNonNegative) {
  EnergySimOptions opt;
  opt.days = 2;
  EnergySimulator sim(opt);
  const auto& kitchen = sim.Channel(EnergyChannel::kKitchen);
  for (int64_t i = 0; i < kitchen.size(); ++i) {
    EXPECT_GE(kitchen[i], 0.0);
  }
}

TEST(EnergySimTest, LaggedChannelsShareInformation) {
  EnergySimOptions opt;
  opt.days = 10;
  EnergySimulator sim(opt);
  const SeriesPair washer_dryer =
      sim.Pair(EnergyChannel::kClothesWasher, EnergyChannel::kDryer);
  // Whole-series MI at τ=0 is modest, but the best lag in 10–30 min should
  // carry clear dependence in the active regions. Use a coarse check: MI
  // over the whole pair at some positive delay beats independence.
  double best = 0.0;
  for (int64_t lag = 0; lag <= 30; lag += 5) {
    const Window w(0, washer_dryer.size() - 1 - 30, lag);
    best = std::max(best, KsgMi(washer_dryer, w, {}));
  }
  EXPECT_GT(best, 0.05);
}

TEST(EnergySimTest, Deterministic) {
  EnergySimOptions opt;
  opt.days = 2;
  opt.seed = 123;
  EnergySimulator a(opt), b(opt);
  EXPECT_EQ(a.Channel(EnergyChannel::kKitchen).values(),
            b.Channel(EnergyChannel::kKitchen).values());
}

TEST(SmartCitySimTest, ChannelsHaveExpectedLength) {
  SmartCitySimOptions opt;
  opt.days = 4;
  opt.samples_per_hour = 4;
  SmartCitySimulator sim(opt);
  EXPECT_EQ(sim.length(), 4 * 24 * 4);
  for (int c = 0; c < datagen::kNumCityChannels; ++c) {
    EXPECT_EQ(sim.Channel(static_cast<datagen::CityChannel>(c)).size(),
              sim.length());
  }
}

TEST(SmartCitySimTest, CountsAreNonNegativeIntegers) {
  SmartCitySimOptions opt;
  opt.days = 2;
  SmartCitySimulator sim(opt);
  const auto& col = sim.Channel(datagen::CityChannel::kCollisions);
  for (int64_t i = 0; i < col.size(); ++i) {
    EXPECT_GE(col[i], 0.0);
    EXPECT_DOUBLE_EQ(col[i], std::floor(col[i]));
  }
}

TEST(SmartCitySimTest, RainDrivesCollisionsWithLag) {
  SmartCitySimOptions opt;
  opt.days = 20;
  SmartCitySimulator sim(opt);
  const SeriesPair pair = sim.Pair(datagen::CityChannel::kPrecipitation,
                                   datagen::CityChannel::kCollisions);
  double best = 0.0;
  int64_t best_lag = 0;
  for (int64_t lag = 0; lag <= 10; ++lag) {
    const Window w(0, pair.size() - 1 - 10, lag);
    KsgOptions o;
    o.tie_jitter = 1e-6;  // counts are discrete
    const double mi = KsgMi(pair, w, o);
    if (mi > best) {
      best = mi;
      best_lag = lag;
    }
  }
  EXPECT_GT(best, 0.05);
  EXPECT_GT(best_lag, 0);  // the response is lagged, not instantaneous
}

}  // namespace
}  // namespace tycos
