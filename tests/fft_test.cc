#include "fft/fft.h"

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fft/sliding_dot.h"

namespace tycos {
namespace {

std::vector<Complex> NaiveDft(const std::vector<Complex>& in, bool inverse) {
  const size_t n = in.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 2.0 : -2.0;
  for (size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (size_t j = 0; j < n; ++j) {
      const double angle = sign * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

std::vector<Complex> RandomSignal(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.Normal(), rng.Normal());
  return v;
}

TEST(FftTest, SizeOneIsIdentity) {
  std::vector<Complex> v = {Complex(3, -1)};
  Fft(&v, false);
  EXPECT_DOUBLE_EQ(v[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(v[0].imag(), -1.0);
}

TEST(FftTest, MatchesNaiveDftPowerOfTwo) {
  for (size_t n : {2u, 4u, 8u, 64u, 256u}) {
    std::vector<Complex> v = RandomSignal(n, n);
    std::vector<Complex> expected = NaiveDft(v, false);
    Fft(&v, false);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(v[i].real(), expected[i].real(), 1e-8) << "n=" << n;
      ASSERT_NEAR(v[i].imag(), expected[i].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(FftTest, RoundTripRecoversInput) {
  std::vector<Complex> v = RandomSignal(128, 5);
  const std::vector<Complex> original = v;
  Fft(&v, false);
  Fft(&v, true);
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_NEAR(v[i].real(), original[i].real(), 1e-10);
    ASSERT_NEAR(v[i].imag(), original[i].imag(), 1e-10);
  }
}

class BluesteinTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BluesteinTest, MatchesNaiveDftArbitrarySize) {
  const size_t n = GetParam();
  const std::vector<Complex> v = RandomSignal(n, n * 7 + 1);
  const std::vector<Complex> expected = NaiveDft(v, false);
  const std::vector<Complex> got = FftAnySize(v, false);
  ASSERT_EQ(got.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i].real(), expected[i].real(), 1e-7) << "n=" << n;
    ASSERT_NEAR(got[i].imag(), expected[i].imag(), 1e-7) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BluesteinTest,
                         ::testing::Values(3, 5, 6, 7, 12, 37, 100, 241, 360));

TEST(BluesteinTest, InverseRoundTrip) {
  const std::vector<Complex> v = RandomSignal(100, 9);
  const std::vector<Complex> f = FftAnySize(v, false);
  const std::vector<Complex> back = FftAnySize(f, true);
  for (size_t i = 0; i < v.size(); ++i) {
    ASSERT_NEAR(back[i].real(), v[i].real(), 1e-8);
    ASSERT_NEAR(back[i].imag(), v[i].imag(), 1e-8);
  }
}

TEST(NextPowerOfTwoTest, Values) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(ConvolveTest, MatchesNaiveConvolution) {
  Rng rng(11);
  std::vector<double> a(23), b(41);
  for (auto& v : a) v = rng.Normal();
  for (auto& v : b) v = rng.Normal();
  const std::vector<double> got = Convolve(a, b);
  ASSERT_EQ(got.size(), a.size() + b.size() - 1);
  for (size_t k = 0; k < got.size(); ++k) {
    double expected = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (k >= i && k - i < b.size()) expected += a[i] * b[k - i];
    }
    ASSERT_NEAR(got[k], expected, 1e-8) << "k=" << k;
  }
}

TEST(ConvolveTest, DeltaIsIdentity) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {5.0, -1.0, 2.0};
  const std::vector<double> got = Convolve(a, b);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_NEAR(got[0], 5.0, 1e-12);
  EXPECT_NEAR(got[1], -1.0, 1e-12);
  EXPECT_NEAR(got[2], 2.0, 1e-12);
}

TEST(SlidingDotProductTest, MatchesNaive) {
  Rng rng(13);
  std::vector<double> q(16), s(100);
  for (auto& v : q) v = rng.Normal();
  for (auto& v : s) v = rng.Normal();
  const std::vector<double> got = SlidingDotProduct(q, s);
  ASSERT_EQ(got.size(), s.size() - q.size() + 1);
  for (size_t i = 0; i < got.size(); ++i) {
    double expected = 0.0;
    for (size_t j = 0; j < q.size(); ++j) expected += q[j] * s[i + j];
    ASSERT_NEAR(got[i], expected, 1e-8);
  }
}

TEST(RollingMeanStdTest, MatchesDirectComputation) {
  Rng rng(15);
  std::vector<double> s(64);
  for (auto& v : s) v = rng.Uniform(-3, 3);
  const size_t m = 9;
  std::vector<double> mean, sd;
  RollingMeanStd(s, m, &mean, &sd);
  ASSERT_EQ(mean.size(), s.size() - m + 1);
  for (size_t i = 0; i + m <= s.size(); ++i) {
    double mu = 0.0;
    for (size_t j = 0; j < m; ++j) mu += s[i + j];
    mu /= static_cast<double>(m);
    double var = 0.0;
    for (size_t j = 0; j < m; ++j) var += (s[i + j] - mu) * (s[i + j] - mu);
    var /= static_cast<double>(m);
    ASSERT_NEAR(mean[i], mu, 1e-9);
    ASSERT_NEAR(sd[i], std::sqrt(var), 1e-9);
  }
}

TEST(MassDistanceProfileTest, ExactMatchHasZeroDistance) {
  Rng rng(17);
  std::vector<double> s(200);
  for (auto& v : s) v = rng.Normal();
  std::vector<double> q(s.begin() + 50, s.begin() + 70);
  const std::vector<double> profile = MassDistanceProfile(q, s);
  EXPECT_NEAR(profile[50], 0.0, 1e-4);
  // And it is the minimum of the profile.
  for (size_t i = 0; i < profile.size(); ++i) {
    EXPECT_GE(profile[i], -1e-9);
    EXPECT_LE(profile[50], profile[i] + 1e-9);
  }
}

TEST(MassDistanceProfileTest, ScaledShiftedMatchAlsoZero) {
  // z-normalization makes the distance invariant to affine transforms.
  Rng rng(19);
  std::vector<double> s(150);
  for (auto& v : s) v = rng.Normal();
  std::vector<double> q(s.begin() + 30, s.begin() + 50);
  for (double& v : q) v = 4.0 * v + 10.0;
  const std::vector<double> profile = MassDistanceProfile(q, s);
  EXPECT_NEAR(profile[30], 0.0, 1e-4);
}

TEST(MassDistanceProfileTest, ConstantWindowGetsNeutralDistance) {
  std::vector<double> s(50, 1.0);
  s[25] = 2.0;
  std::vector<double> q = {1.0, 2.0, 3.0};
  const std::vector<double> profile = MassDistanceProfile(q, s);
  const double neutral = std::sqrt(2.0 * 3.0);
  for (size_t i = 0; i < 20; ++i) ASSERT_NEAR(profile[i], neutral, 1e-9);
}

}  // namespace
}  // namespace tycos
