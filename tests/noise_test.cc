#include "search/noise.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/relations.h"
#include "mi/ksg.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TycosParams SmallParams() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 400;
  p.td_max = 24;
  p.k = 4;
  return p;
}

TEST(NoiseTheoremTest, MixingIndependentDataReducesMi) {
  // Theorem 6.1, statistically: I(X;Y) >= I(Z;W) where Z, W extend (X, Y)
  // with independent noise. Check on a strong relation.
  Rng rng(3);
  std::vector<double> xs, ys;
  datagen::SampleRelation(RelationType::kSine, 300, rng, &xs, &ys);
  const double pure = KsgMi(xs, ys);
  // Append 300 independent samples to both.
  std::vector<double> xz = xs, yw = ys;
  for (int i = 0; i < 300; ++i) {
    xz.push_back(rng.Normal());
    yw.push_back(rng.Normal());
  }
  const double mixed = KsgMi(xz, yw);
  // Theorem 6.1's direction: diluting with independent data strictly loses
  // shared information (the θη < 1 factor). The exact factor depends on the
  // mixture structure, so only the ordering and a coarse band are asserted.
  EXPECT_GT(pure, mixed + 0.2);
  EXPECT_LT(mixed, 0.75 * pure);
  EXPECT_GT(mixed, 0.0);
}

TEST(InitialNoisePruningTest, FindsThePlantedRegion) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 200, 0}}, /*gap=*/300, /*seed=*/1);
  const TycosParams p = SmallParams();
  BatchEvaluator eval(ds.pair, p);
  const auto w0 = InitialNoisePruning(ds.pair, eval, p, 0,
                                      /*scan_delays=*/false);
  ASSERT_TRUE(w0.has_value());
  EXPECT_GE(w0->mi, p.epsilon());
  // The starting window must overlap the planted relation [300, 499].
  const Window truth = ds.planted[0].AsWindow();
  EXPECT_TRUE(Overlaps(*w0, truth)) << w0->ToString();
}

TEST(InitialNoisePruningTest, ReturnsNulloptOnPureNoise) {
  Rng rng(5);
  std::vector<double> x(600), y(600);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const SeriesPair pair{TimeSeries(std::move(x)), TimeSeries(std::move(y))};
  const TycosParams p = SmallParams();
  BatchEvaluator eval(pair, p);
  // The noise threshold ε is deliberately permissive (σ/4), so a lucky
  // noise block may clear it — but nothing in pure noise may ever look like
  // a real correlation (score >= σ).
  const auto w0 = InitialNoisePruning(pair, eval, p, 0, /*scan_delays=*/false);
  if (w0.has_value()) {
    EXPECT_LT(w0->mi, p.sigma);
  }
}

TEST(InitialNoisePruningTest, DelayScanLocatesDelayedRelation) {
  const SyntheticDataset ds =
      ComposeDataset({SegmentSpec{RelationType::kQuadratic, 240, 20}},
                     /*gap=*/200, /*seed=*/2);
  TycosParams p = SmallParams();
  // A strict ε and a fine delay grid make the scan skip chance noise blocks
  // and land on the relation at (near) its true lag.
  p.epsilon_ratio = 0.5;
  p.initial_delay_step = 4;
  BatchEvaluator eval(ds.pair, p);
  const auto w0 =
      InitialNoisePruning(ds.pair, eval, p, 0, /*scan_delays=*/true);
  ASSERT_TRUE(w0.has_value());
  EXPECT_TRUE(Overlaps(*w0, ds.planted[0].AsWindow()));
  // The chosen placement should be at (or near) the planted delay.
  EXPECT_NEAR(static_cast<double>(w0->delay), 20.0, 8.0);
}

TEST(InitialNoisePruningTest, RespectsFromCursor) {
  // Two relations; starting the scan after the first must find the second.
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0},
       SegmentSpec{RelationType::kSine, 150, 0}},
      /*gap=*/200, /*seed=*/3);
  const TycosParams p = SmallParams();
  BatchEvaluator eval(ds.pair, p);
  const int64_t second_start = ds.planted[1].x_start;
  const auto w0 = InitialNoisePruning(ds.pair, eval, p, second_start - 40,
                                      /*scan_delays=*/false);
  ASSERT_TRUE(w0.has_value());
  EXPECT_TRUE(Overlaps(*w0, ds.planted[1].AsWindow()));
}

TEST(DetectSubsequentNoiseTest, BlocksExtensionIntoNoise) {
  // Relation [300, 499]; a window sitting exactly on it should see noise on
  // both sides.
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 200, 0}}, /*gap=*/300, /*seed=*/4);
  const TycosParams p = SmallParams();
  BatchEvaluator eval(ds.pair, p);
  const Window truth = ds.planted[0].AsWindow();
  Window w = truth;
  w.mi = eval.Score(w);
  ASSERT_GT(w.mi, p.epsilon());
  DirectionMask mask;
  const int blocked =
      DetectSubsequentNoise(ds.pair, eval, p, w, w.mi, &mask);
  EXPECT_EQ(blocked, 2);
  EXPECT_TRUE(mask.extend_end_blocked);
  EXPECT_TRUE(mask.extend_start_blocked);
}

TEST(DetectSubsequentNoiseTest, DoesNotBlockInsideTheRelation) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 400, 0}}, /*gap=*/200, /*seed=*/5);
  const TycosParams p = SmallParams();
  BatchEvaluator eval(ds.pair, p);
  // A window covering the middle half of the relation: both extensions lead
  // into more correlated data, so nothing should be blocked.
  const datagen::PlantedRelation& r = ds.planted[0];
  Window w(r.x_start + 100, r.x_start + 299, 0);
  w.mi = eval.Score(w);
  DirectionMask mask;
  const int blocked =
      DetectSubsequentNoise(ds.pair, eval, p, w, w.mi, &mask);
  EXPECT_EQ(blocked, 0);
  EXPECT_FALSE(mask.extend_end_blocked);
  EXPECT_FALSE(mask.extend_start_blocked);
}

TEST(DetectSubsequentNoiseTest, HonoursExistingMask) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 200, 0}}, /*gap=*/300, /*seed=*/6);
  const TycosParams p = SmallParams();
  BatchEvaluator eval(ds.pair, p);
  Window w = ds.planted[0].AsWindow();
  w.mi = eval.Score(w);
  DirectionMask mask;
  mask.extend_end_blocked = true;
  const int blocked =
      DetectSubsequentNoise(ds.pair, eval, p, w, w.mi, &mask);
  EXPECT_LE(blocked, 1);  // only the start side can newly block
  EXPECT_TRUE(mask.extend_end_blocked);
}

TEST(DirectionMaskTest, Reset) {
  DirectionMask m;
  m.extend_end_blocked = true;
  m.extend_start_blocked = true;
  m.Reset();
  EXPECT_FALSE(m.extend_end_blocked);
  EXPECT_FALSE(m.extend_start_blocked);
}

}  // namespace
}  // namespace tycos
