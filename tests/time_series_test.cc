#include "core/time_series.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"

namespace tycos {
namespace {

TEST(TimeSeriesTest, ConstructionAndAccess) {
  TimeSeries ts({1.0, 2.0, 3.0}, "temp");
  EXPECT_EQ(ts.size(), 3);
  EXPECT_FALSE(ts.empty());
  EXPECT_DOUBLE_EQ(ts[0], 1.0);
  EXPECT_DOUBLE_EQ(ts[2], 3.0);
  EXPECT_EQ(ts.name(), "temp");
}

TEST(TimeSeriesTest, DefaultIsEmpty) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0);
}

TEST(TimeSeriesTest, Append) {
  TimeSeries ts;
  ts.Append(1.5);
  ts.Append(-2.5);
  EXPECT_EQ(ts.size(), 2);
  EXPECT_DOUBLE_EQ(ts[1], -2.5);
}

TEST(TimeSeriesTest, SliceInclusiveBounds) {
  TimeSeries ts({0.0, 1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(ts.Slice(1, 3), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(ts.Slice(0, 0), (std::vector<double>{0.0}));
  EXPECT_EQ(ts.Slice(4, 4), (std::vector<double>{4.0}));
}

TEST(TimeSeriesTest, ZNormalizedHasZeroMeanUnitVariance) {
  TimeSeries ts({1.0, 2.0, 3.0, 4.0, 10.0});
  const TimeSeries z = ts.ZNormalized();
  EXPECT_NEAR(Mean(z.values()), 0.0, 1e-12);
  EXPECT_NEAR(Variance(z.values()), 1.0, 1e-12);
  EXPECT_EQ(z.name(), ts.name());
}

TEST(TimeSeriesTest, ZNormalizedConstantSeriesIsZeros) {
  TimeSeries ts({7.0, 7.0, 7.0});
  const TimeSeries z = ts.ZNormalized();
  for (int64_t i = 0; i < z.size(); ++i) EXPECT_DOUBLE_EQ(z[i], 0.0);
}

TEST(TimeSeriesTest, SetName) {
  TimeSeries ts;
  ts.set_name("wind");
  EXPECT_EQ(ts.name(), "wind");
}

TEST(SeriesPairTest, HoldsBothSeries) {
  SeriesPair pair(TimeSeries({1.0, 2.0}, "a"), TimeSeries({3.0, 4.0}, "b"));
  EXPECT_EQ(pair.size(), 2);
  EXPECT_DOUBLE_EQ(pair.x()[0], 1.0);
  EXPECT_DOUBLE_EQ(pair.y()[1], 4.0);
  EXPECT_EQ(pair.x().name(), "a");
  EXPECT_EQ(pair.y().name(), "b");
}

TEST(SeriesPairTest, DefaultIsEmpty) {
  SeriesPair pair;
  EXPECT_EQ(pair.size(), 0);
}

}  // namespace
}  // namespace tycos
