#include "audit/audit.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tycos {
namespace audit {
namespace {

TEST(AuditorTest, CountsChecksAndFailures) {
  Auditor a("counts");
  a.Check(true, nullptr);
  a.Check(true, nullptr);
  a.Check(false, [] { return std::string("boom"); });
  a.Check(false, [] { return std::string("later"); });
  EXPECT_EQ(a.checks(), 4);
  EXPECT_EQ(a.failures(), 2);
  EXPECT_EQ(a.first_failure(), "boom");  // first capture wins
}

TEST(AuditorTest, ContextIsLazyOnSuccess) {
  Auditor a("lazy");
  bool invoked = false;
  a.Check(true, [&] {
    invoked = true;
    return std::string("never");
  });
  EXPECT_FALSE(invoked);
  EXPECT_TRUE(a.first_failure().empty());
}

TEST(AuditorTest, MissingContextGetsPlaceholder) {
  Auditor a("noctx");
  a.Check(false, nullptr);
  EXPECT_EQ(a.first_failure(), "(no context)");
}

TEST(AuditorTest, ShouldSampleIsDeterministicAndPeriodic) {
  Auditor a("sampler");
  std::vector<bool> pattern;
  for (int i = 0; i < 10; ++i) pattern.push_back(a.ShouldSample(4));
  const std::vector<bool> expected = {true,  false, false, false, true,
                                      false, false, false, true,  false};
  EXPECT_EQ(pattern, expected);
  // Period <= 1 always samples and does not advance the clock.
  Auditor b("always");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.ShouldSample(1));
}

TEST(AuditorTest, ConcurrentChecksLoseNoCounts) {
  Auditor a("racing");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a] {
      for (int i = 0; i < kPerThread; ++i) {
        a.Check(i % 2 == 0, [] { return std::string("odd"); });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(a.checks(), kThreads * kPerThread);
  EXPECT_EQ(a.failures(), kThreads * kPerThread / 2);
  EXPECT_EQ(a.first_failure(), "odd");
}

TEST(RegistryTest, GetReturnsStableHandles) {
  Auditor* a = Registry::Instance().Get("registry_stable");
  Auditor* b = Registry::Instance().Get("registry_stable");
  Auditor* c = Registry::Instance().Get("registry_other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->name(), "registry_stable");
}

TEST(RegistryTest, SnapshotAggregatesActiveAuditors) {
  Registry::Instance().ResetAllForTest();
  Auditor* a = Registry::Instance().Get("snap_a");
  Auditor* b = Registry::Instance().Get("snap_b");
  Registry::Instance().Get("snap_idle");  // never checks; excluded
  a->Check(true, nullptr);
  a->Check(false, [] { return std::string("ctx-a"); });
  b->Check(true, nullptr);

  const AuditReport report = Snapshot();
  EXPECT_EQ(report.checks, 3);
  EXPECT_EQ(report.failures, 1);
  EXPECT_FALSE(report.ok());
  bool saw_a = false, saw_idle = false;
  for (const AuditorStats& st : report.auditors) {
    if (st.name == "snap_a") {
      saw_a = true;
      EXPECT_EQ(st.checks, 2);
      EXPECT_EQ(st.failures, 1);
      EXPECT_EQ(st.first_failure, "ctx-a");
    }
    if (st.name == "snap_idle") saw_idle = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_FALSE(saw_idle);

  const std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("snap_a"), std::string::npos);
  EXPECT_NE(rendered.find("ctx-a"), std::string::npos);
  EXPECT_NE(rendered.find("VIOLATIONS"), std::string::npos);

  Registry::Instance().ResetAllForTest();
  EXPECT_EQ(Registry::Instance().Get("snap_a")->checks(), 0);
  EXPECT_TRUE(Registry::Instance().Get("snap_a")->first_failure().empty());
}

TEST(RegistryTest, TotalsMatchSnapshot) {
  Registry::Instance().ResetAllForTest();
  Auditor* a = Registry::Instance().Get("totals");
  for (int i = 0; i < 7; ++i) a->Check(i != 3, nullptr);
  EXPECT_EQ(Registry::Instance().TotalChecks(), Snapshot().checks);
  EXPECT_EQ(Registry::Instance().TotalFailures(), Snapshot().failures);
  Registry::Instance().ResetAllForTest();
}

TEST(AuditMacroTest, MatchesBuildConfiguration) {
  Registry::Instance().ResetAllForTest();
  Auditor* a = Registry::Instance().Get("macro_gate");
  bool context_built = false;
  TYCOS_AUDIT_CHECK(a, false, (context_built = true, std::string("macro")));
#if TYCOS_AUDIT_ENABLED
  EXPECT_EQ(a->checks(), 1);
  EXPECT_EQ(a->failures(), 1);
  EXPECT_TRUE(context_built);
#else
  // Compiled out: no counters move, the context expression never runs.
  EXPECT_EQ(a->checks(), 0);
  EXPECT_EQ(a->failures(), 0);
  EXPECT_FALSE(context_built);
#endif
  Registry::Instance().ResetAllForTest();
}

}  // namespace
}  // namespace audit
}  // namespace tycos
