#include "io/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

struct Rendered {
  SyntheticDataset ds;
  WindowSet windows;
  TycosStats stats;
  TycosParams params;
};

Rendered MakeRun() {
  Rendered r{ComposeDataset({SegmentSpec{RelationType::kLinear, 150, 4}},
                            /*gap=*/150, /*seed=*/1),
             {},
             {},
             {}};
  r.params.sigma = 0.5;
  r.params.s_min = 24;
  r.params.s_max = 300;
  r.params.td_max = 16;
  Tycos search(r.ds.pair, r.params, TycosVariant::kLMN);
  r.windows = search.Run();
  r.stats = search.stats();
  return r;
}

TEST(RenderReportTest, ContainsAllSections) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  EXPECT_NE(md.find("# TYCOS correlation report"), std::string::npos);
  EXPECT_NE(md.find("## Parameters"), std::string::npos);
  EXPECT_NE(md.find("## Windows"), std::string::npos);
  EXPECT_NE(md.find("## Search statistics"), std::string::npos);
  EXPECT_NE(md.find("| sigma | 0.5 |"), std::string::npos);
}

TEST(RenderReportTest, ListsEveryWindow) {
  const Rendered r = MakeRun();
  ASSERT_FALSE(r.windows.empty());
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  for (const Window& w : r.windows.windows()) {
    std::ostringstream cell;
    cell << "[" << w.start << ", " << w.end << "]";
    EXPECT_NE(md.find(cell.str()), std::string::npos) << cell.str();
  }
}

TEST(RenderReportTest, EmptyResultIsStated) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, WindowSet(), r.stats);
  EXPECT_NE(md.find("No correlated windows"), std::string::npos);
}

TEST(RenderReportTest, TimeUnitsWhenSamplingKnown) {
  const Rendered r = MakeRun();
  ReportOptions opt;
  opt.seconds_per_sample = 300.0;  // 5-minute samples
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats, opt);
  EXPECT_NE(md.find(" when | lag |"), std::string::npos);
  // Positions land in the hour range for this dataset (5-min samples,
  // windows starting hundreds of samples in).
  EXPECT_NE(md.find(" h "), std::string::npos);
}

// Regression: durations below one second used to fall into the "%.0f s"
// branch and render as the indistinguishable-from-zero "0 s".
TEST(RenderReportTest, SubSecondDurationsRenderAsMilliseconds) {
  const Rendered r = MakeRun();
  WindowSet ws;
  ws.Insert(Window(10, 50, 1, 0.8));
  ws.Insert(Window(100, 150, -2, 0.7));  // negative delay renders signed
  ReportOptions opt;
  opt.seconds_per_sample = 0.004;  // 4 ms samples (250 Hz)
  const std::string md =
      RenderReport(r.ds.pair, r.params, ws, r.stats, opt);
  EXPECT_NE(md.find("| 4 ms |"), std::string::npos) << md;
  EXPECT_NE(md.find("| -8 ms |"), std::string::npos) << md;
  EXPECT_NE(md.find("40 ms"), std::string::npos) << md;  // window start
  EXPECT_EQ(md.find("| 0 s |"), std::string::npos) << md;
}

TEST(RenderReportTest, ZeroDurationStillRendersAsZeroSeconds) {
  const Rendered r = MakeRun();
  WindowSet ws;
  ws.Insert(Window(0, 50, 0, 0.8));  // starts at t=0 with no lag
  ReportOptions opt;
  opt.seconds_per_sample = 0.004;
  const std::string md =
      RenderReport(r.ds.pair, r.params, ws, r.stats, opt);
  // Both the t=0 window start and the zero lag are exactly zero.
  EXPECT_NE(md.find("| 0 s – 204 ms | 0 s |"), std::string::npos) << md;
}

TEST(RenderReportTest, MetricsSectionOnlyWhenRequested) {
  const Rendered r = MakeRun();
  EXPECT_EQ(
      RenderReport(r.ds.pair, r.params, r.windows, r.stats).find("## Metrics"),
      std::string::npos);
  ReportOptions opt;
  opt.include_metrics = true;
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats, opt);
  EXPECT_NE(md.find("## Metrics"), std::string::npos);
  // The run above performed MI work, so the registry section is non-empty.
  EXPECT_NE(md.find("mi.evaluations"), std::string::npos);
}

TEST(RenderReportTest, MentionsTheilerWindowOnlyWhenSet) {
  const Rendered r = MakeRun();
  EXPECT_EQ(RenderReport(r.ds.pair, r.params, r.windows, r.stats)
                .find("theiler"),
            std::string::npos);
  TycosParams with = r.params;
  with.theiler_window = 8;
  EXPECT_NE(RenderReport(r.ds.pair, with, r.windows, r.stats)
                .find("| theiler window | 8 |"),
            std::string::npos);
}

TEST(WriteReportTest, WritesFile) {
  const Rendered r = MakeRun();
  const std::string path = ::testing::TempDir() + "/tycos_report.md";
  ASSERT_TRUE(
      WriteReport(path, r.ds.pair, r.params, r.windows, r.stats).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("## Windows"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tycos
