#include "io/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

struct Rendered {
  SyntheticDataset ds;
  WindowSet windows;
  TycosStats stats;
  TycosParams params;
};

Rendered MakeRun() {
  Rendered r{ComposeDataset({SegmentSpec{RelationType::kLinear, 150, 4}},
                            /*gap=*/150, /*seed=*/1),
             {},
             {},
             {}};
  r.params.sigma = 0.5;
  r.params.s_min = 24;
  r.params.s_max = 300;
  r.params.td_max = 16;
  Tycos search(r.ds.pair, r.params, TycosVariant::kLMN);
  r.windows = search.Run();
  r.stats = search.stats();
  return r;
}

TEST(RenderReportTest, ContainsAllSections) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  EXPECT_NE(md.find("# TYCOS correlation report"), std::string::npos);
  EXPECT_NE(md.find("## Parameters"), std::string::npos);
  EXPECT_NE(md.find("## Windows"), std::string::npos);
  EXPECT_NE(md.find("## Search statistics"), std::string::npos);
  EXPECT_NE(md.find("| sigma | 0.5 |"), std::string::npos);
}

TEST(RenderReportTest, ListsEveryWindow) {
  const Rendered r = MakeRun();
  ASSERT_FALSE(r.windows.empty());
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  for (const Window& w : r.windows.windows()) {
    std::ostringstream cell;
    cell << "[" << w.start << ", " << w.end << "]";
    EXPECT_NE(md.find(cell.str()), std::string::npos) << cell.str();
  }
}

TEST(RenderReportTest, EmptyResultIsStated) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, WindowSet(), r.stats);
  EXPECT_NE(md.find("No correlated windows"), std::string::npos);
}

TEST(RenderReportTest, TimeUnitsWhenSamplingKnown) {
  const Rendered r = MakeRun();
  ReportOptions opt;
  opt.seconds_per_sample = 300.0;  // 5-minute samples
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats, opt);
  EXPECT_NE(md.find(" when | lag |"), std::string::npos);
  // Positions land in the hour range for this dataset (5-min samples,
  // windows starting hundreds of samples in).
  EXPECT_NE(md.find(" h "), std::string::npos);
}

// Regression: durations below one second used to fall into the "%.0f s"
// branch and render as the indistinguishable-from-zero "0 s".
TEST(RenderReportTest, SubSecondDurationsRenderAsMilliseconds) {
  const Rendered r = MakeRun();
  WindowSet ws;
  ws.Insert(Window(10, 50, 1, 0.8));
  ws.Insert(Window(100, 150, -2, 0.7));  // negative delay renders signed
  ReportOptions opt;
  opt.seconds_per_sample = 0.004;  // 4 ms samples (250 Hz)
  const std::string md =
      RenderReport(r.ds.pair, r.params, ws, r.stats, opt);
  EXPECT_NE(md.find("| 4 ms |"), std::string::npos) << md;
  EXPECT_NE(md.find("| -8 ms |"), std::string::npos) << md;
  EXPECT_NE(md.find("40 ms"), std::string::npos) << md;  // window start
  EXPECT_EQ(md.find("| 0 s |"), std::string::npos) << md;
}

TEST(RenderReportTest, ZeroDurationStillRendersAsZeroSeconds) {
  const Rendered r = MakeRun();
  WindowSet ws;
  ws.Insert(Window(0, 50, 0, 0.8));  // starts at t=0 with no lag
  ReportOptions opt;
  opt.seconds_per_sample = 0.004;
  const std::string md =
      RenderReport(r.ds.pair, r.params, ws, r.stats, opt);
  // Both the t=0 window start and the zero lag are exactly zero.
  EXPECT_NE(md.find("| 0 s – 204 ms | 0 s |"), std::string::npos) << md;
}

TEST(RenderReportTest, MetricsSectionOnlyWhenRequested) {
  const Rendered r = MakeRun();
  EXPECT_EQ(
      RenderReport(r.ds.pair, r.params, r.windows, r.stats).find("## Metrics"),
      std::string::npos);
  ReportOptions opt;
  opt.include_metrics = true;
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats, opt);
  EXPECT_NE(md.find("## Metrics"), std::string::npos);
  // The run above performed MI work, so the registry section is non-empty.
  EXPECT_NE(md.find("mi.evaluations"), std::string::npos);
}

TEST(RenderReportTest, MentionsTheilerWindowOnlyWhenSet) {
  const Rendered r = MakeRun();
  EXPECT_EQ(RenderReport(r.ds.pair, r.params, r.windows, r.stats)
                .find("theiler"),
            std::string::npos);
  TycosParams with = r.params;
  with.theiler_window = 8;
  EXPECT_NE(RenderReport(r.ds.pair, with, r.windows, r.stats)
                .find("| theiler window | 8 |"),
            std::string::npos);
}

TEST(RenderReportTest, RunStatusCompleted) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  EXPECT_NE(md.find("Run status: completed"), std::string::npos);
  EXPECT_EQ(md.find("partial"), std::string::npos);
}

TEST(RenderReportTest, RunStatusSurfacesStopReason) {
  const Rendered r = MakeRun();
  TycosStats cut = r.stats;
  cut.stop_reason = StopReason::kDeadlineExceeded;
  const std::string md = RenderReport(r.ds.pair, r.params, r.windows, cut);
  EXPECT_NE(md.find("**partial** — stopped early (deadline_exceeded)"),
            std::string::npos)
      << md;
}

// A pairwise result for the report tests: three entries with distinct
// provenance (clean, partial, shed-degraded) so every flag renders.
PairwiseResult MakePairwiseResult() {
  PairwiseResult result;
  PairwiseEntry clean;
  clean.a = 0;
  clean.b = 1;
  clean.windows.Insert(Window(10, 80, 3, 0.9));
  clean.best_score = 0.9;
  PairwiseEntry partial;
  partial.a = 0;
  partial.b = 2;
  partial.partial = true;
  PairwiseEntry shed;
  shed.a = 1;
  shed.b = 2;
  shed.shed_level = 2;
  result.entries = {clean, partial, shed};
  result.pairs_searched = 3;
  result.pairs_skipped = 0;
  return result;
}

TEST(PairwiseReportTest, ContainsStatusAndPairRows) {
  const Rendered r = MakeRun();
  const std::vector<TimeSeries> channels = {r.ds.pair.x(), r.ds.pair.y(),
                                            TimeSeries({1.0, 2.0}, "C")};
  const std::string md = RenderPairwiseReport(
      channels, r.params, MakePairwiseResult());
  EXPECT_NE(md.find("Run status: completed; 3 pairs searched, 0 skipped"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("## Pairs (3)"), std::string::npos);
  EXPECT_NE(md.find("0.900"), std::string::npos);
}

TEST(PairwiseReportTest, FlagsPartialAndShedEntries) {
  const Rendered r = MakeRun();
  const std::vector<TimeSeries> channels = {r.ds.pair.x(), r.ds.pair.y(),
                                            TimeSeries({1.0, 2.0}, "C")};
  const std::string md = RenderPairwiseReport(
      channels, r.params, MakePairwiseResult());
  EXPECT_NE(md.find("| partial |"), std::string::npos) << md;
  EXPECT_NE(md.find("| shed L2 |"), std::string::npos) << md;
  EXPECT_NE(md.find("| - |"), std::string::npos);  // the clean row
}

TEST(PairwiseReportTest, PausedRunReadsAsResumable) {
  const Rendered r = MakeRun();
  const std::vector<TimeSeries> channels = {r.ds.pair.x(), r.ds.pair.y()};
  PairwiseResult result;
  result.partial = true;
  result.stop_reason = StopReason::kPaused;
  result.pairs_searched = 0;
  result.pairs_skipped = 1;
  const std::string md = RenderPairwiseReport(channels, r.params, result);
  EXPECT_NE(md.find("**paused** — checkpointed and resumable (paused)"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("0 pairs searched, 1 skipped"), std::string::npos);
  EXPECT_NE(md.find("No pairs searched."), std::string::npos);
}

TEST(PairwiseReportTest, WritesFile) {
  const Rendered r = MakeRun();
  const std::vector<TimeSeries> channels = {r.ds.pair.x(), r.ds.pair.y(),
                                            TimeSeries({1.0, 2.0}, "C")};
  const std::string path = ::testing::TempDir() + "/tycos_pairwise.md";
  ASSERT_TRUE(
      WritePairwiseReport(path, channels, r.params, MakePairwiseResult())
          .ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("## Pairs"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteReportTest, WritesFile) {
  const Rendered r = MakeRun();
  const std::string path = ::testing::TempDir() + "/tycos_report.md";
  ASSERT_TRUE(
      WriteReport(path, r.ds.pair, r.params, r.windows, r.stats).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("## Windows"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tycos
