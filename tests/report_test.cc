#include "io/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

struct Rendered {
  SyntheticDataset ds;
  WindowSet windows;
  TycosStats stats;
  TycosParams params;
};

Rendered MakeRun() {
  Rendered r{ComposeDataset({SegmentSpec{RelationType::kLinear, 150, 4}},
                            /*gap=*/150, /*seed=*/1),
             {},
             {},
             {}};
  r.params.sigma = 0.5;
  r.params.s_min = 24;
  r.params.s_max = 300;
  r.params.td_max = 16;
  Tycos search(r.ds.pair, r.params, TycosVariant::kLMN);
  r.windows = search.Run();
  r.stats = search.stats();
  return r;
}

TEST(RenderReportTest, ContainsAllSections) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  EXPECT_NE(md.find("# TYCOS correlation report"), std::string::npos);
  EXPECT_NE(md.find("## Parameters"), std::string::npos);
  EXPECT_NE(md.find("## Windows"), std::string::npos);
  EXPECT_NE(md.find("## Search statistics"), std::string::npos);
  EXPECT_NE(md.find("| sigma | 0.5 |"), std::string::npos);
}

TEST(RenderReportTest, ListsEveryWindow) {
  const Rendered r = MakeRun();
  ASSERT_FALSE(r.windows.empty());
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats);
  for (const Window& w : r.windows.windows()) {
    std::ostringstream cell;
    cell << "[" << w.start << ", " << w.end << "]";
    EXPECT_NE(md.find(cell.str()), std::string::npos) << cell.str();
  }
}

TEST(RenderReportTest, EmptyResultIsStated) {
  const Rendered r = MakeRun();
  const std::string md =
      RenderReport(r.ds.pair, r.params, WindowSet(), r.stats);
  EXPECT_NE(md.find("No correlated windows"), std::string::npos);
}

TEST(RenderReportTest, TimeUnitsWhenSamplingKnown) {
  const Rendered r = MakeRun();
  ReportOptions opt;
  opt.seconds_per_sample = 300.0;  // 5-minute samples
  const std::string md =
      RenderReport(r.ds.pair, r.params, r.windows, r.stats, opt);
  EXPECT_NE(md.find(" when | lag |"), std::string::npos);
  // Positions land in the hour range for this dataset (5-min samples,
  // windows starting hundreds of samples in).
  EXPECT_NE(md.find(" h "), std::string::npos);
}

TEST(RenderReportTest, MentionsTheilerWindowOnlyWhenSet) {
  const Rendered r = MakeRun();
  EXPECT_EQ(RenderReport(r.ds.pair, r.params, r.windows, r.stats)
                .find("theiler"),
            std::string::npos);
  TycosParams with = r.params;
  with.theiler_window = 8;
  EXPECT_NE(RenderReport(r.ds.pair, with, r.windows, r.stats)
                .find("| theiler window | 8 |"),
            std::string::npos);
}

TEST(WriteReportTest, WritesFile) {
  const Rendered r = MakeRun();
  const std::string path = ::testing::TempDir() + "/tycos_report.md";
  ASSERT_TRUE(
      WriteReport(path, r.ds.pair, r.params, r.windows, r.stats).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("## Windows"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tycos
