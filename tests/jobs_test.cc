// Tests for the durable-job layer: checkpoint format round trips and
// corruption handling, retry/backoff supervision, the overload-shedding
// ladder, and the headline property — a run interrupted at ANY pair
// boundary and resumed, at any thread count, produces results bit-identical
// to an uninterrupted run.

#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/relations.h"
#include "jobs/admission.h"
#include "jobs/checkpoint.h"
#include "jobs/durable_pairwise.h"
#include "jobs/supervisor.h"
#include "search/fault_injector.h"
#include "search/pairwise.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using jobs::CheckpointData;
using jobs::CheckpointedPair;
using jobs::CheckpointWriter;
using jobs::DurableJobOptions;
using jobs::DurableOutcome;
using jobs::LoadCheckpoint;
using jobs::ResumePairwiseSearch;

// Three channels: A and B share a planted relation, C is independent noise.
std::vector<TimeSeries> MakeChannels(uint64_t seed) {
  const auto ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 8}}, /*gap=*/200, seed);
  Rng rng(seed + 99);
  std::vector<double> c(static_cast<size_t>(ds.pair.size()));
  for (double& v : c) v = rng.Normal();
  return {ds.pair.x(), ds.pair.y(), TimeSeries(std::move(c), "C")};
}

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 300;
  p.td_max = 16;
  return p;
}

// A throwaway checkpoint path, removed up front so a previous run's file
// never leaks into this one.
std::string TempCheckpoint(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name + ".ckpt";
  std::remove(path.c_str());
  return path;
}

CheckpointWriter::Options WriterOptions() {
  CheckpointWriter::Options o;
  o.config_hash = 111;
  o.data_fingerprint = 222;
  o.seed = 42;
  o.num_channels = 4;
  o.series_length = 500;
  return o;
}

CheckpointedPair MakePair(int a, int b, double score) {
  CheckpointedPair p;
  p.entry.a = a;
  p.entry.b = b;
  p.entry.best_score = score;
  p.entry.shed_level = 1;
  p.entry.windows.Insert(Window(10, 90, -3, score));
  p.entry.windows.Insert(Window(200, 260, 5, score / 2));
  return p;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Records requested waits instead of sleeping, so retry schedules run in
// zero wall time. Thread-safe: durable runs sleep from pool workers.
class FakeSleeper : public jobs::BackoffSleeper {
 public:
  std::optional<StopReason> Sleep(double seconds,
                                  const RunContext& ctx) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sleeps_.push_back(seconds);
    }
    if (cancel_target_ != nullptr) {
      cancel_target_->RequestCancel();
      return StopReason::kCancelled;
    }
    return ctx.ShouldStop();
  }

  std::vector<double> sleeps() {
    std::lock_guard<std::mutex> lock(mu_);
    return sleeps_;
  }
  void CancelDuringSleep(RunContext* ctx) { cancel_target_ = ctx; }

 private:
  std::mutex mu_;
  std::vector<double> sleeps_;
  RunContext* cancel_target_ = nullptr;
};

class FakeProbe : public jobs::LoadProbe {
 public:
  explicit FakeProbe(int64_t rss) : rss_(rss) {}
  jobs::LoadSample Sample() override {
    jobs::LoadSample s;
    s.rss_bytes = rss_;
    return s;
  }

 private:
  int64_t rss_;
};

void ExpectBitIdentical(const PairwiseResult& got,
                        const PairwiseResult& want) {
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (size_t i = 0; i < got.entries.size(); ++i) {
    const PairwiseEntry& g = got.entries[i];
    const PairwiseEntry& w = want.entries[i];
    EXPECT_EQ(g.a, w.a) << "entry " << i;
    EXPECT_EQ(g.b, w.b) << "entry " << i;
    EXPECT_EQ(g.best_score, w.best_score) << "entry " << i;  // bit-exact
    EXPECT_EQ(g.partial, w.partial) << "entry " << i;
    ASSERT_EQ(g.windows.size(), w.windows.size()) << "entry " << i;
    const std::vector<Window>& gw = g.windows.windows();
    const std::vector<Window>& ww = w.windows.windows();
    for (size_t j = 0; j < gw.size(); ++j) {
      EXPECT_EQ(gw[j].start, ww[j].start);
      EXPECT_EQ(gw[j].end, ww[j].end);
      EXPECT_EQ(gw[j].delay, ww[j].delay);
      EXPECT_EQ(gw[j].mi, ww[j].mi);  // bit-exact
    }
  }
  EXPECT_EQ(got.pairs_searched, want.pairs_searched);
  EXPECT_EQ(got.pairs_skipped, want.pairs_skipped);
}

// --- Checkpoint format ------------------------------------------------------

TEST(CheckpointTest, RoundTripsRecordsBitExactly) {
  const std::string path = TempCheckpoint("roundtrip");
  const CheckpointedPair p1 = MakePair(0, 1, 0.875);
  const CheckpointedPair p2 = MakePair(2, 3, 1.0 / 3.0);  // inexact double
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    ASSERT_TRUE(writer.value().Append(p1).ok());
    ASSERT_TRUE(writer.value().Append(p2).ok());
    EXPECT_EQ(writer.value().records_written(), 2);
    EXPECT_GT(writer.value().bytes_written(), 0);
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const CheckpointData& data = loaded.value();
  EXPECT_EQ(data.config_hash, 111u);
  EXPECT_EQ(data.data_fingerprint, 222u);
  EXPECT_EQ(data.seed, 42u);
  EXPECT_EQ(data.num_channels, 4u);
  EXPECT_EQ(data.series_length, 500);
  EXPECT_EQ(data.dropped_tail_bytes, 0);
  ASSERT_EQ(data.pairs.size(), 2u);
  EXPECT_EQ(data.pairs[0].entry.a, 0);
  EXPECT_EQ(data.pairs[0].entry.b, 1);
  EXPECT_EQ(data.pairs[0].entry.best_score, 0.875);  // bit-exact
  EXPECT_EQ(data.pairs[0].entry.shed_level, 1);
  EXPECT_EQ(data.pairs[1].entry.best_score, 1.0 / 3.0);
  ASSERT_EQ(data.pairs[1].entry.windows.size(), 2u);
  EXPECT_EQ(data.pairs[1].entry.windows.windows()[0].delay, -3);
  EXPECT_EQ(data.pairs[1].entry.windows.windows()[0].mi, 1.0 / 3.0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  auto loaded = LoadCheckpoint(::testing::TempDir() + "/no_such.ckpt");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, TruncatedHeaderRejected) {
  const std::string path = TempCheckpoint("trunc_header");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() / 2);
  WriteAll(path, bytes);
  EXPECT_EQ(LoadCheckpoint(path).status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, BadMagicRejected) {
  const std::string path = TempCheckpoint("bad_magic");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[0] ^= 0xFF;
  WriteAll(path, bytes);
  const Status st = LoadCheckpoint(path).status();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, VersionMismatchRejected) {
  const std::string path = TempCheckpoint("bad_version");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[8] = 0xEE;  // format version lives right after the 8-byte magic
  WriteAll(path, bytes);
  const Status st = LoadCheckpoint(path).status();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptHeaderChecksumRejected) {
  const std::string path = TempCheckpoint("bad_header_crc");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[20] ^= 0x01;  // inside config_hash
  WriteAll(path, bytes);
  const Status st = LoadCheckpoint(path).status();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, InteriorCorruptionRejectsWholeFile) {
  const std::string path = TempCheckpoint("interior");
  size_t header_size = 0;
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    header_size = ReadAll(path).size();
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 2, 0.25)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[header_size + 6] ^= 0x10;  // inside the FIRST record's payload
  WriteAll(path, bytes);
  const Status st = LoadCheckpoint(path).status();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("interior"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TornTrailingRecordIsDropped) {
  const std::string path = TempCheckpoint("torn");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 2, 0.25)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 5);  // SIGKILL mid-append of the second record
  WriteAll(path, bytes);
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().pairs.size(), 1u);
  EXPECT_EQ(loaded.value().pairs[0].entry.b, 1);
  EXPECT_GT(loaded.value().dropped_tail_bytes, 0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptLastRecordTreatedAsTornTail) {
  const std::string path = TempCheckpoint("torn_crc");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 2, 0.25)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() - 10] ^= 0x40;  // partial persist of the last record
  WriteAll(path, bytes);
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().pairs.size(), 1u);
  EXPECT_GT(loaded.value().dropped_tail_bytes, 0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, OpenCutsTornTailBeforeAppending) {
  const std::string path = TempCheckpoint("torn_append");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 2, 0.25)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 5);  // SIGKILL mid-append of the second record
  WriteAll(path, bytes);
  // Reopening for append must truncate the torn tail first; otherwise the
  // next record lands after the garbage and the tail reads back as
  // interior corruption, making the checkpoint permanently unloadable.
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    ASSERT_TRUE(writer.value().Append(MakePair(1, 2, 0.75)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().dropped_tail_bytes, 0);
  ASSERT_EQ(loaded.value().pairs.size(), 2u);
  EXPECT_EQ(loaded.value().pairs[0].entry.b, 1);
  EXPECT_EQ(loaded.value().pairs[1].entry.a, 1);
  EXPECT_EQ(loaded.value().pairs[1].entry.best_score, 0.75);
  std::remove(path.c_str());
}

TEST(CheckpointTest, OpenCutsChecksumFailingTailBeforeAppending) {
  const std::string path = TempCheckpoint("torn_crc_append");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 2, 0.25)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[bytes.size() - 10] ^= 0x40;  // partial persist of the last record
  WriteAll(path, bytes);
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    ASSERT_TRUE(writer.value().Append(MakePair(1, 2, 0.75)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().dropped_tail_bytes, 0);
  ASSERT_EQ(loaded.value().pairs.size(), 2u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, UnreadablePathIsAnErrorNotRecreated) {
  // A path whose parent component is a regular file fails to open with
  // ENOTDIR, not ENOENT. Any such non-absent failure must surface as
  // IoError — falling through to the fresh-file path would atomically
  // replace an existing checkpoint with an empty header.
  const std::string parent = TempCheckpoint("not_a_dir");
  {
    auto writer = CheckpointWriter::Open(parent, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  const std::string nested = parent + "/nested.ckpt";
  const Status open_st = CheckpointWriter::Open(nested, WriterOptions())
                             .status();
  EXPECT_EQ(open_st.code(), StatusCode::kIoError);
  EXPECT_NE(open_st.message().find("cannot open checkpoint"),
            std::string::npos);
  EXPECT_EQ(LoadCheckpoint(nested).status().code(), StatusCode::kIoError);
  std::remove(parent.c_str());
}

TEST(CheckpointTest, OpenRejectsMismatchedRun) {
  const std::string path = TempCheckpoint("mismatch");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  CheckpointWriter::Options other = WriterOptions();
  other.seed = 43;
  const Status st = CheckpointWriter::Open(path, other).status();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("different run"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, AppendAfterCloseFails) {
  const std::string path = TempCheckpoint("closed");
  auto writer = CheckpointWriter::Open(path, WriterOptions());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Close().ok());
  EXPECT_FALSE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, DuplicatePairFirstRecordWins) {
  const std::string path = TempCheckpoint("dupe");
  {
    auto writer = CheckpointWriter::Open(path, WriterOptions());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.5)).ok());
    ASSERT_TRUE(writer.value().Append(MakePair(0, 1, 0.9)).ok());
    ASSERT_TRUE(writer.value().Close().ok());
  }
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().pairs.size(), 1u);
  EXPECT_EQ(loaded.value().pairs[0].entry.best_score, 0.5);
  std::remove(path.c_str());
}

TEST(CheckpointTest, FingerprintSensitiveToDataAndNames) {
  const std::vector<TimeSeries> a = MakeChannels(1);
  const uint64_t base = jobs::FingerprintChannels(a);
  EXPECT_EQ(base, jobs::FingerprintChannels(MakeChannels(1)));
  EXPECT_NE(base, jobs::FingerprintChannels(MakeChannels(2)));

  std::vector<TimeSeries> renamed = a;
  renamed[2] = TimeSeries(std::vector<double>(a[2].values()), "renamed");
  EXPECT_NE(base, jobs::FingerprintChannels(renamed));

  std::vector<double> tweaked(a[2].values());
  tweaked[7] += 1e-9;
  std::vector<TimeSeries> changed = a;
  changed[2] = TimeSeries(std::move(tweaked), "C");
  EXPECT_NE(base, jobs::FingerprintChannels(changed));
}

TEST(CheckpointTest, ConfigHashCoversKnobsButNotThreads) {
  const TycosParams p = Params();
  const uint64_t base = jobs::HashSearchConfig(p, TycosVariant::kLMN, 42);
  EXPECT_EQ(base, jobs::HashSearchConfig(p, TycosVariant::kLMN, 42));
  EXPECT_NE(base, jobs::HashSearchConfig(p, TycosVariant::kLMN, 43));
  EXPECT_NE(base, jobs::HashSearchConfig(p, TycosVariant::kLM, 42));
  TycosParams sigma = p;
  sigma.sigma = 0.6;
  EXPECT_NE(base, jobs::HashSearchConfig(sigma, TycosVariant::kLMN, 42));
  // Results are thread-count invariant, so a checkpoint written at 8
  // threads must resume at 1: num_threads is excluded from the hash.
  TycosParams threads = p;
  threads.num_threads = 8;
  EXPECT_EQ(base, jobs::HashSearchConfig(threads, TycosVariant::kLMN, 42));
}

// --- Supervisor -------------------------------------------------------------

TEST(SupervisorTest, ClassifiesTransientVsPermanent) {
  EXPECT_EQ(jobs::ClassifyStatus(Status::Unavailable("x")),
            jobs::ErrorClass::kTransient);
  EXPECT_EQ(jobs::ClassifyStatus(Status::IoError("x")),
            jobs::ErrorClass::kTransient);
  EXPECT_EQ(jobs::ClassifyStatus(Status::Internal("x")),
            jobs::ErrorClass::kPermanent);
  EXPECT_EQ(jobs::ClassifyStatus(Status::InvalidArgument("x")),
            jobs::ErrorClass::kPermanent);
}

TEST(SupervisorTest, FirstAttemptSuccessNeverSleeps) {
  FakeSleeper sleeper;
  const jobs::SuperviseResult r =
      jobs::Supervise({}, 1, 0, RunContext::None(), &sleeper,
                      [](int) { return Status::Ok(); });
  EXPECT_TRUE(r.final_status.ok());
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.transient_failures, 0);
  EXPECT_TRUE(sleeper.sleeps().empty());
}

TEST(SupervisorTest, TransientFailuresRetryWithBackoffThenSucceed) {
  FakeSleeper sleeper;
  jobs::RetryPolicy policy;
  policy.max_attempts = 3;
  const jobs::SuperviseResult r = jobs::Supervise(
      policy, 7, 5, RunContext::None(), &sleeper, [](int n) {
        return n < 3 ? Status::Unavailable("flaky") : Status::Ok();
      });
  EXPECT_TRUE(r.final_status.ok());
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(r.transient_failures, 2);
  const std::vector<double> sleeps = sleeper.sleeps();
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], jobs::BackoffSeconds(policy, 7, 5, 1));
  EXPECT_EQ(sleeps[1], jobs::BackoffSeconds(policy, 7, 5, 2));
}

TEST(SupervisorTest, PermanentFailureNeverRetries) {
  FakeSleeper sleeper;
  int calls = 0;
  const jobs::SuperviseResult r =
      jobs::Supervise({}, 1, 0, RunContext::None(), &sleeper, [&](int) {
        ++calls;
        return Status::Internal("broken invariant");
      });
  EXPECT_FALSE(r.final_status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeper.sleeps().empty());
}

TEST(SupervisorTest, RetryBudgetBoundsTransientFailures) {
  FakeSleeper sleeper;
  jobs::RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  const jobs::SuperviseResult r = jobs::Supervise(
      policy, 1, 0, RunContext::None(), &sleeper, [&](int) {
        ++calls;
        return Status::Unavailable("always down");
      });
  EXPECT_FALSE(r.final_status.ok());
  EXPECT_EQ(r.final_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(r.transient_failures, 4);
  EXPECT_EQ(sleeper.sleeps().size(), 3u);  // no sleep after the last attempt
}

TEST(SupervisorTest, BackoffIsExponentialCappedAndJittered) {
  jobs::RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.5;
  policy.jitter_ratio = 0.25;
  double prev_base = 0.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double s = jobs::BackoffSeconds(policy, 9, 3, attempt);
    // Deterministic: the same (seed, unit, attempt) always jitters alike.
    EXPECT_EQ(s, jobs::BackoffSeconds(policy, 9, 3, attempt));
    const double base = std::min(0.1 * (1 << (attempt - 1)), 0.5);
    EXPECT_GE(s, base * 0.75);
    EXPECT_LE(s, base * 1.25);
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
  // Different units decorrelate (retry storms do not re-collide).
  EXPECT_NE(jobs::BackoffSeconds(policy, 9, 3, 1),
            jobs::BackoffSeconds(policy, 9, 4, 1));
}

TEST(SupervisorTest, CancellationPreemptsAttempts) {
  FakeSleeper sleeper;
  RunContext ctx;
  ctx.RequestCancel();
  int calls = 0;
  const jobs::SuperviseResult r =
      jobs::Supervise({}, 1, 0, ctx, &sleeper, [&](int) {
        ++calls;
        return Status::Ok();
      });
  EXPECT_EQ(calls, 0);
  ASSERT_TRUE(r.stopped.has_value());
  EXPECT_EQ(*r.stopped, StopReason::kCancelled);
}

TEST(SupervisorTest, CancellationInterruptsBackoff) {
  FakeSleeper sleeper;
  RunContext ctx;
  sleeper.CancelDuringSleep(&ctx);
  int calls = 0;
  const jobs::SuperviseResult r =
      jobs::Supervise({}, 1, 0, ctx, &sleeper, [&](int) {
        ++calls;
        return Status::Unavailable("flaky");
      });
  EXPECT_EQ(calls, 1);  // the backoff wait was interrupted, no retry
  ASSERT_TRUE(r.stopped.has_value());
  EXPECT_EQ(*r.stopped, StopReason::kCancelled);
}

// --- Fault schedule ---------------------------------------------------------

TEST(PairFaultScheduleTest, DeterministicAndHealing) {
  PairFaultSchedule::Spec spec;
  spec.transient_rate = 1.0;
  spec.heal_at_attempt = 3;
  const PairFaultSchedule sched(5, spec);
  for (int64_t pair = 0; pair < 10; ++pair) {
    EXPECT_EQ(sched.At(pair, 1), FaultClass::kTransient);
    EXPECT_EQ(sched.At(pair, 2), FaultClass::kTransient);
    EXPECT_EQ(sched.At(pair, 3), FaultClass::kNone);  // healed
    EXPECT_EQ(sched.At(pair, 1), sched.At(pair, 1));  // pure function
  }
}

TEST(PairFaultScheduleTest, PermanentFaultIgnoresAttempt) {
  PairFaultSchedule::Spec spec;
  spec.permanent_rate = 1.0;
  const PairFaultSchedule sched(5, spec);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(sched.At(0, attempt), FaultClass::kPermanent);
  }
}

TEST(PairFaultScheduleTest, StatusCodesMatchClassification) {
  EXPECT_EQ(
      PairFaultSchedule::MakeStatus(FaultClass::kTransient, 0, 1).code(),
      StatusCode::kUnavailable);
  EXPECT_EQ(
      PairFaultSchedule::MakeStatus(FaultClass::kPermanent, 0, 1).code(),
      StatusCode::kInternal);
}

// --- Admission / shedding ---------------------------------------------------

TEST(AdmissionTest, ShedLadderBands) {
  jobs::ShedPolicy policy;
  policy.rss_soft_bytes = 100;
  policy.rss_hard_bytes = 200;  // midpoint 150
  const auto level = [&](int64_t rss) {
    jobs::LoadSample s;
    s.rss_bytes = rss;
    return jobs::ShedLevel(policy, s);
  };
  EXPECT_EQ(level(0), 0);
  EXPECT_EQ(level(99), 0);
  EXPECT_EQ(level(100), 1);
  EXPECT_EQ(level(149), 1);
  EXPECT_EQ(level(150), 2);
  EXPECT_EQ(level(199), 2);
  EXPECT_EQ(level(200), 3);
}

TEST(AdmissionTest, WorstAxisWins) {
  jobs::ShedPolicy policy;
  policy.rss_soft_bytes = 100;
  policy.rss_hard_bytes = 200;
  policy.queue_soft = 4;
  policy.queue_hard = 8;
  jobs::LoadSample s;
  s.rss_bytes = 50;  // level 0
  s.queue_depth = 9;  // level 3
  EXPECT_EQ(jobs::ShedLevel(policy, s), 3);
}

TEST(AdmissionTest, DisabledPolicyNeverSheds) {
  const jobs::ShedPolicy policy;
  EXPECT_FALSE(policy.enabled());
  jobs::LoadSample s;
  s.rss_bytes = 1 << 30;
  s.queue_depth = 1000;
  EXPECT_EQ(jobs::ShedLevel(policy, s), 0);
}

TEST(AdmissionTest, DegradeParamsLadderIsDeterministic) {
  const TycosParams p = Params();
  const TycosParams l0 = jobs::DegradeParams(p, 0);
  EXPECT_EQ(l0.num_restarts, p.num_restarts);
  const TycosParams l1 = jobs::DegradeParams(p, 1);
  EXPECT_EQ(l1.num_restarts, 0);
  EXPECT_LE(l1.max_neighborhood_level, 4);
  EXPECT_EQ(l1.max_idle, p.max_idle);
  const TycosParams l2 = jobs::DegradeParams(p, 2);
  EXPECT_LE(l2.max_idle, 4);
  EXPECT_LE(l2.history_length, 3);
  EXPECT_EQ(l2.num_restarts, jobs::DegradeParams(p, 2).num_restarts);
  EXPECT_EQ(jobs::ShedBudgetScale(0), 1.0);
  EXPECT_EQ(jobs::ShedBudgetScale(1), 0.5);
  EXPECT_EQ(jobs::ShedBudgetScale(2), 0.25);
}

// --- Durable runner ---------------------------------------------------------

TEST(DurablePairwiseTest, RequiresCheckpointPath) {
  const auto channels = MakeChannels(1);
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), {});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurablePairwiseTest, FreshRunMatchesPlainPairwiseSearch) {
  const auto channels = MakeChannels(1);
  const PairwiseResult want =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN, 42);
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("fresh");
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ExpectBitIdentical(r.value().result, want);
  EXPECT_EQ(r.value().result.stop_reason, StopReason::kCompleted);
  EXPECT_FALSE(r.value().result.partial);
  EXPECT_EQ(r.value().stats.pairs_run, 3);
  EXPECT_EQ(r.value().stats.pairs_resumed, 0);
  EXPECT_EQ(r.value().stats.checkpoint_records_written, 3);
  std::remove(opts.checkpoint_path.c_str());
}

// The headline property: interrupt at EVERY pair boundary, resume at
// several thread counts, and the final result must be bit-identical to the
// uninterrupted run.
TEST(DurablePairwiseTest, ResumeIsBitIdenticalAtEveryBoundaryAndThreadCount) {
  const auto channels = MakeChannels(3);
  const int64_t total = 3;  // C(3, 2)
  const PairwiseResult want =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN, 7);
  for (int64_t boundary = 0; boundary <= total; ++boundary) {
    for (const int threads : {1, 2, 8}) {
      TycosParams p = Params();
      p.num_threads = threads;
      DurableJobOptions opts;
      opts.checkpoint_path =
          TempCheckpoint("resume_" + std::to_string(boundary) + "_" +
                         std::to_string(threads));

      // Phase 1: run exactly `boundary` pairs, then "crash" (stop).
      if (boundary > 0) {
        opts.max_pairs_this_run = boundary;
        const auto first = ResumePairwiseSearch(
            channels, p, TycosVariant::kLMN, 7, RunContext::None(), opts);
        ASSERT_TRUE(first.ok()) << first.status().message();
        EXPECT_EQ(first.value().stats.pairs_run, boundary);
        if (boundary < total) {
          EXPECT_EQ(first.value().result.stop_reason, StopReason::kPaused);
          EXPECT_TRUE(first.value().result.partial);
        }
      }

      // Phase 2: resume with no cap; must complete and match bit-for-bit.
      opts.max_pairs_this_run = 0;
      const auto resumed = ResumePairwiseSearch(
          channels, p, TycosVariant::kLMN, 7, RunContext::None(), opts);
      ASSERT_TRUE(resumed.ok()) << resumed.status().message();
      EXPECT_EQ(resumed.value().stats.pairs_resumed, boundary);
      EXPECT_EQ(resumed.value().stats.pairs_run, total - boundary);
      EXPECT_EQ(resumed.value().result.stop_reason, StopReason::kCompleted);
      ExpectBitIdentical(resumed.value().result, want);
      std::remove(opts.checkpoint_path.c_str());
    }
  }
}

TEST(DurablePairwiseTest, RejectsCheckpointFromDifferentRun) {
  const auto channels = MakeChannels(1);
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("wrong_run");
  ASSERT_TRUE(ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN, 42,
                                   RunContext::None(), opts)
                  .ok());
  // Same file, different seed: refuse rather than mix two runs' records.
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      43, RunContext::None(), opts);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, RejectsCorruptCheckpoint) {
  const auto channels = MakeChannels(1);
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("corrupt_resume");
  ASSERT_TRUE(ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN, 42,
                                   RunContext::None(), opts)
                  .ok());
  std::vector<uint8_t> bytes = ReadAll(opts.checkpoint_path);
  // Corrupt the first record's payload (the 56-byte header, then a 4-byte
  // length prefix, then payload): an interior record with records after it
  // must reject the file — never be silently dropped like a torn tail.
  bytes[62] ^= 0x08;
  WriteAll(opts.checkpoint_path, bytes);
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, TransientFaultsHealWithinRetryBound) {
  const auto channels = MakeChannels(1);
  const PairwiseResult want =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN, 42);
  PairFaultSchedule::Spec spec;
  spec.transient_rate = 1.0;   // every pair's first attempt fails...
  spec.heal_at_attempt = 2;    // ...and every later attempt succeeds
  const PairFaultSchedule faults(11, spec);
  FakeSleeper sleeper;
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("transient");
  opts.faults = &faults;
  opts.sleeper = &sleeper;
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ExpectBitIdentical(r.value().result, want);  // faults leave no trace
  EXPECT_EQ(r.value().stats.pairs_failed, 0);
  EXPECT_EQ(r.value().stats.retries, 3);  // one transient retry per pair
  EXPECT_EQ(sleeper.sleeps().size(), 3u);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, PermanentFaultIsolatesToItsPair) {
  const auto channels = MakeChannels(1);
  // permanent_rate = 1.0 would fault every pair; instead find a seed where
  // exactly pair 0 is permanently faulted by probing the schedule.
  PairFaultSchedule::Spec spec;
  spec.permanent_rate = 0.3;
  uint64_t sched_seed = 0;
  int64_t faulted = -1;
  for (uint64_t s = 1; s < 200 && faulted < 0; ++s) {
    const PairFaultSchedule probe(s, spec);
    int count = 0;
    int64_t which = -1;
    for (int64_t pair = 0; pair < 3; ++pair) {
      if (probe.At(pair, 1) == FaultClass::kPermanent) {
        ++count;
        which = pair;
      }
    }
    if (count == 1) {
      sched_seed = s;
      faulted = which;
    }
  }
  ASSERT_GE(faulted, 0) << "no seed faults exactly one pair";
  const PairFaultSchedule faults(sched_seed, spec);
  FakeSleeper sleeper;
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("permanent");
  opts.faults = &faults;
  opts.sleeper = &sleeper;
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const DurableOutcome& out = r.value();
  EXPECT_EQ(out.stats.pairs_failed, 1);
  ASSERT_EQ(out.stats.failures.size(), 1u);
  EXPECT_EQ(out.stats.failures[0].attempts, 1);  // permanent: no retry
  EXPECT_EQ(out.stats.failures[0].status.code(), StatusCode::kInternal);
  // The other two pairs completed and are in the result; the faulted one
  // is not, and the run reports itself partial.
  EXPECT_EQ(out.result.entries.size(), 2u);
  EXPECT_TRUE(out.result.partial);
  for (const PairwiseEntry& e : out.result.entries) {
    EXPECT_FALSE(e.a == out.stats.failures[0].a &&
                 e.b == out.stats.failures[0].b);
  }
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, FailedPairsAreRetriedOnResume) {
  const auto channels = MakeChannels(1);
  PairFaultSchedule::Spec spec;
  spec.permanent_rate = 1.0;  // first invocation: every pair fails
  const PairFaultSchedule all_fail(3, spec);
  FakeSleeper sleeper;
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("retry_on_resume");
  opts.faults = &all_fail;
  opts.sleeper = &sleeper;
  const auto first = ResumePairwiseSearch(
      channels, Params(), TycosVariant::kLMN, 42, RunContext::None(), opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().stats.pairs_failed, 3);
  EXPECT_TRUE(first.value().result.entries.empty());

  // Second invocation without faults: the failed pairs were never
  // checkpointed, so they all rerun — and the job completes.
  opts.faults = nullptr;
  const auto second = ResumePairwiseSearch(
      channels, Params(), TycosVariant::kLMN, 42, RunContext::None(), opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().stats.pairs_resumed, 0);
  EXPECT_EQ(second.value().stats.pairs_run, 3);
  ExpectBitIdentical(second.value().result,
                     PairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                    42));
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, ShedLevelDegradesAndIsRecorded) {
  const auto channels = MakeChannels(1);
  FakeProbe probe(150);  // between soft (100) and midpoint (→ level 1)
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("shed1");
  opts.probe = &probe;
  opts.shed.rss_soft_bytes = 100;
  opts.shed.rss_hard_bytes = 1000;
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().stats.pairs_degraded, 3);
  for (const PairwiseEntry& e : r.value().result.entries) {
    EXPECT_EQ(e.shed_level, 1);
  }
  // The recorded level survives the checkpoint round trip.
  auto loaded = LoadCheckpoint(opts.checkpoint_path);
  ASSERT_TRUE(loaded.ok());
  for (const CheckpointedPair& cp : loaded.value().pairs) {
    EXPECT_EQ(cp.entry.shed_level, 1);
  }
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, HardOverloadRefusesWorkForLater) {
  const auto channels = MakeChannels(1);
  FakeProbe probe(5000);  // far past the hard threshold → level 3
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("shed3");
  opts.probe = &probe;
  opts.shed.rss_soft_bytes = 100;
  opts.shed.rss_hard_bytes = 1000;
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().stats.pairs_refused, 3);
  EXPECT_EQ(r.value().stats.pairs_run, 0);
  EXPECT_TRUE(r.value().result.entries.empty());
  EXPECT_TRUE(r.value().result.partial);
  EXPECT_EQ(r.value().result.pairs_skipped, 3);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, WatchdogIsolatesPathologicalPairs) {
  const auto channels = MakeChannels(1);
  FakeSleeper sleeper;
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("watchdog");
  opts.sleeper = &sleeper;
  opts.pair_time_slice_s = 1e-9;  // every attempt expires immediately
  opts.retry.max_attempts = 2;
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, RunContext::None(), opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  // Every pair exceeded its slice on every attempt: all isolated as
  // failures, the global run is never starved, and nothing was
  // checkpointed (a watchdog partial is timing-dependent).
  EXPECT_EQ(r.value().stats.pairs_failed, 3);
  EXPECT_GE(r.value().stats.watchdog_timeouts, 3);
  EXPECT_EQ(r.value().stats.checkpoint_records_written, 0);
  for (const jobs::PairFailure& f : r.value().stats.failures) {
    EXPECT_EQ(f.status.code(), StatusCode::kUnavailable);
    EXPECT_NE(f.status.message().find("watchdog"), std::string::npos);
  }
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, GlobalCancellationKeepsPartialsUncheckpointed) {
  const auto channels = MakeChannels(1);
  RunContext ctx;
  ctx.RequestCancel();  // cancelled before any pair starts
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("cancelled");
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, ctx, opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().result.stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(r.value().result.partial);
  EXPECT_EQ(r.value().stats.checkpoint_records_written, 0);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, PerPairBudgetCheckpointsDeterministicStops) {
  const auto channels = MakeChannels(1);
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("budget");
  opts.pair_evaluation_budget = 50;  // exhausts on every pair
  const auto first = ResumePairwiseSearch(
      channels, Params(), TycosVariant::kLMN, 42, RunContext::None(), opts);
  ASSERT_TRUE(first.ok()) << first.status().message();
  // Budget exhaustion is deterministic, so the pairs are final and persist.
  EXPECT_EQ(first.value().stats.checkpoint_records_written, 3);
  // A resume takes all three from the checkpoint, bit-identically.
  const auto second = ResumePairwiseSearch(
      channels, Params(), TycosVariant::kLMN, 42, RunContext::None(), opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().stats.pairs_resumed, 3);
  EXPECT_EQ(second.value().stats.pairs_run, 0);
  ExpectBitIdentical(second.value().result, first.value().result);
  std::remove(opts.checkpoint_path.c_str());
}

// A crash that tears the trailing record must not poison the checkpoint:
// the resume drops the tail, truncates it away before appending, and still
// converges on the bit-identical full result.
TEST(DurablePairwiseTest, ResumesAcrossTornTailFromCrashedAppend) {
  const auto channels = MakeChannels(1);
  const PairwiseResult want =
      PairwiseSearch(channels, Params(), TycosVariant::kLMN, 42);
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("torn_resume");
  opts.max_pairs_this_run = 2;
  ASSERT_TRUE(ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN, 42,
                                   RunContext::None(), opts)
                  .ok());
  // "Crash" mid-append of the second record.
  std::vector<uint8_t> bytes = ReadAll(opts.checkpoint_path);
  bytes.resize(bytes.size() - 3);
  WriteAll(opts.checkpoint_path, bytes);

  opts.max_pairs_this_run = 0;
  const auto resumed = ResumePairwiseSearch(
      channels, Params(), TycosVariant::kLMN, 42, RunContext::None(), opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed.value().stats.pairs_resumed, 1);
  EXPECT_EQ(resumed.value().stats.pairs_run, 2);
  ExpectBitIdentical(resumed.value().result, want);
  // The file is whole again: every pair present, no torn tail left behind.
  auto loaded = LoadCheckpoint(opts.checkpoint_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().dropped_tail_bytes, 0);
  EXPECT_EQ(loaded.value().pairs.size(), 3u);
  std::remove(opts.checkpoint_path.c_str());
}

TEST(DurablePairwiseTest, GlobalContextBudgetAppliesPerPair) {
  const auto channels = MakeChannels(1);
  // The durable path must honor a budget set on the caller's RunContext the
  // same way PairwiseSearch does: per pair, against that pair's own
  // evaluation counter.
  RunContext plain_ctx = RunContext::WithEvaluationBudget(50);
  const auto plain = PairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                    42, plain_ctx);
  ASSERT_TRUE(plain.ok()) << plain.status().message();
  RunContext durable_ctx = RunContext::WithEvaluationBudget(50);
  DurableJobOptions opts;
  opts.checkpoint_path = TempCheckpoint("ctx_budget");
  const auto r = ResumePairwiseSearch(channels, Params(), TycosVariant::kLMN,
                                      42, durable_ctx, opts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ExpectBitIdentical(r.value().result, plain.value());
  std::remove(opts.checkpoint_path.c_str());
}

}  // namespace
}  // namespace tycos
