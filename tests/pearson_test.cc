#include "mi/pearson.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tycos {
namespace {

TEST(PearsonTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftAndScaleInvariant) {
  std::vector<double> xs = {1, 5, 2, 8, 3};
  std::vector<double> ys = {2, 1, 4, 3, 5};
  const double base = PearsonCorrelation(xs, ys);
  std::vector<double> ys2(ys);
  for (double& v : ys2) v = 3.0 * v + 100.0;
  EXPECT_NEAR(PearsonCorrelation(xs, ys2), base, 1e-12);
}

TEST(PearsonTest, ConstantInputGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(PearsonTest, TooFewSamplesGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PearsonTest, IndependentIsNearZero) {
  Rng rng(1);
  std::vector<double> xs(5000), ys(5000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal();
    ys[i] = rng.Normal();
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.05);
}

TEST(PearsonTest, MissesSymmetricQuadratic) {
  // The textbook PCC blind spot: y = x² on symmetric x has r ≈ 0.
  Rng rng(2);
  std::vector<double> xs(5000), ys(5000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(-1, 1);
    ys[i] = xs[i] * xs[i];
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.06);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computed: xs={1,2,3}, ys={1,3,2} -> r = 0.5.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {1, 3, 2}), 0.5, 1e-12);
}

}  // namespace
}  // namespace tycos
