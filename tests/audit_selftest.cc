// audit_selftest: end-to-end exercise of the runtime invariant audit layer.
//
// Scenario 1 drives a real multi-restart TYCOS search with every auditor
// live and requires a clean report with non-zero coverage — proving the
// auditors run on the hot paths and the shipped invariants hold.
//
// Scenario 2 deliberately breaks the incremental KSG estimator through its
// test-only drift hook and requires the incremental-vs-batch differential
// auditor to catch the corruption with a populated failure context —
// proving a real estimator bug cannot slide through silently.
//
// Exit code 0 on success, 1 on any expectation failure. Built in every
// configuration; without TYCOS_AUDIT the binary reports that auditing is
// compiled out and succeeds trivially (the ctest registration is gated on
// the audit preset, so CI never mistakes that for coverage).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "core/time_series.h"
#include "mi/incremental_ksg.h"
#include "search/tycos.h"

namespace tycos {
namespace {

int g_errors = 0;

void Expect(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  [ok] %s\n", what.c_str());
  } else {
    std::printf("  [FAIL] %s\n", what.c_str());
    ++g_errors;
  }
}

SeriesPair CoupledPair(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(n));
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double base = std::sin(static_cast<double>(i) * 0.07);
    x[static_cast<size_t>(i)] = base + 0.4 * rng.Normal();
    // Coupled to x in the middle third only, so the search has structure
    // to find and plenty of incremental slides to audit.
    const bool coupled = i > n / 3 && i < 2 * n / 3;
    y[static_cast<size_t>(i)] =
        (coupled ? base : 0.0) + 0.4 * rng.Normal();
  }
  return SeriesPair(TimeSeries(std::move(x), "x"),
                    TimeSeries(std::move(y), "y"));
}

// Scenario 1: a clean multi-restart search must produce non-zero audit
// coverage across the wired subsystems and zero violations.
void RunCleanSearchScenario() {
  std::printf("scenario 1: clean multi-restart search under audit\n");
  audit::Registry::Instance().ResetAllForTest();

  const SeriesPair pair = CoupledPair(900, 7);
  TycosParams params;
  params.s_min = 40;
  params.s_max = 200;
  params.td_max = 10;
  params.sigma = 0.15;
  params.num_restarts = 4;
  params.num_threads = 2;

  Result<std::unique_ptr<Tycos>> search =
      Tycos::Create(pair, params, TycosVariant::kLMN, /*seed=*/11);
  Expect(search.ok(), "search constructs");
  if (!search.ok()) return;

  Result<SearchOutcome> outcome = (*search)->Run(RunContext::None());
  Expect(outcome.ok(), "search completes");

  const TycosStats& stats = (*search)->stats();
  const audit::AuditReport report = audit::Snapshot();
  std::printf("%s", report.ToString().c_str());

  Expect(stats.audit_checks > 0, "stats().audit_checks > 0");
  Expect(stats.audit_failures == 0, "stats().audit_failures == 0");
  Expect(report.checks > 0, "registry saw checks");
  Expect(report.ok(), "registry reports no violations");

  auto ran = [&report](const std::string& name) {
    for (const audit::AuditorStats& a : report.auditors) {
      if (a.name == name && a.checks > 0) return true;
    }
    return false;
  };
  Expect(ran("incremental_vs_batch"), "differential KSG auditor ran");
  Expect(ran("knn_backend_agreement"), "kNN backend agreement auditor ran");
  Expect(ran("thread_pool_prefix_claim"), "thread-pool prefix auditor ran");
  Expect(ran("rng_stream_derivation"), "RNG stream auditor ran");
  // The WindowSet auditor only fires when the search accepts windows; with
  // the coupled middle third it always should.
  Expect(ran("window_set_non_nesting"), "WindowSet non-nesting auditor ran");
}

// Scenario 2: corrupt the incremental estimator's internal state and
// require the differential auditor to flag it.
void RunBrokenEstimatorScenario() {
  std::printf("scenario 2: deliberately broken incremental estimator\n");
  audit::Registry::Instance().ResetAllForTest();

  const SeriesPair pair = CoupledPair(600, 21);
  IncrementalKsg inc(pair, /*k=*/4);
  inc.SetWindow(Window(100, 220, 0));

  // Healthy slides first: the auditor samples some of them and must stay
  // clean.
  for (int64_t s = 101; s <= 180; ++s) {
    inc.SetWindow(Window(s, s + 120, 0));
  }
  audit::Auditor* diff = audit::Get("incremental_vs_batch");
  Expect(diff->checks() > 0, "differential auditor sampled healthy slides");
  Expect(diff->failures() == 0, "healthy estimator audits clean");

  // Break the estimator the way a bookkeeping bug would (a lost ψ-sum
  // contribution), then keep sliding; sampled differentials must now fail.
  inc.InjectStateDriftForTest(0.5);
  for (int64_t s = 181; s <= 320; ++s) {
    inc.SetWindow(Window(s, s + 120, 0));
  }
  Expect(diff->failures() > 0, "drifted estimator is caught");
  Expect(!diff->first_failure().empty(), "failure context is populated");

  const audit::AuditReport report = audit::Snapshot();
  Expect(!report.ok(), "AuditReport is non-empty and failing");
  std::printf("%s", report.ToString().c_str());

  audit::Registry::Instance().ResetAllForTest();
}

}  // namespace
}  // namespace tycos

int main() {
  if (TYCOS_AUDIT_ENABLED == 0) {
    std::printf(
        "audit_selftest: TYCOS_AUDIT is OFF — auditors are compiled out; "
        "nothing to verify.\nConfigure with `cmake --preset audit` to run "
        "the selftest meaningfully.\n");
    return 0;
  }
  tycos::RunCleanSearchScenario();
  tycos::RunBrokenEstimatorScenario();
  if (tycos::g_errors > 0) {
    std::printf("audit_selftest: %d FAILURES\n", tycos::g_errors);
    return 1;
  }
  std::printf("audit_selftest: all expectations met\n");
  return 0;
}
