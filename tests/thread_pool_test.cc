#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace tycos {
namespace {

TEST(ThreadPoolTest, ResolveThreadCountPassesExplicitValues) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(8), 8);
}

TEST(ThreadPoolTest, ResolveThreadCountAutoIsAtLeastOne) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.num_workers(), 3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] {
        if (done.fetch_add(1) + 1 == 50) cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30),
                [&] { return done.load() == 50; });
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  for (int workers : {0, 1, 3, 7}) {
    const int64_t n = 200;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ThreadPool pool(workers);
    const ThreadPool::ForStatus fs = pool.ParallelFor(
        n, RunContext::None(), [&](int64_t i) -> std::optional<StopReason> {
          hits[static_cast<size_t>(i)].fetch_add(1);
          return std::nullopt;
        });
    EXPECT_EQ(fs.claimed, n) << "workers=" << workers;
    EXPECT_FALSE(fs.stop.has_value());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  const ThreadPool::ForStatus fs = pool.ParallelFor(
      0, RunContext::None(), [&](int64_t) -> std::optional<StopReason> {
        ++calls;
        return std::nullopt;
      });
  EXPECT_EQ(fs.claimed, 0);
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(fs.stop.has_value());
}

TEST(ThreadPoolTest, ParallelForHonorsPreCancelledContext) {
  RunContext ctx;
  ctx.RequestCancel();
  ThreadPool pool(2);
  int calls = 0;
  const ThreadPool::ForStatus fs =
      pool.ParallelFor(100, ctx, [&](int64_t) -> std::optional<StopReason> {
        ++calls;
        return std::nullopt;
      });
  EXPECT_EQ(fs.claimed, 0);
  EXPECT_EQ(calls, 0);
  ASSERT_TRUE(fs.stop.has_value());
  EXPECT_EQ(*fs.stop, StopReason::kCancelled);
}

TEST(ThreadPoolTest, BodyReportedStopHaltsFurtherClaims) {
  // Sequential (0 workers): index 3 reports a stop, so exactly 4 indices run.
  ThreadPool pool(0);
  std::vector<int> ran;
  const ThreadPool::ForStatus fs = pool.ParallelFor(
      100, RunContext::None(), [&](int64_t i) -> std::optional<StopReason> {
        ran.push_back(static_cast<int>(i));
        if (i == 3) return StopReason::kDeadlineExceeded;
        return std::nullopt;
      });
  EXPECT_EQ(fs.claimed, 4);
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(fs.stop.has_value());
  EXPECT_EQ(*fs.stop, StopReason::kDeadlineExceeded);
}

TEST(ThreadPoolTest, ClaimedIndicesFormAPrefixUnderConcurrentStop) {
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ThreadPool pool(4);
    const ThreadPool::ForStatus fs = pool.ParallelFor(
        n, RunContext::None(), [&](int64_t i) -> std::optional<StopReason> {
          hits[static_cast<size_t>(i)].fetch_add(1);
          if (i == 37) return StopReason::kCancelled;
          return std::nullopt;
        });
    // Every index below `claimed` ran exactly once; none at or above it ran.
    ASSERT_GE(fs.claimed, 38);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i < fs.claimed ? 1 : 0)
          << "trial=" << trial << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, MidLoopCancellationStopsClaims) {
  RunContext ctx;
  std::atomic<int64_t> started{0};
  ThreadPool pool(2);
  const ThreadPool::ForStatus fs =
      pool.ParallelFor(100000, ctx, [&](int64_t) -> std::optional<StopReason> {
        if (started.fetch_add(1) == 10) ctx.RequestCancel();
        return std::nullopt;
      });
  EXPECT_LT(fs.claimed, 100000);
  EXPECT_EQ(started.load(), fs.claimed);
  ASSERT_TRUE(fs.stop.has_value());
  EXPECT_EQ(*fs.stop, StopReason::kCancelled);
}

}  // namespace
}  // namespace tycos
