// Property-based suites: invariants that must hold across randomized
// inputs, beyond the example-based unit tests.

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/window_set.h"
#include "core/window_similarity.h"
#include "datagen/relations.h"
#include "mi/incremental_ksg.h"
#include "mi/ksg.h"
#include "search/brute_force_search.h"

namespace tycos {
namespace {

// ---------------------------------------------------------------------------
// KSG estimator invariances.
// ---------------------------------------------------------------------------

class KsgInvarianceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void MakeData(std::vector<double>* xs, std::vector<double>* ys) {
    Rng rng(GetParam());
    xs->resize(400);
    ys->resize(400);
    for (size_t i = 0; i < xs->size(); ++i) {
      (*xs)[i] = rng.Normal();
      (*ys)[i] = std::tanh((*xs)[i]) + 0.3 * rng.Normal();
    }
  }
};

TEST_P(KsgInvarianceTest, SymmetricInArguments) {
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  EXPECT_NEAR(KsgMi(xs, ys), KsgMi(ys, xs), 1e-9);
}

TEST_P(KsgInvarianceTest, InvariantUnderSamplePermutation) {
  // MI is a property of the joint distribution, not the sample order —
  // permuting the *pairs* must not change the estimate.
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  const double base = KsgMi(xs, ys);
  std::vector<size_t> perm(xs.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(GetParam() + 1);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  std::vector<double> px(xs.size()), py(ys.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    px[i] = xs[perm[i]];
    py[i] = ys[perm[i]];
  }
  EXPECT_NEAR(KsgMi(px, py), base, 1e-9);
}

TEST_P(KsgInvarianceTest, InvariantUnderUniformAffineRescaling) {
  // Scaling both marginals by the same magnitude rescales every L∞
  // distance uniformly, so neighbourhoods and counts are unchanged. (Note
  // this is deliberately *uniform*: rescaling the dimensions by different
  // factors changes the finite-sample KSG estimate slightly — the
  // well-known reason KSG inputs are usually pre-normalized.)
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  const double base = KsgMi(xs, ys);
  std::vector<double> sx(xs), sy(ys);
  for (double& v : sx) v = 3.5 * v - 7.0;
  for (double& v : sy) v = -3.5 * v + 2.0;  // same magnitude, sign flipped
  // Not bit-exact: the marginal-count boundary (center ± d) rounds
  // differently after rescaling, flipping a handful of defining-neighbour
  // inclusions; each flip moves the estimate by O(1/(k·m)).
  EXPECT_NEAR(KsgMi(sx, sy), base, 5e-3);
}

TEST_P(KsgInvarianceTest, ShufflingOnePartnerDestroysMi) {
  // Breaking the pairing must send the estimate to ~0 (a permutation-test
  // null that every dependence measure must satisfy).
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  Rng rng(GetParam() + 2);
  std::vector<double> shuffled = ys;
  std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
  EXPECT_GT(KsgMi(xs, ys), 0.4);
  EXPECT_NEAR(KsgMi(xs, shuffled), 0.0, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsgInvarianceTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Hostile estimator inputs: degenerate-but-defined behavior. The KSG
// formula is undefined on constant marginals and tiny samples; the library
// contract is MI = 0 (counted in diagnostics), never a degenerate kNN
// query, a NaN, or a crash.
// ---------------------------------------------------------------------------

enum class HostileKind {
  kConstant,      // every sample identical
  kAllTies,       // two discrete values, every distance ties
  kTwoSamples,    // m = 2 < k + 2
  kNearConstant,  // spread below double epsilon granularity
  kHugeMagnitude  // |values| ~ 1e100
};

std::vector<double> MakeHostile(HostileKind kind, uint64_t seed, size_t m) {
  Rng rng(seed);
  std::vector<double> v(kind == HostileKind::kTwoSamples ? 2 : m);
  for (size_t i = 0; i < v.size(); ++i) {
    switch (kind) {
      case HostileKind::kConstant:
        v[i] = 42.0;
        break;
      case HostileKind::kAllTies:
        v[i] = rng.UniformInt(0, 1) ? 1.0 : 0.0;
        break;
      case HostileKind::kTwoSamples:
        v[i] = rng.Normal();
        break;
      case HostileKind::kNearConstant:
        v[i] = 1.0 + 1e-13 * rng.Normal();
        break;
      case HostileKind::kHugeMagnitude:
        v[i] = 1e100 * rng.Normal();
        break;
    }
  }
  return v;
}

class HostileInputTest
    : public ::testing::TestWithParam<std::tuple<HostileKind, uint64_t>> {};

TEST_P(HostileInputTest, KsgAndNormalizedMiStayDefined) {
  const auto [kind, seed] = GetParam();
  const std::vector<double> xs = MakeHostile(kind, seed, 200);
  const std::vector<double> ys = MakeHostile(kind, seed + 1000, 200);

  KsgDiagnostics diag;
  KsgOptions options;
  options.diagnostics = &diag;
  const double raw = KsgMi(xs, ys, options);
  EXPECT_TRUE(std::isfinite(raw));
  const double normalized = NormalizedMi(xs, ys);
  EXPECT_TRUE(std::isfinite(normalized));
  EXPECT_GE(normalized, 0.0);
  EXPECT_LE(normalized, 1.0);

  if (kind == HostileKind::kConstant) {
    EXPECT_EQ(raw, 0.0);
    EXPECT_GT(diag.degenerate_windows, 0);
  }
  if (kind == HostileKind::kTwoSamples) {
    EXPECT_EQ(raw, 0.0);
  }
}

TEST_P(HostileInputTest, HostileOnOneSideOnlyIsStillDefined) {
  const auto [kind, seed] = GetParam();
  const std::vector<double> xs = MakeHostile(kind, seed, 200);
  Rng rng(seed + 7);
  std::vector<double> ys(xs.size());
  for (double& v : ys) v = rng.Normal();
  const double raw = KsgMi(xs, ys);
  EXPECT_TRUE(std::isfinite(raw));
  if (kind == HostileKind::kConstant) {
    EXPECT_EQ(raw, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, HostileInputTest,
    ::testing::Combine(::testing::Values(HostileKind::kConstant,
                                         HostileKind::kAllTies,
                                         HostileKind::kTwoSamples,
                                         HostileKind::kNearConstant,
                                         HostileKind::kHugeMagnitude),
                       ::testing::Values(101, 202, 303)));

TEST(HostileInputTest, NonFiniteSamplesScoreZeroWithDiagnostics) {
  Rng rng(9);
  std::vector<double> xs(100), ys(100);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal();
    ys[i] = xs[i] + 0.1 * rng.Normal();
  }
  xs[50] = std::numeric_limits<double>::quiet_NaN();
  KsgDiagnostics diag;
  KsgOptions options;
  options.diagnostics = &diag;
  EXPECT_EQ(KsgMi(xs, ys, options), 0.0);
  EXPECT_GT(diag.non_finite_inputs, 0);
}

TEST(HostileInputTest, IncrementalSkipsDegenerateWindowsAndStaysExact) {
  // A constant patch sits in the middle of an otherwise healthy pair. The
  // incremental estimator must (a) score windows inside the patch as 0
  // without touching its state, and (b) keep agreeing with the batch
  // estimator on every healthy window visited afterwards — proving the
  // degenerate skip cannot corrupt the incremental structures.
  Rng rng(10);
  const int64_t n = 400;
  std::vector<double> xs(static_cast<size_t>(n)), ys(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Normal();
    ys[i] = 0.8 * xs[i] + 0.2 * rng.Normal();
  }
  for (int64_t i = 150; i < 250; ++i) xs[static_cast<size_t>(i)] = 3.0;
  const SeriesPair pair{TimeSeries(xs, "x"), TimeSeries(ys, "y")};

  const int k = 4;
  IncrementalKsg inc(pair, k);
  KsgOptions options;
  options.k = k;
  int64_t degenerate_seen = 0;
  // A slide crossing healthy → constant → healthy territory.
  for (int64_t start = 100; start + 40 <= n; start += 5) {
    const Window w(start, start + 39, 0);
    const double got = inc.SetWindow(w);
    const double want = KsgMi(pair, w, options);
    ASSERT_NEAR(got, want, 1e-9) << w.ToString();
    if (start >= 150 && start + 39 < 250) {
      ASSERT_EQ(got, 0.0) << w.ToString();
      ++degenerate_seen;
    }
  }
  EXPECT_GT(degenerate_seen, 0);
  EXPECT_EQ(inc.stats().degenerate_windows, degenerate_seen);
}

TEST(HostileInputTest, IncrementalTwoSampleWindowIsZero) {
  const SeriesPair pair{TimeSeries({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}),
                        TimeSeries({2.0, 4.0, 1.0, 3.0, 8.0, 5.0, 7.0, 6.0})};
  IncrementalKsg inc(pair, /*k=*/4);
  EXPECT_EQ(inc.SetWindow(Window(0, 1, 0)), 0.0);  // m = 2 < k + 2
}

// ---------------------------------------------------------------------------
// Window algebra properties.
// ---------------------------------------------------------------------------

TEST(WindowAlgebraPropertyTest, ConcatenationSizeIsAdditive) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t s = rng.UniformInt(0, 1000);
    const int64_t mid = s + rng.UniformInt(0, 100);
    const int64_t e = mid + 1 + rng.UniformInt(0, 100);
    const int64_t tau = rng.UniformInt(-20, 20);
    const Window a(s, mid, tau), b(mid + 1, e, tau);
    ASSERT_TRUE(AreConsecutive(a, b));
    const Window c = Concatenate(a, b);
    ASSERT_EQ(c.size(), a.size() + b.size());
    ASSERT_TRUE(Contains(c, a));
    ASSERT_TRUE(Contains(c, b));
  }
}

TEST(WindowAlgebraPropertyTest, ContainmentIsPartialOrder) {
  Rng rng(2);
  std::vector<Window> ws;
  for (int i = 0; i < 40; ++i) {
    const int64_t s = rng.UniformInt(0, 50);
    ws.push_back(Window(s, s + rng.UniformInt(0, 50), rng.UniformInt(-2, 2)));
  }
  for (const Window& a : ws) {
    ASSERT_TRUE(Contains(a, a));  // reflexive
    for (const Window& b : ws) {
      if (Contains(a, b) && Contains(b, a)) {
        ASSERT_TRUE(a.SameSpan(b));  // antisymmetric
      }
      for (const Window& c : ws) {
        if (Contains(a, b) && Contains(b, c)) {
          ASSERT_TRUE(Contains(a, c));  // transitive
        }
      }
    }
  }
}

TEST(WindowAlgebraPropertyTest, JaccardIsBoundedAndSymmetric) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t s1 = rng.UniformInt(0, 200);
    const Window a(s1, s1 + rng.UniformInt(0, 80), 0);
    const int64_t s2 = rng.UniformInt(0, 200);
    const Window b(s2, s2 + rng.UniformInt(0, 80), 0);
    const double j = IndexJaccard(a, b);
    ASSERT_GE(j, 0.0);
    ASSERT_LE(j, 1.0);
    ASSERT_DOUBLE_EQ(j, IndexJaccard(b, a));
    ASSERT_LE(j, OverlapCoefficient(a, b) + 1e-12);  // Jaccard <= overlap
  }
}

// ---------------------------------------------------------------------------
// WindowSet stress: invariants under randomized insertion.
// ---------------------------------------------------------------------------

TEST(WindowSetPropertyTest, RandomizedNonNestingInvariant) {
  Rng rng(4);
  WindowSet set;
  std::vector<Window> offered;
  for (int i = 0; i < 400; ++i) {
    const int64_t s = rng.UniformInt(0, 300);
    Window w(s, s + rng.UniformInt(0, 60), rng.UniformInt(-3, 3));
    w.mi = rng.Uniform(0.0, 1.0);
    offered.push_back(w);
    set.Insert(w);
  }
  const auto& ws = set.windows();
  // (a) Non-nesting invariant.
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = 0; j < ws.size(); ++j) {
      if (i == j) continue;
      ASSERT_FALSE(Contains(ws[i], ws[j]));
    }
  }
  // (b) Every member is one of the offered windows, MI included.
  for (const Window& in : ws) {
    bool known = false;
    for (const Window& o : offered) {
      known |= in.SameSpan(o) && in.mi == o.mi;
    }
    ASSERT_TRUE(known) << in.ToString();
  }
  // (c) The strongest offered window can never be evicted (eviction
  // requires strictly higher MI), so it must be a member.
  const Window* best = &offered[0];
  for (const Window& o : offered) {
    if (o.mi > best->mi) best = &o;
  }
  bool present = false;
  for (const Window& in : ws) present |= in.SameSpan(*best);
  ASSERT_TRUE(present) << best->ToString();
}

TEST(MergeOverlappingPropertyTest, IdempotentAndCoveragePreserving) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Window> ws;
    for (int i = 0; i < 30; ++i) {
      const int64_t s = rng.UniformInt(0, 150);
      ws.push_back(Window(s, s + rng.UniformInt(0, 40),
                          rng.UniformInt(0, 1)));
    }
    const auto merged = MergeOverlapping(ws);
    const auto twice = MergeOverlapping(merged);
    ASSERT_EQ(merged.size(), twice.size());
    // Index coverage per delay is preserved.
    auto covered = [](const std::vector<Window>& v, int64_t idx,
                      int64_t tau) {
      for (const Window& w : v) {
        if (w.delay == tau && w.start <= idx && idx <= w.end) return true;
      }
      return false;
    };
    for (int64_t idx = 0; idx < 200; idx += 7) {
      for (int64_t tau = 0; tau <= 1; ++tau) {
        ASSERT_EQ(covered(ws, idx, tau), covered(merged, idx, tau))
            << "idx=" << idx << " tau=" << tau;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Brute force: the incremental evaluator path at large s_max must agree
// with stateless batch evaluation window for window.
// ---------------------------------------------------------------------------

TEST(BruteForcePropertyTest, LargeWindowIncrementalAgreesWithBatch) {
  const datagen::SyntheticDataset ds = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kLinear, 150, 1}},
      /*gap=*/60, /*seed=*/6);
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 100;  // above the hybrid evaluator's stateless threshold
  p.s_max = 160;
  p.td_max = 2;
  const BruteForceResult inc =
      BruteForceSearch(ds.pair, p, /*use_incremental_mi=*/true).Run();
  const BruteForceResult batch =
      BruteForceSearch(ds.pair, p, /*use_incremental_mi=*/false).Run();
  ASSERT_EQ(inc.raw.size(), batch.raw.size());
  for (size_t i = 0; i < inc.raw.size(); ++i) {
    ASSERT_TRUE(inc.raw[i].SameSpan(batch.raw[i]));
    ASSERT_NEAR(inc.raw[i].mi, batch.raw[i].mi, 1e-9);
  }
  ASSERT_EQ(inc.windows_evaluated, batch.windows_evaluated);
}

}  // namespace
}  // namespace tycos
