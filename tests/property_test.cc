// Property-based suites: invariants that must hold across randomized
// inputs, beyond the example-based unit tests.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/window_set.h"
#include "core/window_similarity.h"
#include "datagen/relations.h"
#include "mi/ksg.h"
#include "search/brute_force_search.h"

namespace tycos {
namespace {

// ---------------------------------------------------------------------------
// KSG estimator invariances.
// ---------------------------------------------------------------------------

class KsgInvarianceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void MakeData(std::vector<double>* xs, std::vector<double>* ys) {
    Rng rng(GetParam());
    xs->resize(400);
    ys->resize(400);
    for (size_t i = 0; i < xs->size(); ++i) {
      (*xs)[i] = rng.Normal();
      (*ys)[i] = std::tanh((*xs)[i]) + 0.3 * rng.Normal();
    }
  }
};

TEST_P(KsgInvarianceTest, SymmetricInArguments) {
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  EXPECT_NEAR(KsgMi(xs, ys), KsgMi(ys, xs), 1e-9);
}

TEST_P(KsgInvarianceTest, InvariantUnderSamplePermutation) {
  // MI is a property of the joint distribution, not the sample order —
  // permuting the *pairs* must not change the estimate.
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  const double base = KsgMi(xs, ys);
  std::vector<size_t> perm(xs.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(GetParam() + 1);
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  std::vector<double> px(xs.size()), py(ys.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    px[i] = xs[perm[i]];
    py[i] = ys[perm[i]];
  }
  EXPECT_NEAR(KsgMi(px, py), base, 1e-9);
}

TEST_P(KsgInvarianceTest, InvariantUnderUniformAffineRescaling) {
  // Scaling both marginals by the same magnitude rescales every L∞
  // distance uniformly, so neighbourhoods and counts are unchanged. (Note
  // this is deliberately *uniform*: rescaling the dimensions by different
  // factors changes the finite-sample KSG estimate slightly — the
  // well-known reason KSG inputs are usually pre-normalized.)
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  const double base = KsgMi(xs, ys);
  std::vector<double> sx(xs), sy(ys);
  for (double& v : sx) v = 3.5 * v - 7.0;
  for (double& v : sy) v = -3.5 * v + 2.0;  // same magnitude, sign flipped
  // Not bit-exact: the marginal-count boundary (center ± d) rounds
  // differently after rescaling, flipping a handful of defining-neighbour
  // inclusions; each flip moves the estimate by O(1/(k·m)).
  EXPECT_NEAR(KsgMi(sx, sy), base, 5e-3);
}

TEST_P(KsgInvarianceTest, ShufflingOnePartnerDestroysMi) {
  // Breaking the pairing must send the estimate to ~0 (a permutation-test
  // null that every dependence measure must satisfy).
  std::vector<double> xs, ys;
  MakeData(&xs, &ys);
  Rng rng(GetParam() + 2);
  std::vector<double> shuffled = ys;
  std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
  EXPECT_GT(KsgMi(xs, ys), 0.4);
  EXPECT_NEAR(KsgMi(xs, shuffled), 0.0, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsgInvarianceTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Window algebra properties.
// ---------------------------------------------------------------------------

TEST(WindowAlgebraPropertyTest, ConcatenationSizeIsAdditive) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t s = rng.UniformInt(0, 1000);
    const int64_t mid = s + rng.UniformInt(0, 100);
    const int64_t e = mid + 1 + rng.UniformInt(0, 100);
    const int64_t tau = rng.UniformInt(-20, 20);
    const Window a(s, mid, tau), b(mid + 1, e, tau);
    ASSERT_TRUE(AreConsecutive(a, b));
    const Window c = Concatenate(a, b);
    ASSERT_EQ(c.size(), a.size() + b.size());
    ASSERT_TRUE(Contains(c, a));
    ASSERT_TRUE(Contains(c, b));
  }
}

TEST(WindowAlgebraPropertyTest, ContainmentIsPartialOrder) {
  Rng rng(2);
  std::vector<Window> ws;
  for (int i = 0; i < 40; ++i) {
    const int64_t s = rng.UniformInt(0, 50);
    ws.push_back(Window(s, s + rng.UniformInt(0, 50), rng.UniformInt(-2, 2)));
  }
  for (const Window& a : ws) {
    ASSERT_TRUE(Contains(a, a));  // reflexive
    for (const Window& b : ws) {
      if (Contains(a, b) && Contains(b, a)) {
        ASSERT_TRUE(a.SameSpan(b));  // antisymmetric
      }
      for (const Window& c : ws) {
        if (Contains(a, b) && Contains(b, c)) {
          ASSERT_TRUE(Contains(a, c));  // transitive
        }
      }
    }
  }
}

TEST(WindowAlgebraPropertyTest, JaccardIsBoundedAndSymmetric) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t s1 = rng.UniformInt(0, 200);
    const Window a(s1, s1 + rng.UniformInt(0, 80), 0);
    const int64_t s2 = rng.UniformInt(0, 200);
    const Window b(s2, s2 + rng.UniformInt(0, 80), 0);
    const double j = IndexJaccard(a, b);
    ASSERT_GE(j, 0.0);
    ASSERT_LE(j, 1.0);
    ASSERT_DOUBLE_EQ(j, IndexJaccard(b, a));
    ASSERT_LE(j, OverlapCoefficient(a, b) + 1e-12);  // Jaccard <= overlap
  }
}

// ---------------------------------------------------------------------------
// WindowSet stress: invariants under randomized insertion.
// ---------------------------------------------------------------------------

TEST(WindowSetPropertyTest, RandomizedNonNestingInvariant) {
  Rng rng(4);
  WindowSet set;
  std::vector<Window> offered;
  for (int i = 0; i < 400; ++i) {
    const int64_t s = rng.UniformInt(0, 300);
    Window w(s, s + rng.UniformInt(0, 60), rng.UniformInt(-3, 3));
    w.mi = rng.Uniform(0.0, 1.0);
    offered.push_back(w);
    set.Insert(w);
  }
  const auto& ws = set.windows();
  // (a) Non-nesting invariant.
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = 0; j < ws.size(); ++j) {
      if (i == j) continue;
      ASSERT_FALSE(Contains(ws[i], ws[j]));
    }
  }
  // (b) Every member is one of the offered windows, MI included.
  for (const Window& in : ws) {
    bool known = false;
    for (const Window& o : offered) {
      known |= in.SameSpan(o) && in.mi == o.mi;
    }
    ASSERT_TRUE(known) << in.ToString();
  }
  // (c) The strongest offered window can never be evicted (eviction
  // requires strictly higher MI), so it must be a member.
  const Window* best = &offered[0];
  for (const Window& o : offered) {
    if (o.mi > best->mi) best = &o;
  }
  bool present = false;
  for (const Window& in : ws) present |= in.SameSpan(*best);
  ASSERT_TRUE(present) << best->ToString();
}

TEST(MergeOverlappingPropertyTest, IdempotentAndCoveragePreserving) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Window> ws;
    for (int i = 0; i < 30; ++i) {
      const int64_t s = rng.UniformInt(0, 150);
      ws.push_back(Window(s, s + rng.UniformInt(0, 40),
                          rng.UniformInt(0, 1)));
    }
    const auto merged = MergeOverlapping(ws);
    const auto twice = MergeOverlapping(merged);
    ASSERT_EQ(merged.size(), twice.size());
    // Index coverage per delay is preserved.
    auto covered = [](const std::vector<Window>& v, int64_t idx,
                      int64_t tau) {
      for (const Window& w : v) {
        if (w.delay == tau && w.start <= idx && idx <= w.end) return true;
      }
      return false;
    };
    for (int64_t idx = 0; idx < 200; idx += 7) {
      for (int64_t tau = 0; tau <= 1; ++tau) {
        ASSERT_EQ(covered(ws, idx, tau), covered(merged, idx, tau))
            << "idx=" << idx << " tau=" << tau;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Brute force: the incremental evaluator path at large s_max must agree
// with stateless batch evaluation window for window.
// ---------------------------------------------------------------------------

TEST(BruteForcePropertyTest, LargeWindowIncrementalAgreesWithBatch) {
  const datagen::SyntheticDataset ds = datagen::ComposeDataset(
      {datagen::SegmentSpec{datagen::RelationType::kLinear, 150, 1}},
      /*gap=*/60, /*seed=*/6);
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 100;  // above the hybrid evaluator's stateless threshold
  p.s_max = 160;
  p.td_max = 2;
  const BruteForceResult inc =
      BruteForceSearch(ds.pair, p, /*use_incremental_mi=*/true).Run();
  const BruteForceResult batch =
      BruteForceSearch(ds.pair, p, /*use_incremental_mi=*/false).Run();
  ASSERT_EQ(inc.raw.size(), batch.raw.size());
  for (size_t i = 0; i < inc.raw.size(); ++i) {
    ASSERT_TRUE(inc.raw[i].SameSpan(batch.raw[i]));
    ASSERT_NEAR(inc.raw[i].mi, batch.raw[i].mi, 1e-9);
  }
  ASSERT_EQ(inc.windows_evaluated, batch.windows_evaluated);
}

}  // namespace
}  // namespace tycos
