#include "core/window_set.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(WindowSetTest, InsertDisjointWindows) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 10, 0, 0.5)));
  EXPECT_TRUE(set.Insert(Window(20, 30, 0, 0.6)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, RejectsExactDuplicate) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 10, 0, 0.5)));
  EXPECT_FALSE(set.Insert(Window(0, 10, 0, 0.9)));
  EXPECT_EQ(set.size(), 1u);
}

TEST(WindowSetTest, NestedLowerMiIsRejected) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.8)));
  EXPECT_FALSE(set.Insert(Window(5, 15, 0, 0.5)));  // nested, weaker
  EXPECT_EQ(set.size(), 1u);
}

TEST(WindowSetTest, NestedHigherMiEvictsIncumbent) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.4)));
  EXPECT_TRUE(set.Insert(Window(5, 15, 0, 0.9)));  // nested, stronger
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.windows()[0].start, 5);
}

TEST(WindowSetTest, DifferentDelaysAreNotNested) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.8)));
  EXPECT_TRUE(set.Insert(Window(5, 15, 3, 0.2)));  // same span but τ differs
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, OverlappingButNotNestedCoexist) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 15, 0, 0.5)));
  EXPECT_TRUE(set.Insert(Window(10, 25, 0, 0.5)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, InsertEvictsMultipleNestedIncumbents) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(2, 6, 0, 0.3)));
  EXPECT_TRUE(set.Insert(Window(10, 14, 0, 0.3)));
  // A big strong window containing both incumbents evicts them.
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.9)));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.windows()[0].end, 20);
}

TEST(WindowSetTest, NonNestingInvariantHolds) {
  WindowSet set;
  set.Insert(Window(0, 30, 0, 0.4));
  set.Insert(Window(5, 10, 0, 0.7));
  set.Insert(Window(12, 20, 0, 0.2));
  set.Insert(Window(3, 25, 0, 0.5));
  const auto& ws = set.windows();
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = 0; j < ws.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Contains(ws[i], ws[j]))
          << ws[i].ToString() << " contains " << ws[j].ToString();
    }
  }
}

TEST(WindowSetTest, SortedOrdersByStart) {
  WindowSet set;
  set.Insert(Window(20, 30, 0, 0.5));
  set.Insert(Window(0, 10, 0, 0.5));
  set.Insert(Window(40, 50, 0, 0.5));
  const auto sorted = set.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].start, 0);
  EXPECT_EQ(sorted[1].start, 20);
  EXPECT_EQ(sorted[2].start, 40);
}

TEST(WindowSetTest, DelayRange) {
  WindowSet set;
  EXPECT_EQ(set.MinDelay(), 0);
  EXPECT_EQ(set.MaxDelay(), 0);
  set.Insert(Window(0, 10, -3, 0.5));
  set.Insert(Window(20, 30, 7, 0.5));
  EXPECT_EQ(set.MinDelay(), -3);
  EXPECT_EQ(set.MaxDelay(), 7);
}

TEST(MergeOverlappingTest, MergesTouchingSameDelay) {
  std::vector<Window> ws = {Window(0, 10, 0, 0.5), Window(8, 20, 0, 0.7),
                            Window(21, 25, 0, 0.2)};
  const auto merged = MergeOverlapping(ws);
  // [0,10] ∪ [8,20] merges; [21,25] is adjacent (start == end+1) so the
  // merge rule (start <= end+1) folds it in as well.
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].start, 0);
  EXPECT_EQ(merged[0].end, 25);
  EXPECT_DOUBLE_EQ(merged[0].mi, 0.7);  // max of constituents
}

TEST(MergeOverlappingTest, KeepsDelaysApart) {
  std::vector<Window> ws = {Window(0, 10, 0, 0.5), Window(5, 15, 2, 0.5)};
  const auto merged = MergeOverlapping(ws);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeOverlappingTest, DisjointStayDisjoint) {
  std::vector<Window> ws = {Window(0, 10, 0, 0.5), Window(12, 20, 0, 0.5)};
  const auto merged = MergeOverlapping(ws);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeOverlappingTest, EmptyInput) {
  EXPECT_TRUE(MergeOverlapping({}).empty());
}

}  // namespace
}  // namespace tycos
