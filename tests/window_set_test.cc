#include "core/window_set.h"

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(WindowSetTest, InsertDisjointWindows) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 10, 0, 0.5)));
  EXPECT_TRUE(set.Insert(Window(20, 30, 0, 0.6)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, RejectsExactDuplicate) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 10, 0, 0.5)));
  EXPECT_FALSE(set.Insert(Window(0, 10, 0, 0.9)));
  EXPECT_EQ(set.size(), 1u);
}

TEST(WindowSetTest, NestedLowerMiIsRejected) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.8)));
  EXPECT_FALSE(set.Insert(Window(5, 15, 0, 0.5)));  // nested, weaker
  EXPECT_EQ(set.size(), 1u);
}

TEST(WindowSetTest, NestedHigherMiEvictsIncumbent) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.4)));
  EXPECT_TRUE(set.Insert(Window(5, 15, 0, 0.9)));  // nested, stronger
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.windows()[0].start, 5);
}

TEST(WindowSetTest, DifferentDelaysAreNotNested) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.8)));
  EXPECT_TRUE(set.Insert(Window(5, 15, 3, 0.2)));  // same span but τ differs
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, OverlappingButNotNestedCoexist) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 15, 0, 0.5)));
  EXPECT_TRUE(set.Insert(Window(10, 25, 0, 0.5)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, InsertEvictsMultipleNestedIncumbents) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(2, 6, 0, 0.3)));
  EXPECT_TRUE(set.Insert(Window(10, 14, 0, 0.3)));
  // A big strong window containing both incumbents evicts them.
  EXPECT_TRUE(set.Insert(Window(0, 20, 0, 0.9)));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.windows()[0].end, 20);
}

TEST(WindowSetTest, NonNestingInvariantHolds) {
  WindowSet set;
  set.Insert(Window(0, 30, 0, 0.4));
  set.Insert(Window(5, 10, 0, 0.7));
  set.Insert(Window(12, 20, 0, 0.2));
  set.Insert(Window(3, 25, 0, 0.5));
  const auto& ws = set.windows();
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = 0; j < ws.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Contains(ws[i], ws[j]))
          << ws[i].ToString() << " contains " << ws[j].ToString();
    }
  }
}

TEST(WindowSetTest, SortedOrdersByStart) {
  WindowSet set;
  set.Insert(Window(20, 30, 0, 0.5));
  set.Insert(Window(0, 10, 0, 0.5));
  set.Insert(Window(40, 50, 0, 0.5));
  const auto sorted = set.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].start, 0);
  EXPECT_EQ(sorted[1].start, 20);
  EXPECT_EQ(sorted[2].start, 40);
}

TEST(WindowSetTest, DelayRange) {
  WindowSet set;
  EXPECT_EQ(set.MinDelay(), 0);
  EXPECT_EQ(set.MaxDelay(), 0);
  set.Insert(Window(0, 10, -3, 0.5));
  set.Insert(Window(20, 30, 7, 0.5));
  EXPECT_EQ(set.MinDelay(), -3);
  EXPECT_EQ(set.MaxDelay(), 7);
}

TEST(MergeOverlappingTest, MergesTouchingSameDelay) {
  std::vector<Window> ws = {Window(0, 10, 0, 0.5), Window(8, 20, 0, 0.7),
                            Window(21, 25, 0, 0.2)};
  const auto merged = MergeOverlapping(ws);
  // [0,10] ∪ [8,20] merges; [21,25] is adjacent (start == end+1) so the
  // merge rule (start <= end+1) folds it in as well.
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].start, 0);
  EXPECT_EQ(merged[0].end, 25);
  EXPECT_DOUBLE_EQ(merged[0].mi, 0.7);  // max of constituents
}

TEST(MergeOverlappingTest, KeepsDelaysApart) {
  std::vector<Window> ws = {Window(0, 10, 0, 0.5), Window(5, 15, 2, 0.5)};
  const auto merged = MergeOverlapping(ws);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeOverlappingTest, DisjointStayDisjoint) {
  std::vector<Window> ws = {Window(0, 10, 0, 0.5), Window(12, 20, 0, 0.5)};
  const auto merged = MergeOverlapping(ws);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeOverlappingTest, EmptyInput) {
  EXPECT_TRUE(MergeOverlapping({}).empty());
}

// --- Invariant edge cases backing the window_set auditors -----------------

TEST(WindowSetTest, DuplicateInsertLeavesSingleCopy) {
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(3, 9, 1, 0.4)));
  // Re-inserting the identical span is rejected regardless of its MI —
  // including a strictly better score (SameSpan short-circuits before the
  // MI comparison) and a bit-identical duplicate.
  EXPECT_FALSE(set.Insert(Window(3, 9, 1, 0.4)));
  EXPECT_FALSE(set.Insert(Window(3, 9, 1, 0.99)));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.windows()[0].mi, 0.4);
}

TEST(WindowSetTest, ExactNestingAtSharedBoundaries) {
  // Contains() uses closed comparisons, so an inner window sharing the
  // outer's start (or end) is still nested — the non-nesting constraint
  // must fire on boundary-touching spans, not only strict interiors.
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(10, 30, 2, 0.8)));
  EXPECT_FALSE(set.Insert(Window(10, 20, 2, 0.5)));  // shares start
  EXPECT_FALSE(set.Insert(Window(25, 30, 2, 0.5)));  // shares end
  EXPECT_EQ(set.size(), 1u);

  // A boundary-sharing inner window with a higher MI evicts the outer.
  EXPECT_TRUE(set.Insert(Window(10, 20, 2, 0.9)));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.windows()[0].end, 20);
}

TEST(WindowSetTest, SameSpanDifferentDelayCoexist) {
  // Nesting requires equal delays; the same X-interval under two delays is
  // two distinct relations and both stay in the set.
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 10, 0, 0.5)));
  EXPECT_TRUE(set.Insert(Window(0, 10, 4, 0.5)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(WindowSetTest, EvictionCascadeKeepsSetNonNested) {
  // One wide insert must evict several nested incumbents at once and leave
  // a set where no pair nests (the auditor's full-sweep invariant).
  WindowSet set;
  EXPECT_TRUE(set.Insert(Window(0, 5, 0, 0.3)));
  EXPECT_TRUE(set.Insert(Window(10, 15, 0, 0.4)));
  EXPECT_TRUE(set.Insert(Window(20, 25, 0, 0.2)));
  EXPECT_TRUE(set.Insert(Window(0, 30, 0, 0.9)));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.windows()[0].size(), 31);
}

TEST(MergeOverlappingTest, ExactlyTouchingWindowsMerge) {
  // start == end + 1 is the adjacency boundary: touching windows fold into
  // one covering window; a one-sample gap keeps them apart.
  const auto touching =
      MergeOverlapping({Window(0, 9, 3, 0.2), Window(10, 19, 3, 0.6)});
  ASSERT_EQ(touching.size(), 1u);
  EXPECT_EQ(touching[0].start, 0);
  EXPECT_EQ(touching[0].end, 19);
  EXPECT_DOUBLE_EQ(touching[0].mi, 0.6);

  const auto gapped =
      MergeOverlapping({Window(0, 9, 3, 0.2), Window(11, 19, 3, 0.6)});
  EXPECT_EQ(gapped.size(), 2u);
}

TEST(MergeOverlappingTest, IdenticalWindowsCollapse) {
  const auto merged =
      MergeOverlapping({Window(4, 8, 1, 0.3), Window(4, 8, 1, 0.7)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].mi, 0.7);
}

}  // namespace
}  // namespace tycos
