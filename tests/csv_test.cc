#include "io/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace tycos {
namespace {

TEST(ParseCsvTest, WithHeader) {
  const auto result = ParseCsv("a,b\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CsvTable& t = *result;
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.column_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(t.columns[0][1], 3.0);
  EXPECT_DOUBLE_EQ(t.columns[1][0], 2.0);
}

TEST(ParseCsvTest, WithoutHeader) {
  const auto result = ParseCsv("1.5,2.5\n-3,4e2\n", /*has_header=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->column_names.empty());
  EXPECT_EQ(result->num_rows(), 2);
  EXPECT_DOUBLE_EQ(result->columns[1][1], 400.0);
}

TEST(ParseCsvTest, SkipsBlankLinesAndCrLf) {
  const auto result = ParseCsv("a,b\r\n1,2\r\n\r\n3,4\r\n", true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2);
}

TEST(ParseCsvTest, RejectsRaggedRows) {
  const auto result = ParseCsv("a,b\n1,2\n3\n", true);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCsvTest, RejectsNonNumeric) {
  const auto result = ParseCsv("a\nhello\n", true);
  EXPECT_FALSE(result.ok());
}

TEST(ParseCsvTest, EmptyContentYieldsEmptyTable) {
  const auto result = ParseCsv("", false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0);
  EXPECT_EQ(result->num_columns(), 0);
}

// Regression: these tokens used to parse "successfully" into nan/inf values
// that poisoned every estimator downstream. The default policy must reject
// each one with a precise error instead.
TEST(ParseCsvTest, RejectsNonFiniteTokensByDefault) {
  for (const char* hostile : {"nan", "NaN", "inf", "-inf", "INF", "1e999",
                              "-1e999", ""}) {
    const auto result =
        ParseCsv(std::string("a,b\n1,2\n3,") + hostile + "\n", true);
    ASSERT_FALSE(result.ok()) << "token: '" << hostile << "'";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParseCsvTest, GarbageIsAlwaysAnErrorRegardlessOfPolicy) {
  for (DataPolicy policy : {DataPolicy::kReject, DataPolicy::kDropRow,
                            DataPolicy::kInterpolate}) {
    const auto result =
        ParseCsv("a,b\n1,2\n3,1.2.3\n", true, policy, nullptr);
    ASSERT_FALSE(result.ok()) << DataPolicyName(policy);
    EXPECT_NE(result.status().message().find("1.2.3"), std::string::npos);
  }
}

TEST(ParseCsvTest, DropRowPolicyRemovesHostileRows) {
  SanitizeStats stats;
  const auto result = ParseCsv("a,b\n1,2\nnan,3\n4,5\n6,1e999\n7,8\n", true,
                               DataPolicy::kDropRow, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3);
  EXPECT_DOUBLE_EQ(result->columns[0][0], 1.0);
  EXPECT_DOUBLE_EQ(result->columns[0][1], 4.0);
  EXPECT_DOUBLE_EQ(result->columns[0][2], 7.0);
  EXPECT_EQ(stats.non_finite, 2);
  EXPECT_EQ(stats.rows_dropped, 2);
}

TEST(ParseCsvTest, InterpolatePolicyRepairsGaps) {
  SanitizeStats stats;
  const auto result = ParseCsv("a\n1\n na \n3\nnull\n5\n", true,
                               DataPolicy::kInterpolate, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 5);
  EXPECT_DOUBLE_EQ(result->columns[0][1], 2.0);  // between 1 and 3
  EXPECT_DOUBLE_EQ(result->columns[0][3], 4.0);  // between 3 and 5
  EXPECT_EQ(stats.interpolated, 2);
}

TEST(ParseCsvTest, InterpolatePolicyClampsEdgeGaps) {
  const auto result =
      ParseCsv("a\nnan\n2\n4\ninf\n", true, DataPolicy::kInterpolate, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->columns[0][0], 2.0);  // leading gap clamps right
  EXPECT_DOUBLE_EQ(result->columns[0][3], 4.0);  // trailing gap clamps left
}

TEST(ParseCsvTest, AllMissingColumnIsAnErrorUnderInterpolate) {
  const auto result =
      ParseCsv("a,b\nnan,1\nnan,2\n", true, DataPolicy::kInterpolate, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnAsSeriesTest, ByIndexAndName) {
  const auto table = ParseCsv("wind,power\n1,10\n2,20\n", true);
  ASSERT_TRUE(table.ok());
  const auto by_index = ColumnAsSeries(*table, 1);
  ASSERT_TRUE(by_index.ok());
  EXPECT_EQ(by_index->name(), "power");
  EXPECT_DOUBLE_EQ((*by_index)[1], 20.0);

  const auto by_name = ColumnAsSeries(*table, "wind");
  ASSERT_TRUE(by_name.ok());
  EXPECT_DOUBLE_EQ((*by_name)[0], 1.0);
}

TEST(ColumnAsSeriesTest, Errors) {
  const auto table = ParseCsv("a\n1\n", true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(ColumnAsSeries(*table, 5).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ColumnAsSeries(*table, "missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ReadCsvTest, MissingFileIsIoError) {
  const auto result = ReadCsv("/nonexistent/path.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(WriteCsvTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/tycos_csv_rt.csv";
  std::vector<TimeSeries> series = {TimeSeries({1.0, 2.5, -3.0}, "x"),
                                    TimeSeries({0.5, 0.25, 0.125}, "y")};
  ASSERT_TRUE(WriteCsv(path, series).ok());
  const auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column_names, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(table->num_rows(), 3);
  EXPECT_DOUBLE_EQ(table->columns[0][2], -3.0);
  EXPECT_DOUBLE_EQ(table->columns[1][2], 0.125);
  std::remove(path.c_str());
}

TEST(WriteCsvTest, RejectsLengthMismatch) {
  const std::string path = ::testing::TempDir() + "/tycos_csv_bad.csv";
  std::vector<TimeSeries> series = {TimeSeries({1.0}), TimeSeries({1.0, 2.0})};
  EXPECT_FALSE(WriteCsv(path, series).ok());
}

TEST(WriteCsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(WriteCsv(::testing::TempDir() + "/x.csv", {}).ok());
}

TEST(WriteWindowsCsvTest, RoundTripThroughParse) {
  const std::string path = ::testing::TempDir() + "/tycos_windows.csv";
  std::vector<Window> ws = {Window(0, 10, -2, 0.75), Window(20, 40, 3, 0.5)};
  ASSERT_TRUE(WriteWindowsCsv(path, ws).ok());
  const auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->column_names,
            (std::vector<std::string>{"start", "end", "delay", "mi"}));
  EXPECT_DOUBLE_EQ(table->columns[2][0], -2.0);
  EXPECT_DOUBLE_EQ(table->columns[3][0], 0.75);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tycos
