#include "search/streaming.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/window_similarity.h"
#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TycosParams Params() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 300;
  p.td_max = 16;
  return p;
}

// Feeds the pair to a StreamingTycos in chunks of `chunk` samples.
StreamingTycos StreamAll(const SeriesPair& pair, int64_t chunk,
                         const TycosParams& params) {
  StreamingTycos stream(params, TycosVariant::kLMN);
  const auto& xs = pair.x().values();
  const auto& ys = pair.y().values();
  for (size_t at = 0; at < xs.size(); at += static_cast<size_t>(chunk)) {
    const size_t end = std::min(xs.size(), at + static_cast<size_t>(chunk));
    const Status s = stream.Append({xs.begin() + at, xs.begin() + end},
                                   {ys.begin() + at, ys.begin() + end});
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  const Status s = stream.Flush();
  EXPECT_TRUE(s.ok()) << s.ToString();
  return stream;
}

TEST(StreamingTycosTest, FindsRelationsAcrossChunkBoundaries) {
  // Two planted relations; chunk size chosen so the first straddles a
  // boundary.
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 200, 4},
       SegmentSpec{RelationType::kSine, 200, 10}},
      /*gap=*/250, /*seed=*/1);
  StreamingTycos stream = StreamAll(ds.pair, 300, Params());
  EXPECT_EQ(stream.samples_seen(), ds.pair.size());
  for (const auto& planted : ds.planted) {
    bool covered = false;
    for (const Window& w : stream.results().windows()) {
      covered |= IndexJaccard(w, planted.AsWindow()) > 0.25;
    }
    EXPECT_TRUE(covered) << datagen::RelationTypeName(planted.type);
  }
}

TEST(StreamingTycosTest, MatchesBatchSearchCoverage) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kQuadratic, 200, 8},
       SegmentSpec{RelationType::kCross, 200, 0}},
      /*gap=*/300, /*seed=*/2);
  const WindowSet batch = Tycos(ds.pair, Params(), TycosVariant::kLMN).Run();
  StreamingTycos stream = StreamAll(ds.pair, 400, Params());
  ASSERT_FALSE(batch.empty());
  // The streamed result must cover what the batch search covers.
  EXPECT_GE(CoverageRecallPercent(batch.windows(),
                                  stream.results().windows()),
            50.0);
}

TEST(StreamingTycosTest, MemoryStaysBounded) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0},
       SegmentSpec{RelationType::kSine, 150, 0},
       SegmentSpec{RelationType::kQuadratic, 150, 0},
       SegmentSpec{RelationType::kCross, 150, 0}},
      /*gap=*/400, /*seed=*/3);
  const TycosParams p = Params();
  StreamingTycos stream = StreamAll(ds.pair, 200, p);
  // Retained tail never exceeds margin (s_max + td_max) + trigger + chunk.
  EXPECT_LE(stream.retained_samples(),
            p.s_max + p.td_max + 2 * p.s_max + 200);
  EXPECT_GT(stream.search_passes(), 2);
}

TEST(StreamingTycosTest, PureNoiseStreamYieldsNothing) {
  const SyntheticDataset ds =
      ComposeDataset({SegmentSpec{RelationType::kIndependent, 1200, 0}},
                     /*gap=*/100, /*seed=*/4);
  StreamingTycos stream = StreamAll(ds.pair, 250, Params());
  EXPECT_TRUE(stream.results().empty());
}

TEST(StreamingTycosTest, FlushHandlesShortTail) {
  StreamingTycos stream(Params(), TycosVariant::kLMN);
  std::vector<double> xs(10, 0.5), ys(10, 0.25);
  ASSERT_TRUE(stream.Append(xs, ys).ok());  // below s_min: nothing searchable
  ASSERT_TRUE(stream.Flush().ok());
  EXPECT_TRUE(stream.results().empty());
  EXPECT_EQ(stream.samples_seen(), 10);
}

TEST(StreamingTycosTest, MismatchedAppendIsAnErrorAndBuffersNothing) {
  StreamingTycos stream(Params(), TycosVariant::kLMN);
  std::vector<double> xs(20, 0.5), ys(19, 0.25);
  const Status s = stream.Append(xs, ys);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("desynchronized"), std::string::npos);
  // Nothing from the bad chunk was buffered; the stream stays usable.
  EXPECT_EQ(stream.samples_seen(), 0);
  ys.push_back(0.25);
  EXPECT_TRUE(stream.Append(xs, ys).ok());
  EXPECT_EQ(stream.samples_seen(), 20);
}

TEST(StreamingTycosTest, CreateRejectsBadConfiguration) {
  // Trigger below s_min would search unsearchable buffers forever.
  const auto r = StreamingTycos::Create(Params(), TycosVariant::kLMN,
                                        /*seed=*/42, /*search_trigger=*/10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  const auto ok = StreamingTycos::Create(Params(), TycosVariant::kLMN);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->samples_seen(), 0);
}

TEST(StreamingTycosTest, DropRowPolicySkipsHostileSamples) {
  auto r = StreamingTycos::Create(Params(), TycosVariant::kLMN, /*seed=*/42,
                                  /*search_trigger=*/0, DataPolicy::kDropRow);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  StreamingTycos& stream = **r;
  std::vector<double> xs(30, 0.5), ys(30, 0.25);
  xs[7] = std::numeric_limits<double>::quiet_NaN();
  ys[21] = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(stream.Append(xs, ys).ok());
  EXPECT_EQ(stream.samples_seen(), 28);  // two hostile rows dropped
  EXPECT_EQ(stream.ingest_stats().rows_dropped, 2);
}

TEST(StreamingTycosTest, ResultsAreInGlobalCoordinates) {
  // Single relation late in the stream: its window's global indices must
  // land on the planted location even though the buffer was trimmed.
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kIndependent, 900, 0},
       SegmentSpec{RelationType::kLinear, 200, 0}},
      /*gap=*/150, /*seed=*/5);
  StreamingTycos stream = StreamAll(ds.pair, 300, Params());
  const Window truth = ds.planted[1].AsWindow();
  bool covered = false;
  for (const Window& w : stream.results().windows()) {
    covered |= IndexJaccard(w, truth) > 0.25;
    EXPECT_GE(w.start, 0);
    EXPECT_LT(w.end, ds.pair.size());
  }
  EXPECT_TRUE(covered);
}

}  // namespace
}  // namespace tycos
