#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "knn/brute_knn.h"
#include "knn/grid_index.h"
#include "knn/kd_tree.h"
#include "knn/rank_index.h"

namespace tycos {
namespace {

TEST(ChebyshevDistanceTest, MaxNorm) {
  EXPECT_DOUBLE_EQ(ChebyshevDistance({0, 0}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(ChebyshevDistance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(ChebyshevDistance({-2, 0}, {2, 1}), 4.0);
}

TEST(KnnExtentsTest, RadiusIsMax) {
  KnnExtents e{0.5, 0.8};
  EXPECT_DOUBLE_EQ(e.radius(), 0.8);
}

TEST(BruteKnnTest, PaperFigure2Example) {
  // Seven points roughly like the paper's Fig. 2: p1's two nearest
  // neighbours define the extents from which marginal counts come.
  std::vector<Point2> pts = {{2, 2}, {3, 2.5}, {2.5, 3}, {1.5, 4.5},
                             {4.5, 1.5}, {6, 5}, {0.2, 6.5}};
  const KnnExtents e = BruteKnnExtents(pts, 0, 2);
  // Neighbours of p1=(2,2) under L∞: p2 (d=1.0) and p3 (d=1.0).
  EXPECT_DOUBLE_EQ(e.dx, 1.0);   // max(|3-2|, |2.5-2|)
  EXPECT_DOUBLE_EQ(e.dy, 1.0);   // max(|2.5-2|, |3-2|)
  // Marginal counts within those extents (self excluded).
  EXPECT_EQ(CountWithinX(pts, 2.0, e.dx, 0), 3u);  // p2, p3, p4(x=1.5)
  EXPECT_EQ(CountWithinY(pts, 2.0, e.dy, 0), 3u);  // p2, p3, p5(y=1.5)
}

TEST(BruteKnnTest, SimpleLine) {
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {2, 0}, {4, 0}, {8, 0}};
  const KnnExtents e = BruteKnnExtents(pts, 0, 2);
  EXPECT_DOUBLE_EQ(e.dx, 2.0);
  EXPECT_DOUBLE_EQ(e.dy, 0.0);
}

TEST(BruteKnnTest, ProbeNotInSet) {
  std::vector<Point2> pts = {{0, 0}, {10, 0}, {0, 10}};
  const KnnExtents e = BruteKnnExtentsAt(pts, {1, 1}, 1);
  EXPECT_DOUBLE_EQ(e.dx, 1.0);
  EXPECT_DOUBLE_EQ(e.dy, 1.0);
}

TEST(CountWithinTest, ExcludesIndex) {
  std::vector<Point2> pts = {{0, 0}, {0.5, 1}, {-0.5, 2}, {2, 3}};
  EXPECT_EQ(CountWithinX(pts, 0.0, 0.5, 0), 2u);
  EXPECT_EQ(CountWithinX(pts, 0.0, 0.5, pts.size()), 3u);  // nothing excluded
  EXPECT_EQ(CountWithinY(pts, 0.0, 1.0, 0), 1u);
}

struct KnnCase {
  int n;
  int k;
  uint64_t seed;
};

class KdTreeAgreementTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KdTreeAgreementTest, MatchesBruteForceExactly) {
  const KnnCase c = GetParam();
  Rng rng(c.seed);
  std::vector<Point2> pts(static_cast<size_t>(c.n));
  for (auto& p : pts) {
    p.x = rng.Normal(0.0, 1.0);
    p.y = rng.Normal(0.0, 1.0);
  }
  KdTree tree(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    const KnnExtents brute = BruteKnnExtents(pts, i, c.k);
    const KnnExtents kd = tree.QueryExtents(i, c.k);
    ASSERT_DOUBLE_EQ(kd.dx, brute.dx) << "point " << i;
    ASSERT_DOUBLE_EQ(kd.dy, brute.dy) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeAgreementTest,
    ::testing::Values(KnnCase{10, 1, 1}, KnnCase{10, 3, 2}, KnnCase{50, 2, 3},
                      KnnCase{100, 4, 4}, KnnCase{200, 4, 5},
                      KnnCase{333, 6, 6}, KnnCase{512, 8, 7},
                      KnnCase{1000, 4, 8}));

TEST(KdTreeAgreementTest, DuplicateCoordinates) {
  // Heavy ties: integer grid points repeated.
  Rng rng(99);
  std::vector<Point2> pts(200);
  for (auto& p : pts) {
    p.x = static_cast<double>(rng.UniformInt(0, 4));
    p.y = static_cast<double>(rng.UniformInt(0, 4));
  }
  KdTree tree(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    const KnnExtents brute = BruteKnnExtents(pts, i, 3);
    const KnnExtents kd = tree.QueryExtents(i, 3);
    ASSERT_DOUBLE_EQ(kd.dx, brute.dx) << "point " << i;
    ASSERT_DOUBLE_EQ(kd.dy, brute.dy) << "point " << i;
  }
}

TEST(KdTreeTest, ProbeQueryMatchesBrute) {
  Rng rng(5);
  std::vector<Point2> pts(128);
  for (auto& p : pts) {
    p.x = rng.Uniform(-5, 5);
    p.y = rng.Uniform(-5, 5);
  }
  KdTree tree(pts);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2 probe{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const KnnExtents brute = BruteKnnExtentsAt(pts, probe, 5);
    const KnnExtents kd = tree.QueryExtentsAt(probe, 5);
    ASSERT_DOUBLE_EQ(kd.dx, brute.dx);
    ASSERT_DOUBLE_EQ(kd.dy, brute.dy);
  }
}

class GridIndexAgreementTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(GridIndexAgreementTest, MatchesBruteForceExactly) {
  const KnnCase c = GetParam();
  Rng rng(c.seed + 1000);
  std::vector<Point2> pts(static_cast<size_t>(c.n));
  for (auto& p : pts) {
    p.x = rng.Normal(0.0, 1.0);
    p.y = rng.Normal(0.0, 1.0);
  }
  GridIndex grid(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    const KnnExtents brute = BruteKnnExtents(pts, i, c.k);
    const KnnExtents g = grid.QueryExtents(i, c.k);
    ASSERT_DOUBLE_EQ(g.dx, brute.dx) << "point " << i;
    ASSERT_DOUBLE_EQ(g.dy, brute.dy) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridIndexAgreementTest,
    ::testing::Values(KnnCase{10, 1, 1}, KnnCase{10, 3, 2}, KnnCase{50, 2, 3},
                      KnnCase{100, 4, 4}, KnnCase{200, 4, 5},
                      KnnCase{333, 6, 6}, KnnCase{512, 8, 7},
                      KnnCase{1000, 4, 8}));

TEST(GridIndexTest, DuplicateCoordinates) {
  Rng rng(101);
  std::vector<Point2> pts(200);
  for (auto& p : pts) {
    p.x = static_cast<double>(rng.UniformInt(0, 4));
    p.y = static_cast<double>(rng.UniformInt(0, 4));
  }
  GridIndex grid(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    const KnnExtents brute = BruteKnnExtents(pts, i, 3);
    const KnnExtents g = grid.QueryExtents(i, 3);
    ASSERT_DOUBLE_EQ(g.dx, brute.dx) << "point " << i;
    ASSERT_DOUBLE_EQ(g.dy, brute.dy) << "point " << i;
  }
}

TEST(GridIndexTest, SkewedAspectRatio) {
  // x spans 1000x the range of y: cells stay square, grid gets elongated.
  Rng rng(103);
  std::vector<Point2> pts(300);
  for (auto& p : pts) {
    p.x = rng.Uniform(0, 1000);
    p.y = rng.Uniform(0, 1);
  }
  GridIndex grid(pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    const KnnExtents brute = BruteKnnExtents(pts, i, 4);
    const KnnExtents g = grid.QueryExtents(i, 4);
    ASSERT_DOUBLE_EQ(g.dx, brute.dx);
    ASSERT_DOUBLE_EQ(g.dy, brute.dy);
  }
}

TEST(GridIndexTest, ProbeQueryMatchesBrute) {
  Rng rng(105);
  std::vector<Point2> pts(128);
  for (auto& p : pts) {
    p.x = rng.Uniform(-5, 5);
    p.y = rng.Uniform(-5, 5);
  }
  GridIndex grid(pts);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2 probe{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    const KnnExtents brute = BruteKnnExtentsAt(pts, probe, 5);
    const KnnExtents g = grid.QueryExtentsAt(probe, 5);
    ASSERT_DOUBLE_EQ(g.dx, brute.dx);
    ASSERT_DOUBLE_EQ(g.dy, brute.dy);
  }
}

TEST(GridIndexTest, AllPointsIdentical) {
  std::vector<Point2> pts(20, Point2{1.5, -2.5});
  GridIndex grid(pts);
  const KnnExtents e = grid.QueryExtents(0, 3);
  EXPECT_DOUBLE_EQ(e.dx, 0.0);
  EXPECT_DOUBLE_EQ(e.dy, 0.0);
}

TEST(RankIndexTest, InsertEraseCount) {
  RankIndex idx({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(idx.size(), 0);
  idx.Insert(2.0);
  idx.Insert(3.0);
  idx.Insert(3.0);  // duplicates allowed
  EXPECT_EQ(idx.size(), 3);
  EXPECT_EQ(idx.CountInRange(2.0, 3.0), 3);
  EXPECT_EQ(idx.CountInRange(2.5, 10.0), 2);
  idx.Erase(3.0);
  EXPECT_EQ(idx.CountInRange(2.0, 3.0), 2);
  EXPECT_EQ(idx.size(), 2);
}

TEST(RankIndexTest, ClosedIntervalSemantics) {
  RankIndex idx({1.0, 2.0, 3.0});
  idx.Insert(1.0);
  idx.Insert(3.0);
  EXPECT_EQ(idx.CountInRange(1.0, 3.0), 2);  // endpoints included
  EXPECT_EQ(idx.CountInRange(1.0001, 2.9999), 0);
  EXPECT_EQ(idx.CountInRange(3.0, 1.0), 0);  // inverted interval
}

TEST(RankIndexTest, RangeOutsideUniverse) {
  RankIndex idx({5.0, 6.0});
  idx.Insert(5.0);
  EXPECT_EQ(idx.CountInRange(-100.0, 100.0), 1);
  EXPECT_EQ(idx.CountInRange(7.0, 9.0), 0);
  EXPECT_EQ(idx.CountInRange(-9.0, 4.0), 0);
}

TEST(RankIndexTest, EmptyRangeCounts) {
  // The cases the marginal-count auditors lean on: a degenerate query
  // interval must count 0 whether the index is empty, the interval is
  // inverted, or it falls between stored values.
  RankIndex idx({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(idx.CountInRange(1.0, 4.0), 0);  // index is empty
  idx.Insert(1.0);
  idx.Insert(4.0);
  EXPECT_EQ(idx.CountInRange(2.0, 3.0), 0);   // gap between stored values
  EXPECT_EQ(idx.CountInRange(4.0, 1.0), 0);   // inverted interval
  EXPECT_EQ(idx.CountInRange(1.5, 1.5), 0);   // point query, no occupant
  EXPECT_EQ(idx.CountInRange(4.0, 4.0), 1);   // point query, occupied
}

TEST(RankIndexTest, FullRangeCountsEqualSize) {
  // A closed interval covering the whole universe must count exactly
  // size(), with duplicates multiplicity-counted — the incremental KSG's
  // "count minus self" arithmetic depends on this.
  RankIndex idx({-2.0, 0.0, 3.5});
  idx.Insert(-2.0);
  idx.Insert(0.0);
  idx.Insert(0.0);
  idx.Insert(3.5);
  EXPECT_EQ(idx.size(), 4);
  EXPECT_EQ(idx.CountInRange(-2.0, 3.5), 4);      // exact hull
  EXPECT_EQ(idx.CountInRange(-1e300, 1e300), 4);  // unbounded hull
  idx.Erase(0.0);
  EXPECT_EQ(idx.CountInRange(-2.0, 3.5), 3);      // multiplicity respected
  EXPECT_EQ(idx.CountInRange(-2.0, 3.5), idx.size());
}

TEST(RankIndexTest, MatchesNaiveCountingUnderRandomOps) {
  Rng rng(17);
  std::vector<double> universe;
  for (int i = 0; i < 200; ++i) universe.push_back(rng.Uniform(-10, 10));
  RankIndex idx(universe);
  std::vector<double> present;
  for (int op = 0; op < 2000; ++op) {
    if (present.empty() || rng.Bernoulli(0.6)) {
      const double v =
          universe[static_cast<size_t>(rng.UniformInt(0, 199))];
      idx.Insert(v);
      present.push_back(v);
    } else {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(present.size()) - 1));
      idx.Erase(present[pos]);
      present.erase(present.begin() + static_cast<long>(pos));
    }
    if (op % 50 == 0) {
      const double lo = rng.Uniform(-12, 12);
      const double hi = lo + rng.Uniform(0, 8);
      int64_t naive = 0;
      for (double v : present) {
        if (v >= lo && v <= hi) ++naive;
      }
      ASSERT_EQ(idx.CountInRange(lo, hi), naive) << "op " << op;
    }
  }
}

}  // namespace
}  // namespace tycos
