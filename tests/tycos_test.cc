#include "search/tycos.h"

#include <gtest/gtest.h>

#include "core/window_similarity.h"
#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TycosParams TestParams() {
  TycosParams p;
  p.sigma = 0.5;
  p.s_min = 24;
  p.s_max = 320;
  p.td_max = 32;
  p.delta = 4;
  p.k = 4;
  p.max_idle = 8;
  return p;
}

bool AnyWindowCovers(const WindowSet& set, const Window& truth,
                     double min_jaccard = 0.3) {
  for (const Window& w : set.windows()) {
    if (IndexJaccard(w, truth) >= min_jaccard) return true;
  }
  return false;
}

TEST(TycosParamsTest, ValidateAcceptsDefaults) {
  TycosParams p;
  EXPECT_TRUE(p.Validate(10000).ok());
}

TEST(TycosParamsTest, ValidateRejectsBadValues) {
  TycosParams p;
  p.sigma = 0.0;
  EXPECT_FALSE(p.Validate(1000).ok());
  p = TycosParams();
  p.s_min = 3;  // < k + 2
  EXPECT_FALSE(p.Validate(1000).ok());
  p = TycosParams();
  p.s_max = 2000;
  EXPECT_FALSE(p.Validate(1000).ok());
  p = TycosParams();
  p.epsilon_ratio = 1.0;
  EXPECT_FALSE(p.Validate(1000).ok());
  p = TycosParams();
  p.td_max = -1;
  EXPECT_FALSE(p.Validate(1000).ok());
  p = TycosParams();
  p.delta = 0;
  EXPECT_FALSE(p.Validate(1000).ok());
}

TEST(TycosParamsTest, EpsilonDerivedFromSigma) {
  TycosParams p;
  p.sigma = 0.4;
  p.epsilon_ratio = 0.25;
  EXPECT_DOUBLE_EQ(p.epsilon(), 0.1);
}

TEST(TycosVariantTest, Names) {
  EXPECT_STREQ(TycosVariantName(TycosVariant::kL), "TYCOS_L");
  EXPECT_STREQ(TycosVariantName(TycosVariant::kLN), "TYCOS_LN");
  EXPECT_STREQ(TycosVariantName(TycosVariant::kLM), "TYCOS_LM");
  EXPECT_STREQ(TycosVariantName(TycosVariant::kLMN), "TYCOS_LMN");
}

class TycosVariantRunTest : public ::testing::TestWithParam<TycosVariant> {};

TEST_P(TycosVariantRunTest, FindsAlignedPlantedRelation) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0}}, /*gap=*/200, /*seed=*/1);
  Tycos search(ds.pair, TestParams(), GetParam());
  const WindowSet result = search.Run();
  ASSERT_FALSE(result.empty()) << TycosVariantName(GetParam());
  EXPECT_TRUE(AnyWindowCovers(result, ds.planted[0].AsWindow()))
      << TycosVariantName(GetParam());
}

TEST_P(TycosVariantRunTest, FindsNonLinearRelation) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kCircle, 150, 0}}, /*gap=*/200, /*seed=*/2);
  Tycos search(ds.pair, TestParams(), GetParam());
  const WindowSet result = search.Run();
  EXPECT_TRUE(AnyWindowCovers(result, ds.planted[0].AsWindow()))
      << TycosVariantName(GetParam());
}

TEST_P(TycosVariantRunTest, PureNoiseYieldsNothing) {
  const SyntheticDataset ds =
      ComposeDataset({SegmentSpec{RelationType::kIndependent, 500, 0}},
                     /*gap=*/100, /*seed=*/3);
  Tycos search(ds.pair, TestParams(), GetParam());
  const WindowSet result = search.Run();
  EXPECT_TRUE(result.empty()) << TycosVariantName(GetParam());
}

TEST_P(TycosVariantRunTest, ResultWindowsRespectConstraints) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 200, 8},
       SegmentSpec{RelationType::kQuadratic, 150, 0}},
      /*gap=*/150, /*seed=*/4);
  const TycosParams p = TestParams();
  Tycos search(ds.pair, p, GetParam());
  const WindowSet result = search.Run();
  for (const Window& w : result.windows()) {
    EXPECT_TRUE(IsFeasible(w, ds.pair.size(), p.s_min, p.s_max, p.td_max))
        << w.ToString();
    EXPECT_GE(w.mi, p.sigma);
  }
  // Non-nesting invariant.
  const auto& ws = result.windows();
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = 0; j < ws.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Contains(ws[i], ws[j]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TycosVariantRunTest,
                         ::testing::Values(TycosVariant::kL, TycosVariant::kLN,
                                           TycosVariant::kLM,
                                           TycosVariant::kLMN),
                         [](const auto& info) {
                           return std::string(TycosVariantName(info.param))
                                      .substr(6);  // strip "TYCOS_"
                         });

TEST(TycosTest, NoiseVariantFindsDelayedRelation) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kQuadratic, 200, 24}}, /*gap=*/200,
      /*seed=*/5);
  Tycos search(ds.pair, TestParams(), TycosVariant::kLMN);
  const WindowSet result = search.Run();
  ASSERT_FALSE(result.empty());
  bool found = false;
  for (const Window& w : result.windows()) {
    if (IndexJaccard(w, ds.planted[0].AsWindow()) >= 0.3 &&
        std::llabs(w.delay - 24) <= 8) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TycosTest, DeterministicForFixedSeed) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 120, 4}}, /*gap=*/150, /*seed=*/6);
  Tycos a(ds.pair, TestParams(), TycosVariant::kLMN, /*seed=*/99);
  Tycos b(ds.pair, TestParams(), TycosVariant::kLMN, /*seed=*/99);
  const auto ra = a.Run().Sorted();
  const auto rb = b.Run().Sorted();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_TRUE(ra[i].SameSpan(rb[i]));
    EXPECT_DOUBLE_EQ(ra[i].mi, rb[i].mi);
  }
}

TEST(TycosTest, IncrementalAndBatchVariantsAgreeOnScores) {
  // kL and kLM explore identically (same RNG stream, same scores) because
  // the incremental estimator is exact; their outputs must match.
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 150, 0}}, /*gap=*/150, /*seed=*/7);
  Tycos l(ds.pair, TestParams(), TycosVariant::kL, 5);
  Tycos lm(ds.pair, TestParams(), TycosVariant::kLM, 5);
  const auto rl = l.Run().Sorted();
  const auto rlm = lm.Run().Sorted();
  ASSERT_EQ(rl.size(), rlm.size());
  for (size_t i = 0; i < rl.size(); ++i) {
    EXPECT_TRUE(rl[i].SameSpan(rlm[i]));
    EXPECT_NEAR(rl[i].mi, rlm[i].mi, 1e-9);
  }
}

TEST(TycosTest, HigherSigmaFindsFewerWindows) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0},
       SegmentSpec{RelationType::kSine, 150, 0},
       SegmentSpec{RelationType::kQuadratic, 150, 0}},
      /*gap=*/120, /*seed=*/8);
  TycosParams lo = TestParams();
  lo.sigma = 0.45;
  TycosParams hi = TestParams();
  hi.sigma = 0.85;
  const auto r_lo = Tycos(ds.pair, lo, TycosVariant::kLMN).Run();
  const auto r_hi = Tycos(ds.pair, hi, TycosVariant::kLMN).Run();
  EXPECT_GE(r_lo.size(), r_hi.size());
}

TEST(TycosTest, TopKModeReturnsAtMostKWindows) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 120, 0},
       SegmentSpec{RelationType::kSine, 120, 0},
       SegmentSpec{RelationType::kQuadratic, 120, 0}},
      /*gap=*/100, /*seed=*/9);
  TycosParams p = TestParams();
  p.top_k = 2;
  const WindowSet result = Tycos(ds.pair, p, TycosVariant::kLMN).Run();
  EXPECT_LE(result.size(), 2u);
  EXPECT_GE(result.size(), 1u);
}

TEST(TycosTest, StatsArePopulated) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 120, 0}}, /*gap=*/150, /*seed=*/10);
  Tycos search(ds.pair, TestParams(), TycosVariant::kLMN);
  const WindowSet result = search.Run();
  const TycosStats& st = search.stats();
  EXPECT_GT(st.climbs, 0);
  EXPECT_GT(st.mi_evaluations, 0);
  EXPECT_EQ(st.windows_found, static_cast<int64_t>(result.size()));
}

TEST(TycosTest, CachingReducesEstimatorCalls) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 150, 0}}, /*gap=*/150, /*seed=*/11);
  TycosParams with_cache = TestParams();
  with_cache.cache_evaluations = true;
  TycosParams no_cache = TestParams();
  no_cache.cache_evaluations = false;
  Tycos a(ds.pair, with_cache, TycosVariant::kL, 3);
  Tycos b(ds.pair, no_cache, TycosVariant::kL, 3);
  a.Run();
  b.Run();
  EXPECT_GT(a.stats().cache_hits, 0);
  EXPECT_LT(a.stats().mi_evaluations, b.stats().mi_evaluations);
}

TEST(TycosTest, NoiseVariantPrunesDirections) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0}}, /*gap=*/250, /*seed=*/12);
  Tycos search(ds.pair, TestParams(), TycosVariant::kLN);
  search.Run();
  EXPECT_GT(search.stats().noise_blocked, 0);
}

TEST(TycosTest, MultipleRelationsAllRecovered) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 150, 0},
       SegmentSpec{RelationType::kSine, 150, 10},
       SegmentSpec{RelationType::kQuadratic, 150, 20}},
      /*gap=*/150, /*seed=*/13);
  Tycos search(ds.pair, TestParams(), TycosVariant::kLMN);
  const WindowSet result = search.Run();
  int recovered = 0;
  for (const auto& planted : ds.planted) {
    if (AnyWindowCovers(result, planted.AsWindow())) ++recovered;
  }
  EXPECT_GE(recovered, 2);  // at least 2 of 3 (heuristic search)
}

}  // namespace
}  // namespace tycos
