#include "search/brute_force_search.h"

#include <gtest/gtest.h>

#include "datagen/relations.h"

namespace tycos {
namespace {

using datagen::ComposeDataset;
using datagen::RelationType;
using datagen::SegmentSpec;
using datagen::SyntheticDataset;

TycosParams TinyParams() {
  TycosParams p;
  p.sigma = 0.55;
  p.s_min = 16;
  p.s_max = 64;
  p.td_max = 4;
  p.k = 4;
  return p;
}

TEST(BruteForceTest, FeasibleWindowCountMatchesEnumeration) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 60, 0}}, /*gap=*/40, /*seed=*/1);
  const TycosParams p = TinyParams();
  BruteForceSearch bf(ds.pair, p);
  // Enumerate naively.
  const int64_t n = ds.pair.size();
  int64_t count = 0;
  for (int64_t tau = -p.td_max; tau <= p.td_max; ++tau) {
    for (int64_t s = 0; s < n; ++s) {
      for (int64_t e = s; e < n; ++e) {
        if (IsFeasible(Window(s, e, tau), n, p.s_min, p.s_max, p.td_max)) {
          ++count;
        }
      }
    }
  }
  EXPECT_EQ(bf.CountFeasibleWindows(), count);
  const BruteForceResult r = bf.Run();
  EXPECT_EQ(r.windows_evaluated, count);
}

TEST(BruteForceTest, FindsPlantedRelation) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 80, 0}}, /*gap=*/60, /*seed=*/2);
  const BruteForceResult r = BruteForceSearch(ds.pair, TinyParams()).Run();
  ASSERT_FALSE(r.merged.empty());
  bool covered = false;
  for (const Window& w : r.merged) {
    covered |= Overlaps(w, ds.planted[0].AsWindow());
  }
  EXPECT_TRUE(covered);
}

TEST(BruteForceTest, FindsDelayedRelationAtCorrectDelay) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 80, 3}}, /*gap=*/60, /*seed=*/3);
  const BruteForceResult r = BruteForceSearch(ds.pair, TinyParams()).Run();
  bool found_at_delay = false;
  for (const Window& w : r.merged) {
    if (w.delay == 3 && Overlaps(w, ds.planted[0].AsWindow())) {
      found_at_delay = true;
    }
  }
  EXPECT_TRUE(found_at_delay);
}

TEST(BruteForceTest, PureNoiseFindsLittle) {
  const SyntheticDataset ds =
      ComposeDataset({SegmentSpec{RelationType::kIndependent, 150, 0}},
                     /*gap=*/30, /*seed=*/4);
  const BruteForceResult r = BruteForceSearch(ds.pair, TinyParams()).Run();
  // Independent data: at most stray borderline windows.
  EXPECT_LE(static_cast<int64_t>(r.raw.size()), r.windows_evaluated / 100);
}

TEST(BruteForceTest, IncrementalAndBatchModesAgree) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kSine, 60, 2}}, /*gap=*/40, /*seed=*/5);
  TycosParams p = TinyParams();
  p.td_max = 2;
  p.s_max = 48;
  const BruteForceResult inc =
      BruteForceSearch(ds.pair, p, /*use_incremental_mi=*/true).Run();
  const BruteForceResult batch =
      BruteForceSearch(ds.pair, p, /*use_incremental_mi=*/false).Run();
  ASSERT_EQ(inc.raw.size(), batch.raw.size());
  for (size_t i = 0; i < inc.raw.size(); ++i) {
    EXPECT_TRUE(inc.raw[i].SameSpan(batch.raw[i]));
    EXPECT_NEAR(inc.raw[i].mi, batch.raw[i].mi, 1e-9);
  }
}

TEST(BruteForceTest, MergedIsMergedAndRawIsNot) {
  const SyntheticDataset ds = ComposeDataset(
      {SegmentSpec{RelationType::kLinear, 80, 0}}, /*gap=*/60, /*seed=*/6);
  const BruteForceResult r = BruteForceSearch(ds.pair, TinyParams()).Run();
  EXPECT_GE(r.raw.size(), r.merged.size());
  // Merged windows with equal delay must not overlap.
  for (size_t i = 0; i < r.merged.size(); ++i) {
    for (size_t j = i + 1; j < r.merged.size(); ++j) {
      if (r.merged[i].delay == r.merged[j].delay) {
        EXPECT_FALSE(Overlaps(r.merged[i], r.merged[j]));
      }
    }
  }
}

}  // namespace
}  // namespace tycos
