#!/usr/bin/env python3
"""Repo-specific lint pass for rules clang-tidy cannot express.

Checks (all on by default; each has a flag to run it alone):

  --format-check   Formatting: runs clang-format -n --Werror when the binary
                   is available; always enforces the built-in fallback rules
                   (80-column limit measured in characters, no tabs, no
                   trailing whitespace, file ends with exactly one newline).
  --banned         Banned constructs: std::rand/srand/rand() (the repo's Rng
                   owns all randomness), time(nullptr)/time(NULL)/
                   std::time(0) seeds (runs must be reproducible), and
                   usleep/sleep_for in src/ outside tests (hot paths block
                   on condition variables, never timed sleeps).
  --check-ratchet  TYCOS_CHECK ratchet: TYCOS_CHECK aborts the process, so
                   recoverable conditions must go through Status/Result<>
                   factories instead. Existing call sites are grandfathered
                   per file; a file may reduce its count but never grow it,
                   and new files start at zero.
  --run-context    Cancellation plumbing: every src/search/*.cc that accepts
                   a RunContext must either poll ShouldStop() or hand the
                   context to a callee that does. A search loop that ignores
                   its RunContext silently loses deadline/cancel support.
  --span-hygiene   Trace-span placement: TYCOS_SPAN must not appear inside a
                   for/while loop body in src/knn/ or src/mi/ — those are
                   the per-point kNN/estimator kernels that run millions of
                   times per search, and a span there measures mostly its
                   own overhead. Open spans at function or phase scope and
                   let the loop run span-free.
  --jobs-io        Durable-job I/O discipline: raw file I/O in src/jobs/ is
                   confined to checkpoint.cc (the one audited code path),
                   and there every fopen/fwrite/fflush/fclose/fsync/rename
                   return value must be checked — a silently failed
                   checkpoint write would corrupt crash recovery.
  --tidy           Runs clang-tidy over src/ using build/compile_commands.json
                   when both the binary and the database exist; otherwise
                   prints a notice and succeeds (the CI lint job installs
                   clang-tidy; local containers may not have it).

Exit code 0 when every selected check passes, 1 otherwise.
"""

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

SOURCE_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = (".cc", ".h", ".cpp")

MAX_COLUMNS = 80

# TYCOS_CHECK call sites allowed per file (src/common/check.h is the
# definition site and exempt). Lower a count when you convert a call site
# to a Status/Result<> factory; never raise one. New files are not listed
# and therefore start at zero.
CHECK_RATCHET_BASELINE = {
    "src/baselines/amic.cc": 1,
    "src/baselines/mass.cc": 4,
    "src/baselines/matrix_profile.cc": 3,
    "src/baselines/pcc_search.cc": 2,
    "src/common/math.cc": 2,
    "src/common/status.h": 4,
    "src/common/thread_pool.cc": 2,
    "src/core/time_series.cc": 3,
    "src/core/time_series.h": 3,
    "src/core/window.cc": 5,
    "src/datagen/energy_sim.cc": 2,
    "src/datagen/relations.cc": 7,
    "src/datagen/smart_city_sim.cc": 2,
    "src/fft/fft.cc": 5,
    "src/fft/sliding_dot.cc": 5,
    "src/knn/brute_knn.cc": 5,
    "src/knn/grid_index.cc": 5,
    "src/knn/kd_tree.cc": 5,
    "src/knn/rank_index.cc": 2,
    "src/mi/cmi.cc": 6,
    "src/mi/entropy.cc": 2,
    "src/mi/histogram_mi.cc": 1,
    "src/mi/incremental_ksg.cc": 8,
    "src/mi/ksg.cc": 2,
    "src/mi/pearson.cc": 1,
    "src/search/brute_force_search.cc": 1,
    "src/search/evaluator.cc": 4,
    "src/search/lahc.cc": 3,
    "src/search/pairwise.cc": 3,
    "src/search/significance.cc": 1,
    "src/search/streaming.cc": 1,
    "src/search/top_k.cc": 1,
    "src/search/tycos.cc": 1,
}
CHECK_RATCHET_EXEMPT = {"src/common/check.h"}

BANNED_PATTERNS = [
    (re.compile(r"\bstd::rand\b|(?<![_\w])srand\s*\(|(?<![_\w:.])rand\s*\(\)"),
     "use tycos::Rng, not the C PRNG (non-reproducible, global state)"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"),
     "wall-clock seeds break reproducibility; thread seeds through params"),
]
# Timed sleeps are banned in src/ only; tests may pace fault injection.
BANNED_SRC_ONLY = [
    (re.compile(r"\bsleep_for\b|\busleep\s*\("),
     "hot paths wait on condition variables, not timed sleeps"),
]


def source_files():
    for d in SOURCE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for f in sorted(root.rglob("*")):
            if f.suffix in SOURCE_SUFFIXES:
                yield f


def rel(path):
    return path.relative_to(REPO).as_posix()


def strip_comments_and_strings(text):
    """Crude but line-preserving removal of comments and string literals so
    banned-pattern checks do not fire on prose."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            seg = text[i:n] if j < 0 else text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = n if j < 0 else j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(" " * (min(j, n - 1) - i + 1))
            i = min(j, n - 1) + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_format(errors):
    clang_format = shutil.which("clang-format")
    if clang_format:
        files = [str(f) for f in source_files()]
        proc = subprocess.run(
            [clang_format, "--dry-run", "--Werror", "--style=file"] + files,
            capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append("clang-format: tree is not formatted "
                          "(run clang-format -i --style=file on the files "
                          "below)\n" + proc.stderr.strip())
    else:
        print("lint: clang-format not found; running built-in format "
              "checks only")
    for f in source_files():
        text = f.read_text(encoding="utf-8")
        if text and not text.endswith("\n"):
            errors.append(f"{rel(f)}: missing final newline")
        if text.endswith("\n\n"):
            errors.append(f"{rel(f)}: trailing blank line at end of file")
        for lineno, line in enumerate(text.splitlines(), 1):
            if len(line) > MAX_COLUMNS:
                errors.append(f"{rel(f)}:{lineno}: line is {len(line)} chars "
                              f"(limit {MAX_COLUMNS})")
            if "\t" in line:
                errors.append(f"{rel(f)}:{lineno}: tab character")
            if line != line.rstrip():
                errors.append(f"{rel(f)}:{lineno}: trailing whitespace")


def check_banned(errors):
    for f in source_files():
        relf = rel(f)
        in_src = relf.startswith("src/")
        code = strip_comments_and_strings(f.read_text(encoding="utf-8"))
        rules = BANNED_PATTERNS + (BANNED_SRC_ONLY if in_src else [])
        for lineno, line in enumerate(code.splitlines(), 1):
            for pattern, why in rules:
                if pattern.search(line):
                    errors.append(f"{relf}:{lineno}: banned construct "
                                  f"({why})")


def check_ratchet(errors):
    pattern = re.compile(r"\bTYCOS_CHECK")
    for f in source_files():
        relf = rel(f)
        if not relf.startswith("src/") or relf in CHECK_RATCHET_EXEMPT:
            continue
        count = len(pattern.findall(
            strip_comments_and_strings(f.read_text(encoding="utf-8"))))
        allowed = CHECK_RATCHET_BASELINE.get(relf, 0)
        if count > allowed:
            errors.append(
                f"{relf}: {count} TYCOS_CHECK call sites, ratchet allows "
                f"{allowed} — return a Status/Result<> error instead of "
                f"aborting, or (for a genuine new internal invariant) lower "
                f"another file's count and update CHECK_RATCHET_BASELINE "
                f"with justification")


def check_run_context(errors):
    search = REPO / "src" / "search"
    for f in sorted(search.glob("*.cc")):
        code = strip_comments_and_strings(f.read_text(encoding="utf-8"))
        if "RunContext&" not in code:
            continue
        polls = "ShouldStop(" in code
        # Delegation: the context is forwarded to a callee (Run(ctx),
        # ParallelFor(..., ctx, ...), helper(..., ctx)).
        delegates = re.search(r"[(,]\s*ctx\s*[),]", code) is not None
        if not (polls or delegates):
            errors.append(
                f"{rel(f)}: accepts a RunContext but neither polls "
                f"ShouldStop() nor forwards ctx to a callee — deadlines and "
                f"cancellation are silently ignored")


def check_span_hygiene(errors):
    """TYCOS_SPAN inside a for/while body in the kNN / estimator kernels."""
    span_re = re.compile(r"\bTYCOS_SPAN\s*\(")
    loop_re = re.compile(r"\b(?:for|while)\s*\(")
    for f in source_files():
        relf = rel(f)
        if not relf.startswith(("src/knn/", "src/mi/")):
            continue
        code = strip_comments_and_strings(f.read_text(encoding="utf-8"))
        depth = 0        # brace nesting
        loop_opens = []  # brace depths whose '{' opened a loop body
        pending = 0      # loop headers whose body has not started yet
        lineno = 1
        i = 0
        while i < len(code):
            ch = code[i]
            if ch == "\n":
                lineno += 1
            elif ch == "{":
                depth += 1
                if pending > 0:
                    loop_opens.append(depth)
                    pending -= 1
            elif ch == "}":
                if loop_opens and loop_opens[-1] == depth:
                    loop_opens.pop()
                depth -= 1
            elif ch == ";" and pending > 0:
                pending -= 1  # braceless single-statement body (or do-while)
            else:
                m = loop_re.match(code, i)
                if m:
                    # Skip the balanced loop header so for(;;) semicolons and
                    # nested call parens cannot confuse the body tracking.
                    i = m.end()
                    parens = 1
                    while i < len(code) and parens > 0:
                        if code[i] == "(":
                            parens += 1
                        elif code[i] == ")":
                            parens -= 1
                        elif code[i] == "\n":
                            lineno += 1
                        i += 1
                    pending += 1
                    continue
                m = span_re.match(code, i)
                if m:
                    if loop_opens or pending > 0:
                        errors.append(
                            f"{relf}:{lineno}: TYCOS_SPAN inside a loop body "
                            f"— per-point kernels must stay span-free; open "
                            f"the span at function scope instead")
                    i = m.end()
                    continue
            i += 1


def check_jobs_io(errors):
    """Raw file I/O in src/jobs/ stays inside checkpoint.cc, and there every
    I/O call's return value must be consumed by an expression (assigned,
    compared, returned) — never discarded as a bare statement."""
    io_token = re.compile(
        r"\b(?:std::)?(?:fopen|fwrite|fread|fflush|fclose|fsync)\s*\("
        r"|\bstd::(?:rename|remove)\s*\("
        r"|\bstd::o?i?fstream\b")
    unchecked = re.compile(
        r"^\s*(?:\(void\)\s*)?(?:std::)?"
        r"(?:fwrite|fread|fflush|fclose|fsync|rename|remove)\s*\(")
    for f in source_files():
        relf = rel(f)
        if not relf.startswith("src/jobs/"):
            continue
        code = strip_comments_and_strings(f.read_text(encoding="utf-8"))
        if relf != "src/jobs/checkpoint.cc":
            for lineno, line in enumerate(code.splitlines(), 1):
                if io_token.search(line):
                    errors.append(
                        f"{relf}:{lineno}: raw file I/O outside "
                        f"checkpoint.cc — route durable-job I/O through the "
                        f"checkpoint layer so every operation is checked")
            continue
        lines = code.splitlines()
        for lineno, line in enumerate(lines, 1):
            if not unchecked.match(line):
                continue
            # A call starting a continuation line of a checked expression
            # (previous code line ends mid-expression) is fine; a call
            # starting a fresh statement is a discarded result.
            prev = ""
            for back in range(lineno - 2, -1, -1):
                if lines[back].strip():
                    prev = lines[back].rstrip()
                    break
            if prev.endswith(("=", "&&", "||", "(", ",", "?", ":", "+")):
                continue
            errors.append(
                f"{relf}:{lineno}: unchecked checkpoint I/O call — test "
                f"the return value and surface a Status; crash recovery "
                f"depends on detecting every failed write")


def check_tidy(errors):
    clang_tidy = shutil.which("clang-tidy")
    if not clang_tidy:
        print("lint: clang-tidy not found; skipping (CI installs it)")
        return
    db = None
    for candidate in ("build", "build-lint", "build-audit"):
        if (REPO / candidate / "compile_commands.json").exists():
            db = REPO / candidate
            break
    if db is None:
        print("lint: no compile_commands.json found; configure a build "
              "first (cmake --preset default); skipping clang-tidy")
        return
    files = [str(f) for f in source_files()
             if rel(f).startswith("src/") and f.suffix == ".cc"]
    proc = subprocess.run([clang_tidy, "-p", str(db), "--quiet"] + files,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        errors.append("clang-tidy reported diagnostics:\n" +
                      (proc.stdout.strip() or proc.stderr.strip()))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--format-check", action="store_true")
    parser.add_argument("--banned", action="store_true")
    parser.add_argument("--check-ratchet", action="store_true")
    parser.add_argument("--run-context", action="store_true")
    parser.add_argument("--span-hygiene", action="store_true")
    parser.add_argument("--jobs-io", action="store_true")
    parser.add_argument("--tidy", action="store_true")
    args = parser.parse_args()

    selected = {k for k, v in vars(args).items() if v}
    run_all = not selected

    errors = []
    if run_all or "format_check" in selected:
        check_format(errors)
    if run_all or "banned" in selected:
        check_banned(errors)
    if run_all or "check_ratchet" in selected:
        check_ratchet(errors)
    if run_all or "run_context" in selected:
        check_run_context(errors)
    if run_all or "span_hygiene" in selected:
        check_span_hygiene(errors)
    if run_all or "jobs_io" in selected:
        check_jobs_io(errors)
    if run_all or "tidy" in selected:
        check_tidy(errors)

    if errors:
        print(f"lint: {len(errors)} problem(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
